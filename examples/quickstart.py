#!/usr/bin/env python3
"""Quickstart: define packages, concretize, build, reuse.

Covers the core workflow in one file:

1. declare packages with the embedded DSL (Figure 1 of the paper);
2. concretize an abstract spec into a full configuration DAG;
3. install it (simulated builds) into a store;
4. re-concretize against the store and watch everything get reused.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import (
    Concretizer,
    Installer,
    Package,
    Repository,
    depends_on,
    provides,
    tree,
    variant,
    version,
)


def make_repo() -> Repository:
    """A small repository declared with the packaging DSL."""
    repo = Repository("quickstart")

    class Zlib(Package):
        """Everyone's favorite compression library."""

        version("1.3")
        version("1.2.13")
        variant("shared", default=True)

    class Mpich(Package):
        """An MPI implementation (provides the virtual `mpi`)."""

        version("4.1")
        version("3.4.3")
        provides("mpi")

    class Hdf5(Package):
        """HDF5 with optional MPI support — a conditional dependency."""

        version("1.14.1")
        version("1.12.2")
        variant("mpi", default=True)
        depends_on("zlib@1.2", when="@1.12")  # old HDF5 needs old zlib
        depends_on("zlib")
        depends_on("mpi", when="+mpi")

    class Simulation(Package):
        """A tiny application at the top of the stack."""

        version("2.0")
        version("1.0")
        depends_on("hdf5+mpi")

    for cls in (Zlib, Mpich, Hdf5, Simulation):
        repo.add(cls)
    return repo


def main() -> None:
    repo = make_repo()

    # -- 1. concretize an abstract spec --------------------------------
    concretizer = Concretizer(repo)
    result = concretizer.solve(["simulation"])
    root = result.roots[0]
    print("concretized `simulation`:\n")
    print(tree(root))
    print(f"\npackages to build: {sorted(s.name for s in result.built)}")

    # -- 2. constraints flow through the whole DAG ---------------------
    result = concretizer.solve(["simulation ^hdf5@1.12.2"])
    print("\nwith `^hdf5@1.12.2` (note zlib drops to 1.2.x):\n")
    print(tree(result.roots[0]))

    # -- 3. install, then reuse ------------------------------------------
    with tempfile.TemporaryDirectory() as store_dir:
        installer = Installer(Path(store_dir), repo)
        report = installer.install(root)
        print(f"\ninstalled: {report.summary()}")

        reuse = Concretizer(repo, reusable_specs=installer.database.all_specs())
        result = reuse.solve(["simulation"])
        print(
            f"re-concretized against the store: "
            f"{len(result.built)} builds needed, "
            f"{len(result.reused)} specs reused"
        )
        assert not result.built, "everything should be reused"


if __name__ == "__main__":
    main()
