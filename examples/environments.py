#!/usr/bin/env python3
"""Environments: reproducible multi-package deployments with lockfiles.

The `spack.yaml` workflow on top of splicing:

1. declare an environment of RADIUSS roots, concretized *jointly* (one
   consistent DAG — a single MPI for everything);
2. lock it: the lockfile pins every concrete spec, splice provenance
   included;
3. reinstall the locked environment elsewhere, bit-for-bit, using a
   buildcache + splicing so the new machine compiles nothing.

Run:  python examples/environments.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import BuildCache, Installer
from repro.environment import Environment
from repro.repos.radiuss import make_radiuss_repo


def main() -> None:
    repo = make_radiuss_repo()
    workspace = Path(tempfile.mkdtemp(prefix="env-demo-"))
    try:
        # ---- 1. declare + concretize jointly -------------------------
        env = Environment(workspace / "simulation-env", repo)
        env.add("mfem")
        env.add("sundials")
        env.add("hypre")
        roots = env.concretize()
        mpis = {
            node.dag_hash()
            for root in roots
            for node in root.traverse()
            if node.name == "mpich"
        }
        assert len(mpis) == 1, "joint concretization: one MPI for all roots"
        print(f"concretized {len(roots)} roots over "
              f"{len(env.all_specs())} distinct specs (single mpich)")

        # ---- 2. build once, cache, lock --------------------------------
        build_host = Installer(workspace / "build-host", repo)
        report = build_host.install_all(env.concrete_roots, jobs=4)
        print(f"build host: {report.summary()}")
        cache = BuildCache(workspace / "cache")
        for root in env.concrete_roots:
            build_host.push_to_cache(cache, root)
        env.write()
        print(f"locked environment -> {env.path / 'repro.lock.json'}")

        # ---- 3. reinstall the lock elsewhere, zero compiles ------------
        replayed = Environment.read(env.path, repo)
        assert replayed.concretized, "lockfile restores concrete specs"
        assert [r.dag_hash() for r in replayed.concrete_roots] == [
            r.dag_hash() for r in env.concrete_roots
        ]
        deploy_host = Installer(workspace / "deploy-host", repo, caches=[cache])
        report = deploy_host.install_all(replayed.concrete_roots, jobs=4)
        print(f"deploy host: {report.summary()}")
        assert not report.built, "locked redeploy extracts everything"

        # ---- 4. housekeeping: gc + verify --------------------------------
        problems = deploy_host.verify()
        assert not problems, problems
        print("deploy store verifies clean; gc finds "
              f"{len(deploy_host.gc())} orphans (expected 0)")
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    main()
