#!/usr/bin/env python3
"""The paper's motivating scenario: deploy an MPI stack on a Cray.

Storyline (Section 1):

* a build server compiles an HPC stack (here: mfem and its solvers)
  against the publicly available mpich@3.4.3 and pushes a buildcache;
* an HPE Cray cluster has **cray-mpich** — vendor MPI that exists only
  as a binary on that system, but is ABI-compatible with MPICH
  (``can_splice("mpich@3.4.3")`` in its package);
* with splicing, installing on the cluster requires **zero rebuilds**:
  every cached binary is relinked (rewired) against cray-mpich;
* the rewired binary actually loads, resolving MPI symbols from the
  vendor library with consistent ``MPI_Comm`` layouts.

Run:  python examples/mpi_deploy.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import BuildCache, Concretizer, Installer, Loader, MockBinary, external_spec, tree
from repro.repos.radiuss import make_radiuss_repo

STACK = ["mfem", "hypre", "conduit"]


def fabricate_vendor_mpi(prefix: Path) -> None:
    """Simulate the vendor-installed Cray MPICH at a system prefix."""
    lib = prefix / "lib"
    lib.mkdir(parents=True, exist_ok=True)
    MockBinary(
        soname="libcray-mpich.so",
        defined_symbols=[
            "MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
            "MPI_Allreduce", "MPI_Bcast", "MPIX_Cray_extensions",
        ],
        type_layouts={"MPI_Comm": "int32", "MPI_Datatype": "int32"},
    ).write(lib / "libcray-mpich.so")


def main() -> None:
    repo = make_radiuss_repo()
    workspace = Path(tempfile.mkdtemp(prefix="mpi-deploy-"))
    try:
        # ---- build server: compile against mpich, push a cache -------
        build_server = Installer(workspace / "build-server", repo)
        concretizer = Concretizer(repo)
        cache = BuildCache(workspace / "cache")
        for name in STACK:
            spec = concretizer.solve([f"{name} ^mpich@3.4.3"]).roots[0]
            build_server.install(spec)
            build_server.push_to_cache(cache, spec)
        print(f"build server: compiled {build_server.builder.build_count} packages, "
              f"pushed {len(cache)} specs to the cache")

        # ---- cluster: vendor MPI exists only here -----------------------
        cray_prefix = workspace / "opt" / "cray" / "pe" / "mpich"
        fabricate_vendor_mpi(cray_prefix)
        cray_mpich = external_spec(repo, "cray-mpich", str(cray_prefix))

        cluster = Concretizer(
            repo,
            reusable_specs=list(cache.all_specs()) + [cray_mpich],
            splicing=True,
        )
        result = cluster.solve(["mfem ^cray-mpich"])
        print("\ncluster concretization of `mfem ^cray-mpich`:\n")
        print(tree(result.roots[0]))
        print(f"\nbuilds required: {len(result.built)}  "
              f"(spliced instead: {sorted(s.name for s in result.spliced)})")
        assert not result.built, "deploying against vendor MPI needs no rebuilds"

        # ---- install: extraction + rewiring, no compiler in sight ------
        cluster_store = Installer(workspace / "cluster", repo, caches=[cache])
        report = cluster_store.install(result.roots[0])
        print(f"cluster install: {report.summary()}")
        assert not report.built, "nothing compiled on the cluster"

        # ---- proof of life: load the rewired binary ---------------------
        loader = Loader()
        mfem_prefix = Path(cluster_store.database.prefix_of(result.roots[0]))
        outcome = loader.load(str(mfem_prefix / "lib" / "libmfem.so"))
        print(f"\nloader: {outcome.explain()}")
        assert outcome.ok
        assert any("cray" in p for p in outcome.resolved.values()), (
            "MPI must resolve to the vendor library"
        )
        print("mfem now runs against the vendor MPI — zero rebuilds.")
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    main()
