#!/usr/bin/env python3
"""Automatic ABI discovery — the paper's future work, working today.

Section 8: "Currently, ABI compatibility must be specified by package
developers manually adding can_splice... In the future, we will develop
methods for automating ABI discovery."

This example runs our implementation of that idea:

1. scan the RADIUSS repository's MPI providers and propose the
   ``can_splice`` directives their ABI surfaces justify;
2. show that the unsafe pair (openmpi ↔ mpich) is never proposed;
3. delete a hand-written directive, re-discover it automatically, apply
   it, and watch the solver synthesize the splice it enables.

Run:  python examples/abi_discovery.py
"""

from repro import Concretizer
from repro.binary.discovery import (
    apply_suggestions,
    discover_binary_splices,
    discover_provider_splices,
)
from repro.binary.mockelf import MockBinary
from repro.repos.radiuss import make_radiuss_repo


def main() -> None:
    repo = make_radiuss_repo()

    # ---- 1. static discovery over the provider family ------------------
    suggestions = discover_provider_splices(repo, "mpi", include_existing=True)
    print("discovered ABI-compatible provider splices:")
    for s in sorted(suggestions, key=lambda s: (s.splicer, s.target)):
        print(f"  {s.splicer:<12} {s.directive_source():<40} # {s.reason}")

    unsafe = [
        s for s in suggestions
        if {"openmpi"} & {s.splicer, s.target.split("@")[0]}
        and {"mpich", "mvapich2", "mpiabi", "cray-mpich"}
        & {s.splicer, s.target.split("@")[0]}
    ]
    assert not unsafe, "incompatible MPI_Comm layouts must never be proposed"
    print("\n(openmpi never appears against the MPICH-ABI family — correct)")

    # ---- 2. dynamic discovery over binaries -----------------------------
    binaries = {
        "mpich@3.4.3": MockBinary(
            "libmpich.so",
            defined_symbols=["MPI_Init", "MPI_Send", "MPI_Recv"],
            type_layouts={"MPI_Comm": "int32"},
        ),
        "vendor-mpi@9.0": MockBinary(
            "libvendor.so",
            defined_symbols=["MPI_Init", "MPI_Send", "MPI_Recv", "VENDORX"],
            type_layouts={"MPI_Comm": "int32"},
        ),
    }
    dynamic = discover_binary_splices(binaries)
    print("\nfrom binaries:")
    for s in dynamic:
        print(f"  {s.splicer}: {s.directive_source()}")

    # ---- 3. close the loop: discovery feeds the solver ------------------
    repo.get("mvapich2").can_splice_decls = []  # pretend nobody wrote it
    cached = Concretizer(repo).solve(["hypre ^mpich@3.4.3"]).roots[0]

    plain = Concretizer(repo, reusable_specs=[cached], splicing=True)
    before = plain.solve(["hypre ^mvapich2"])
    print(f"\nbefore discovery: builds = {sorted(s.name for s in before.built)}")

    applied = apply_suggestions(repo, discover_provider_splices(repo, "mpi"))
    print(f"applied {applied} discovered directive(s)")

    after = Concretizer(repo, reusable_specs=[cached], splicing=True)
    result = after.solve(["hypre ^mvapich2"])
    print(f"after discovery:  builds = {sorted(s.name for s in result.built)}, "
          f"spliced = {sorted(s.name for s in result.spliced)}")
    assert {s.name for s in result.spliced} == {"hypre"}


if __name__ == "__main__":
    main()
