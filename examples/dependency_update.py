#!/usr/bin/env python3
"""Avoiding "rebuild the world" on a dependency update (Section 4).

zlib@1.3 declares ``can_splice("zlib@1.2", when="@1.3")`` — it keeps the
1.2 ABI.  A stack built against zlib@1.2.13 can therefore pick up the
new zlib by rebuilding *one* package (zlib itself) and rewiring its
dependents, instead of cascading rebuilds through every consumer.

We measure the difference directly: builds needed with and without
splicing, plus the simulated compile time saved.

Run:  python examples/dependency_update.py
"""

from repro import Concretizer, tree
from repro.repos.radiuss import make_radiuss_repo

#: consumers of zlib across the stack, built against zlib@1.2.13
STACK = ["visit ^zlib@1.2.13", "samrai ^zlib@1.2.13", "glvis ^zlib@1.2.13"]


def total_build_seconds(repo, specs) -> float:
    return sum(repo.get(s.name).build_time for s in specs)


def main() -> None:
    repo = make_radiuss_repo()

    # the existing deployment: everything built against zlib@1.2.13
    base = Concretizer(repo)
    installed = [base.solve([s]).roots[0] for s in STACK]
    print("deployed stack (zlib@1.2.13):")
    for spec in installed:
        print(f"  {spec.name}@{spec.version}  [{spec.dag_hash(7)}]")

    # ---- update to zlib@1.3 WITHOUT splicing ---------------------------
    plain = Concretizer(repo, reusable_specs=installed)
    rebuilds = set()
    for name in ("visit", "samrai", "glvis"):
        result = plain.solve([f"{name} ^zlib@1.3"])
        rebuilds.update(s.name for s in result.built)
    seconds_plain = sum(repo.get(n).build_time for n in rebuilds)
    print(f"\nwithout splicing: rebuild {sorted(rebuilds)}")
    print(f"  simulated compile time: {seconds_plain / 3600:.1f} hours")

    # ---- update WITH splicing ------------------------------------------
    splicing = Concretizer(repo, reusable_specs=installed, splicing=True)
    spliced_builds = set()
    spliced_specs = set()
    example_root = None
    for name in ("visit", "samrai", "glvis"):
        result = splicing.solve([f"{name} ^zlib@1.3"])
        spliced_builds.update(s.name for s in result.built)
        spliced_specs.update(s.name for s in result.spliced)
        if name == "visit":
            example_root = result.roots[0]
    seconds_spliced = sum(repo.get(n).build_time for n in spliced_builds)
    print(f"\nwith splicing: rebuild only {sorted(spliced_builds)}; "
          f"rewire {sorted(spliced_specs)}")
    print(f"  simulated compile time: {seconds_spliced / 3600:.2f} hours "
          f"({seconds_plain / max(seconds_spliced, 1):.0f}x less)")

    print("\nvisit after the spliced update (note the provenance markers):\n")
    print(tree(example_root))

    assert spliced_builds == {"zlib"}, "only zlib itself should rebuild"
    assert "visit" in spliced_specs and "hdf5" in spliced_specs, (
        "zlib consumers are rewired, not rebuilt"
    )


if __name__ == "__main__":
    main()
