#!/usr/bin/env python3
"""Why ABI modeling matters: the MPICH / Open MPI incompatibility.

Section 2.1: MPICH implements ``MPI_Comm`` as a 32-bit integer, Open MPI
as an incomplete struct pointer.  Binaries compiled against one cannot
safely use the other.  This example shows all three safety layers:

1. the **solver** never synthesizes an openmpi-for-mpich splice, because
   openmpi declares no ``can_splice("mpich...")``;
2. the **installer** refuses to rewire a hand-forced unsafe splice
   (symbol/layout check at rewire time);
3. the **loader** catches the layout conflict if an unsafe mix ever
   reaches disk.

Run:  python examples/abi_safety.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import BuildCache, Concretizer, Installer, Loader
from repro.binary import MockBinary, RewireError, check_abi_compatibility
from repro.repos.radiuss import make_radiuss_repo


def main() -> None:
    repo = make_radiuss_repo()
    workspace = Path(tempfile.mkdtemp(prefix="abi-safety-"))
    try:
        # a cached hypre built against mpich@3.4.3
        base = Concretizer(repo)
        built = base.solve(["hypre ^mpich@3.4.3"]).roots[0]
        store = Installer(workspace / "store", repo)
        store.install(built)
        cache = BuildCache(workspace / "cache")
        store.push_to_cache(cache, built)

        # ---- layer 1: the solver ----------------------------------------
        # `hypre ^openmpi` with splicing enabled: no can_splice rule lets
        # openmpi replace mpich, so the solver rebuilds instead.
        solver = Concretizer(repo, reusable_specs=cache.all_specs(), splicing=True)
        result = solver.solve(["hypre ^openmpi"])
        print("solver: `hypre ^openmpi` with splicing on →",
              f"built={sorted(s.name for s in result.built)}, "
              f"spliced={len(result.spliced)}")
        assert "hypre" in {s.name for s in result.built}, (
            "no unsafe splice: hypre is rebuilt against openmpi"
        )
        # ...while `hypre ^mpiabi` (MPICH ABI, declared) splices fine:
        result = solver.solve(["hypre ^mpiabi"])
        assert {s.name for s in result.spliced} == {"hypre"}
        print("solver: `hypre ^mpiabi` →  splices (declared ABI-compatible)")

        # ---- layer 2: the rewire ABI check -------------------------------
        # force the unsafe splice by hand and try to install it
        openmpi = base.solve(["openmpi"]).roots[0]
        unsafe = built.splice(openmpi, transitive=True, replace="mpich")
        target = Installer(workspace / "unsafe", repo, caches=[cache])
        # openmpi itself has to exist locally first
        target.install(unsafe["openmpi"])
        try:
            target.install(unsafe)
            raise AssertionError("unsafe rewire must be refused")
        except RewireError as e:
            print(f"\ninstaller: {e}")

        # ---- layer 3: the loader -----------------------------------------
        # if an unsafe mix reaches disk anyway, loading catches it
        lib = workspace / "mixed" / "lib"
        lib.mkdir(parents=True)
        MockBinary(
            soname="libapp.so",
            needed=["libopenmpi.so"],
            rpaths=[str(lib)],
            undefined_symbols=["MPI_Init"],
            type_layouts={"MPI_Comm": "int32"},  # compiled against MPICH
        ).write(lib / "libapp.so")
        MockBinary(
            soname="libopenmpi.so",
            defined_symbols=["MPI_Init"],
            type_layouts={"MPI_Comm": "ptr-struct"},
        ).write(lib / "libopenmpi.so")
        outcome = Loader().load(str(lib / "libapp.so"))
        print(f"\nloader: {outcome.explain()}")
        assert not outcome.ok and outcome.layout_conflicts

        # ---- the ABI report, directly -------------------------------------
        mpich_bin = MockBinary(
            soname="libmpich.so",
            defined_symbols=["MPI_Init", "MPI_Send"],
            type_layouts={"MPI_Comm": "int32"},
        )
        openmpi_bin = MockBinary(
            soname="libopenmpi.so",
            defined_symbols=["MPI_Init", "MPI_Send"],
            type_layouts={"MPI_Comm": "ptr-struct"},
        )
        report = check_abi_compatibility(openmpi_bin, mpich_bin)
        print(f"\ndirect check: {report.explain()}")
        assert not report.compatible
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    main()
