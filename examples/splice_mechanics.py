#!/usr/bin/env python3
"""Figure 2, executable: transitive and intransitive splices.

Recreates the paper's synthetic scenario exactly: two pre-compiled
packages conforming to ``T ^H ^Z@1.0`` and ``H' ^S ^Z@1.1``, where H/H'
and Z@1.0/Z@1.1 are ABI-compatible.  We satisfy ``T ^H'`` with a
*transitive* splice and ``T ^H' ^Z@1.0`` with a further *intransitive*
splice, watching build provenance (the dashed lines of Figure 2) appear.

Run:  python examples/splice_mechanics.py
"""

from repro import tree
from repro.spec import Spec, parse_one


def concrete(text: str, deps=()) -> Spec:
    spec = parse_one(text + " arch=centos8-skylake")
    for dep in deps:
        spec.add_dependency(dep)
    spec._mark_concrete()
    return spec


def main() -> None:
    # the already-built specs (gray in Figure 2)
    z10 = concrete("zlib@=1.0")
    z11 = concrete("zlib@=1.1")
    s = concrete("s@=1.0")
    h = concrete("h@=1.0", deps=[z10])
    t = concrete("t@=1.0", deps=[h, z10])
    h_prime = concrete("h@=2.0", deps=[s, z11])

    print("already built: T ^H ^Z@1.0")
    print(tree(t))
    print("\nalready built: H' ^S ^Z@1.1")
    print(tree(h_prime))

    # -- transitive splice (blue background in Figure 2) ----------------
    # T ^H' : replace H with H'; the shared Z follows H' (Z@1.1 wins)
    spliced = t.splice(h_prime, transitive=True)
    print("\ntransitive splice of H' into T  (satisfies T ^H'):")
    print(tree(spliced))
    assert spliced["zlib"].version.string == "1.1", "transitive: H' ties break to Z@1.1"
    assert spliced.spliced and spliced.build_spec.dag_hash() == t.dag_hash(), (
        "the spliced T remembers how its binary was really built"
    )

    # -- intransitive splice (red background in Figure 2) -----------------
    # T ^H' ^Z@1.0 : splice Z@1.0 back in; H' gets its own provenance
    intransitive = spliced.splice(z10, transitive=False)
    print("\nintransitive splice of Z@1.0 into the result  (T ^H' ^Z@1.0):")
    print(tree(intransitive))
    assert intransitive["zlib"].version.string == "1.0"
    h_node = intransitive["h"]
    assert h_node.spliced, "H' was re-pointed at Z@1.0, so it is spliced too"
    assert h_node.build_spec.dag_hash() == h_prime.dag_hash()

    # -- provenance survives hashing ------------------------------------
    # A spliced DAG hashes differently from an identical-looking built
    # one: reproducibility requires rebuilding the originals + splicing.
    print("\nhashes:")
    print(f"  original T        {t.dag_hash(10)}")
    print(f"  T spliced w/ H'   {spliced.dag_hash(10)}")
    print(f"  + Z@1.0 spliced   {intransitive.dag_hash(10)}")


if __name__ == "__main__":
    main()
