"""Mirror fallback cost at public-mirror scale (~20k specs).

The paper's Section 6 setup is a ~200-spec local buildcache in front of
a ~20,000-spec public one; Guix's substitutes model says the public
half must be treated as an unreliable remote.  This bench builds that
pair — the public mirror wrapped in a :class:`SimulatedRemoteBackend`
with per-op latency — and measures what the mirror seam costs:

* **local hit** — a lookup served by the primary must cost *zero*
  remote round-trips (asserted via the simulated backend's op counts);
* **remote fallback lookup** — a local index miss pays one latency-
  bounded walk down the mirror list;
* **fetch fallback** — the stale-primary pathology (index hit, payload
  missing) versus fetching directly from the public mirror: the price
  of degrading instead of failing;
* **union enumeration** — the concretizer's reuse corpus across both
  indexes at full scale.

Per-mirror per-phase numbers land in ``bench_results/mirrors.json``.

Run:   pytest benchmarks/bench_mirrors.py
Scale: REPRO_MIRROR_SCALE_SPECS (default 20000; CI smoke uses less)
       REPRO_MIRROR_LATENCY_S   (default 0.002 per simulated round-trip)
"""

import hashlib
import os
import shutil
import time

import pytest

import repro.obs as obs
from repro.bench import FigureReport, write_results
from repro.buildcache import (
    BuildCache,
    LocalFSBackend,
    MirrorGroup,
    SimulatedRemoteBackend,
)
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics
from repro.repos.mock import make_mock_repo

SPEC_COUNT = int(os.environ.get("REPRO_MIRROR_SCALE_SPECS", "20000"))
LOCAL_COUNT = 200
LATENCY_S = float(os.environ.get("REPRO_MIRROR_LATENCY_S", "0.002"))

_results = {}
_counters = {}


def fake_entry(i: int, population: str):
    h = hashlib.sha256(f"{population}-{i}".encode()).hexdigest()[:32]
    doc = {
        "root": h,
        "nodes": [
            {"name": f"pkg{i}", "version": "1.0.0", "hash": h,
             "prefix": f"/opt/store/pkg{i}-1.0.0-{h[:7]}"},
        ],
    }
    return h, doc


def populate(cache: BuildCache, count: int, population: str) -> None:
    """Bulk-load fabricated index entries (batched journal pushes)."""
    batch = {}
    for i in range(count):
        h, doc = fake_entry(i, population)
        batch[h] = doc
        if len(batch) >= 1000:
            cache._index.record_push(batch, {}, {})
            batch = {}
    if batch:
        cache._index.record_push(batch, {}, {})
    cache.save_index()


@pytest.fixture(scope="module")
def mirrors(tmp_path_factory):
    """The Section-6 pair: a small local cache and a big, slow public
    mirror holding the real payload stack + ``SPEC_COUNT`` index
    entries, plus a stale local copy (index without payloads)."""
    ws = tmp_path_factory.mktemp("mirrors")
    repo = make_mock_repo()
    spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
    seed = Installer(ws / "seed", repo)
    seed.install(spec)

    public_root = ws / "public"
    public = BuildCache(public_root, name="public")
    seed.push_to_cache(public, spec)
    populate(public, SPEC_COUNT, "public")

    local_root = ws / "local"
    local = BuildCache(local_root, name="local")
    populate(local, LOCAL_COUNT, "local")

    # the stale primary: advertises the payload stack, holds no blobs
    stale_root = ws / "stale"
    shutil.copytree(public_root / "index.d", stale_root / "index.d")
    shutil.copy(public_root / "index.json", stale_root / "index.json")
    return ws, repo, spec, local_root, public_root, stale_root


def remote_cache(root, name, **kwargs):
    backend = SimulatedRemoteBackend(
        LocalFSBackend(root), name=name, latency=LATENCY_S, **kwargs
    )
    return BuildCache(backend=backend, name=name), backend


class TestLookupCost:
    def test_local_hit_costs_zero_remote_ops(self, benchmark, mirrors):
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "lookup"
        local = BuildCache(local_root, name="local")
        public, backend = remote_cache(public_root, "public")
        group = MirrorGroup([local, public], backoff=0)
        h = fake_entry(LOCAL_COUNT // 2, "local")[0]
        assert h in group  # warm the local shard
        before = dict(backend.op_counts)

        benchmark.pedantic(lambda: h in group, rounds=3, iterations=10)
        _results["lookup_local_hit_s"] = benchmark.stats.stats.mean
        # first-hit-wins: the public mirror was never consulted
        assert backend.op_counts == before

    def test_remote_fallback_lookup(self, benchmark, mirrors):
        """A local index miss walks to the public mirror; shards are
        memory-cached after the first load, so each round gets a cold
        group to pay the real remote round-trips."""
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "lookup"
        h = fake_entry(SPEC_COUNT // 2, "public")[0]

        def cold_group():
            local = BuildCache(local_root, name="local")
            public, _ = remote_cache(public_root, "public")
            return (MirrorGroup([local, public], backoff=0),), {}

        def lookup(group):
            assert h in group

        benchmark.pedantic(lookup, setup=cold_group, rounds=3, iterations=1)
        _results["lookup_remote_fallback_s"] = benchmark.stats.stats.mean
        assert _results["lookup_remote_fallback_s"] >= LATENCY_S


class TestFetchFallback:
    def test_fetch_direct_from_public(self, benchmark, mirrors):
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "fetch"
        public, _ = remote_cache(public_root, "public")
        group = MirrorGroup([public], backoff=0)
        h = spec.dag_hash()

        benchmark.pedantic(lambda: group.fetch(h), rounds=3, iterations=1)
        _results["fetch_direct_s"] = benchmark.stats.stats.mean

    def test_fetch_via_stale_primary_fallback(self, benchmark, mirrors):
        """The acceptance scenario: the primary indexes the spec but
        lost the payload; the fetch degrades to the public mirror."""
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "fetch"
        stale = BuildCache(stale_root, name="stale")
        public, _ = remote_cache(public_root, "public")
        group = MirrorGroup([stale, public], backoff=0)
        h = spec.dag_hash()
        obs.reset()

        payload = benchmark.pedantic(
            lambda: group.fetch(h), rounds=3, iterations=1
        )
        _results["fetch_fallback_s"] = benchmark.stats.stats.mean
        assert payload.source == "public"
        snap = metrics.snapshot()["counters"]
        assert snap["buildcache.mirror_fallbacks.stale"] > 0
        assert snap["buildcache.mirror_hits.public"] > 0
        for name, value in snap.items():
            if name.startswith("buildcache.mirror_"):
                _counters[name] = value

    def test_flaky_mirror_retries_then_serves(self, mirrors):
        """A transient timeout on the public mirror is retried with
        backoff, not surfaced: the same fetch still succeeds."""
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        public, backend = remote_cache(public_root, "public")
        group = MirrorGroup([public], retries=2, backoff=0)
        backend.fail("get", times=1)
        obs.reset()
        start = time.perf_counter()
        payload = group.fetch(spec.dag_hash())
        _results["fetch_retry_s"] = time.perf_counter() - start
        assert payload.source == "public"
        assert metrics.counter("buildcache.mirror_retries.public").value >= 1


class TestUnionEnumeration:
    def test_union_len_at_scale(self, benchmark, mirrors):
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "union"
        count = {}

        def cold_group():
            local = BuildCache(local_root, name="local")
            public, _ = remote_cache(public_root, "public")
            return (MirrorGroup([local, public], backoff=0),), {}

        def union_len(group):
            count["n"] = len(group)
            return count["n"]

        benchmark.pedantic(union_len, setup=cold_group, rounds=3, iterations=1)
        _results["union_len_s"] = benchmark.stats.stats.mean
        # real stack (4 specs) + fabricated publics + fabricated locals
        assert count["n"] == SPEC_COUNT + LOCAL_COUNT + 4


@pytest.fixture(scope="module", autouse=True)
def report_at_end(mirrors):
    yield
    report = FigureReport(
        "mirrors",
        f"mirror fallback cost at {SPEC_COUNT} public + "
        f"{LOCAL_COUNT} local specs",
    )
    phase_mirror = {
        "lookup_local_hit_s": "local",
        "lookup_remote_fallback_s": "public",
        "fetch_direct_s": "public",
        "fetch_fallback_s": "stale->public",
        "fetch_retry_s": "public",
        "union_len_s": "local+public",
    }
    for key, mirror in phase_mirror.items():
        if key in _results:
            report.rows.append(
                {"phase": key.removesuffix("_s"), "mirror": mirror,
                 "ms": round(_results[key] * 1000, 4)}
            )
    for name in sorted(_counters):
        parts = name.split(".")  # buildcache.mirror_<kind>[.<mirror>]
        report.rows.append(
            {"phase": "counters",
             "mirror": parts[2] if len(parts) > 2 else "all",
             "counter": name, "value": _counters[name]}
        )
    report.headline("spec_count", SPEC_COUNT)
    report.headline("latency_ms", LATENCY_S * 1000)
    if "fetch_direct_s" in _results and "fetch_fallback_s" in _results:
        report.headline(
            "fallback_overhead_ms",
            (_results["fetch_fallback_s"] - _results["fetch_direct_s"]) * 1000,
        )
    if "lookup_local_hit_s" in _results and "lookup_remote_fallback_s" in _results:
        # warm local hit vs cold remote walk: the price of consulting
        # the public mirror at all
        report.headline(
            "remote_lookup_penalty_ms",
            _results["lookup_remote_fallback_s"] * 1000,
        )
    write_results(report)
