"""Mirror fallback cost at public-mirror scale (~20k specs).

The paper's Section 6 setup is a ~200-spec local buildcache in front of
a ~20,000-spec public one; Guix's substitutes model says the public
half must be treated as an unreliable remote.  This bench builds that
pair — the public mirror wrapped in a :class:`SimulatedRemoteBackend`
with per-op latency — and measures what the mirror seam costs:

* **local hit** — a lookup served by the primary must cost *zero*
  remote round-trips (asserted via the simulated backend's op counts);
* **remote fallback lookup** — a local index miss pays one latency-
  bounded walk down the mirror list;
* **fetch fallback** — the stale-primary pathology (index hit, payload
  missing) versus fetching directly from the public mirror: the price
  of degrading instead of failing;
* **union enumeration** — the concretizer's reuse corpus across both
  indexes at full scale.

Per-mirror per-phase numbers land in ``bench_results/mirrors.json``.

Run:   pytest benchmarks/bench_mirrors.py
Scale: REPRO_MIRROR_SCALE_SPECS (default 20000; CI smoke uses less)
       REPRO_MIRROR_LATENCY_S   (default 0.002 per simulated round-trip)
"""

import hashlib
import os
import shutil
import time

import pytest

import repro.obs as obs
from repro.bench import FigureReport, write_results
from repro.buildcache import (
    BuildCache,
    LocalFSBackend,
    MirrorGroup,
    SimulatedRemoteBackend,
)
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics
from repro.repos.mock import make_mock_repo

SPEC_COUNT = int(os.environ.get("REPRO_MIRROR_SCALE_SPECS", "20000"))
LOCAL_COUNT = 200
LATENCY_S = float(os.environ.get("REPRO_MIRROR_LATENCY_S", "0.002"))

_results = {}
_counters = {}


def fake_entry(i: int, population: str):
    h = hashlib.sha256(f"{population}-{i}".encode()).hexdigest()[:32]
    doc = {
        "root": h,
        "nodes": [
            {"name": f"pkg{i}", "version": "1.0.0", "hash": h,
             "prefix": f"/opt/store/pkg{i}-1.0.0-{h[:7]}"},
        ],
    }
    return h, doc


def populate(cache: BuildCache, count: int, population: str) -> None:
    """Bulk-load fabricated index entries (batched journal pushes)."""
    batch = {}
    for i in range(count):
        h, doc = fake_entry(i, population)
        batch[h] = doc
        if len(batch) >= 1000:
            cache._index.record_push(batch, {}, {})
            batch = {}
    if batch:
        cache._index.record_push(batch, {}, {})
    cache.save_index()


@pytest.fixture(scope="module")
def mirrors(tmp_path_factory):
    """The Section-6 pair: a small local cache and a big, slow public
    mirror holding the real payload stack + ``SPEC_COUNT`` index
    entries, plus a stale local copy (index without payloads)."""
    ws = tmp_path_factory.mktemp("mirrors")
    repo = make_mock_repo()
    spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
    seed = Installer(ws / "seed", repo)
    seed.install(spec)

    public_root = ws / "public"
    public = BuildCache(public_root, name="public")
    seed.push_to_cache(public, spec)
    populate(public, SPEC_COUNT, "public")

    local_root = ws / "local"
    local = BuildCache(local_root, name="local")
    populate(local, LOCAL_COUNT, "local")

    # the stale primary: advertises the payload stack, holds no blobs
    stale_root = ws / "stale"
    shutil.copytree(public_root / "index.d", stale_root / "index.d")
    shutil.copy(public_root / "index.json", stale_root / "index.json")
    if (public_root / "index.sum.json").exists():
        shutil.copy(public_root / "index.sum.json", stale_root / "index.sum.json")
    return ws, repo, spec, local_root, public_root, stale_root


SMALL_COUNT = max(SPEC_COUNT // 10, 100)  # the 2k leg at default scale


@pytest.fixture(scope="module")
def federation(tmp_path_factory):
    """Mirror-count / spec-count scaling corpus: one ``SMALL_COUNT``
    mirror and three more for the 4-mirror union leg."""
    ws = tmp_path_factory.mktemp("federation")
    roots = []
    for i in range(4):
        root = ws / f"fed{i}"
        populate(BuildCache(root, name=f"fed{i}"), SMALL_COUNT, f"fed{i}")
        roots.append(root)
    return roots


def remote_cache(root, name, **kwargs):
    backend = SimulatedRemoteBackend(
        LocalFSBackend(root), name=name, latency=LATENCY_S, **kwargs
    )
    return BuildCache(backend=backend, name=name), backend


class TestLookupCost:
    def test_local_hit_costs_zero_remote_ops(self, benchmark, mirrors):
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "lookup"
        local = BuildCache(local_root, name="local")
        public, backend = remote_cache(public_root, "public")
        group = MirrorGroup([local, public], backoff=0)
        h = fake_entry(LOCAL_COUNT // 2, "local")[0]
        assert h in group  # warm the local shard
        before = dict(backend.op_counts)

        benchmark.pedantic(lambda: h in group, rounds=3, iterations=10)
        _results["lookup_local_hit_s"] = benchmark.stats.stats.mean
        # first-hit-wins: the public mirror was never consulted
        assert backend.op_counts == before

    def test_remote_fallback_lookup(self, benchmark, mirrors):
        """A local index miss walks to the public mirror; shards are
        memory-cached after the first load, so each round gets a cold
        group to pay the real remote round-trips."""
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "lookup"
        h = fake_entry(SPEC_COUNT // 2, "public")[0]

        def cold_group():
            local = BuildCache(local_root, name="local")
            public, _ = remote_cache(public_root, "public")
            return (MirrorGroup([local, public], backoff=0),), {}

        def lookup(group):
            assert h in group

        benchmark.pedantic(lookup, setup=cold_group, rounds=3, iterations=1)
        _results["lookup_remote_fallback_s"] = benchmark.stats.stats.mean
        assert _results["lookup_remote_fallback_s"] >= LATENCY_S


class TestFetchFallback:
    def test_fetch_direct_from_public(self, benchmark, mirrors):
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "fetch"
        public, _ = remote_cache(public_root, "public")
        group = MirrorGroup([public], backoff=0)
        h = spec.dag_hash()

        benchmark.pedantic(lambda: group.fetch(h), rounds=3, iterations=1)
        _results["fetch_direct_s"] = benchmark.stats.stats.mean

    def test_fetch_via_stale_primary_fallback(self, benchmark, mirrors):
        """The acceptance scenario: the primary indexes the spec but
        lost the payload; the fetch degrades to the public mirror."""
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "fetch"
        stale = BuildCache(stale_root, name="stale")
        public, _ = remote_cache(public_root, "public")
        group = MirrorGroup([stale, public], backoff=0)
        h = spec.dag_hash()
        obs.reset()

        payload = benchmark.pedantic(
            lambda: group.fetch(h), rounds=3, iterations=1
        )
        _results["fetch_fallback_s"] = benchmark.stats.stats.mean
        assert payload.source == "public"
        snap = metrics.snapshot()["counters"]
        assert snap["buildcache.mirror_fallbacks.stale"] > 0
        assert snap["buildcache.mirror_hits.public"] > 0
        for name, value in snap.items():
            if name.startswith("buildcache.mirror_"):
                _counters[name] = value

    def test_flaky_mirror_retries_then_serves(self, mirrors):
        """A transient timeout on the public mirror is retried with
        backoff, not surfaced: the same fetch still succeeds."""
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        public, backend = remote_cache(public_root, "public")
        group = MirrorGroup([public], retries=2, backoff=0)
        backend.fail("get", times=1)
        obs.reset()
        start = time.perf_counter()
        payload = group.fetch(spec.dag_hash())
        _results["fetch_retry_s"] = time.perf_counter() - start
        assert payload.source == "public"
        assert metrics.counter("buildcache.mirror_retries.public").value >= 1


class TestUnionEnumeration:
    def test_union_len_at_scale(self, benchmark, mirrors):
        ws, repo, spec, local_root, public_root, stale_root = mirrors
        benchmark.group = "union"
        count = {}

        def cold_group():
            local = BuildCache(local_root, name="local")
            public, _ = remote_cache(public_root, "public")
            return (MirrorGroup([local, public], backoff=0),), {}

        def union_len(group):
            count["n"] = len(group)
            return count["n"]

        benchmark.pedantic(union_len, setup=cold_group, rounds=3, iterations=1)
        _results["union_len_s"] = benchmark.stats.stats.mean
        # real stack (4 specs) + fabricated publics + fabricated locals
        assert count["n"] == SPEC_COUNT + LOCAL_COUNT + 4
        # CI budget knob: the federated-index smoke job pins a fixed
        # wall-clock budget; at full scale the default budget is the
        # acceptance criterion (>= 20x faster than the 741 ms v2-era
        # union this PR replaces)
        budget_ms = os.environ.get("REPRO_MIRROR_UNION_BUDGET_MS")
        if budget_ms is None and SPEC_COUNT >= 20000:
            budget_ms = "37"
        if budget_ms is not None:
            assert _results["union_len_s"] * 1000 <= float(budget_ms), (
                f"cold union took {_results['union_len_s'] * 1e3:.1f} ms "
                f"(budget {budget_ms} ms)"
            )


class TestFederatedScaling:
    """The merged-view claims, measured: warm unions and miss-path
    lookups stay flat from 1 to 4 mirrors and from SMALL_COUNT to
    SPEC_COUNT specs, and view-answered negatives cost zero remote
    round-trips."""

    @staticmethod
    def _remote_group(roots):
        caches, backends = [], []
        for i, root in enumerate(roots):
            cache, backend = remote_cache(root, f"m{i}")
            caches.append(cache)
            backends.append(backend)
        return MirrorGroup(caches, backoff=0), backends

    def _bench_union(self, benchmark, roots, key):
        group, _ = self._remote_group(roots)
        expected = len(group)  # warm the view
        benchmark.pedantic(
            lambda: len(group), rounds=5, iterations=20
        )
        _results[key] = benchmark.stats.stats.mean
        assert len(group) == expected

    def _bench_miss(self, benchmark, roots, key):
        group, backends = self._remote_group(roots)
        len(group)  # warm the view
        probes = [
            hashlib.sha256(f"absent-{i}".encode()).hexdigest()[:32]
            for i in range(100)
        ]
        before = [dict(b.op_counts) for b in backends]

        def misses():
            for h in probes:
                assert h not in group

        benchmark.pedantic(misses, rounds=5, iterations=2)
        _results[key] = benchmark.stats.stats.mean / len(probes)
        # the acceptance criterion: summary-answered negatives make
        # zero remote operations of any kind
        after = [dict(b.op_counts) for b in backends]
        assert after == before, "negative lookups hit the remote backend"

    def test_union_warm_small(self, benchmark, federation):
        benchmark.group = "union-scaling"
        self._bench_union(benchmark, federation[:1], "union_warm_small_s")

    def test_union_warm_full(self, benchmark, mirrors):
        _, _, _, _, public_root, _ = mirrors
        benchmark.group = "union-scaling"
        self._bench_union(benchmark, [public_root], "union_warm_full_s")

    def test_union_warm_4_mirrors(self, benchmark, federation):
        benchmark.group = "union-scaling"
        self._bench_union(benchmark, federation, "union_warm_4x_s")

    def test_miss_warm_1_mirror(self, benchmark, federation):
        benchmark.group = "miss-scaling"
        self._bench_miss(benchmark, federation[:1], "miss_warm_small_s")

    def test_miss_warm_full(self, benchmark, mirrors):
        _, _, _, _, public_root, _ = mirrors
        benchmark.group = "miss-scaling"
        self._bench_miss(benchmark, [public_root], "miss_warm_full_s")

    def test_miss_warm_4_mirrors(self, benchmark, federation):
        benchmark.group = "miss-scaling"
        self._bench_miss(benchmark, federation, "miss_warm_4x_s")

    #: below this, a leg is token-polling noise (a few state_token()
    #: calls), not scaling behaviour — 7000x under the 741 ms baseline
    FLAT_FLOOR_S = 100e-6

    def test_scaling_is_flat(self):
        """Within 2x across both axes (the ISSUE acceptance bars), with
        an absolute floor so sub-microsecond legs don't turn fixed
        per-mirror token checks into a fake scaling signal."""
        for small, big in (
            ("union_warm_small_s", "union_warm_full_s"),
            ("union_warm_small_s", "union_warm_4x_s"),
            ("miss_warm_small_s", "miss_warm_full_s"),
            ("miss_warm_small_s", "miss_warm_4x_s"),
        ):
            if small not in _results or big not in _results:
                pytest.skip("scaling legs did not run")
            ratio = _results[big] / max(_results[small], 1e-9)
            _results[f"ratio_{big.removesuffix('_s')}"] = round(ratio, 3)
            assert (
                _results[big] < max(2.0 * _results[small], self.FLAT_FLOOR_S)
            ), (
                f"{big} is {ratio:.2f}x {small} "
                f"({_results[big] * 1e6:.1f} us) — the merged view is "
                "not flat across this axis"
            )


@pytest.fixture(scope="module", autouse=True)
def report_at_end(mirrors):
    yield
    report = FigureReport(
        "mirrors",
        f"mirror fallback cost at {SPEC_COUNT} public + "
        f"{LOCAL_COUNT} local specs",
    )
    phase_mirror = {
        "lookup_local_hit_s": "local",
        "lookup_remote_fallback_s": "public",
        "fetch_direct_s": "public",
        "fetch_fallback_s": "stale->public",
        "fetch_retry_s": "public",
        "union_len_s": "local+public",
        "union_warm_small_s": f"1 mirror x {SMALL_COUNT}",
        "union_warm_full_s": f"1 mirror x {SPEC_COUNT}",
        "union_warm_4x_s": f"4 mirrors x {SMALL_COUNT}",
        "miss_warm_small_s": f"1 mirror x {SMALL_COUNT}",
        "miss_warm_full_s": f"1 mirror x {SPEC_COUNT}",
        "miss_warm_4x_s": f"4 mirrors x {SMALL_COUNT}",
    }
    for key, mirror in phase_mirror.items():
        if key in _results:
            report.rows.append(
                {"phase": key.removesuffix("_s"), "mirror": mirror,
                 "ms": round(_results[key] * 1000, 4)}
            )
    for name in sorted(_counters):
        parts = name.split(".")  # buildcache.mirror_<kind>[.<mirror>]
        report.rows.append(
            {"phase": "counters",
             "mirror": parts[2] if len(parts) > 2 else "all",
             "counter": name, "value": _counters[name]}
        )
    report.headline("spec_count", SPEC_COUNT)
    report.headline("latency_ms", LATENCY_S * 1000)
    if "union_len_s" in _results and SPEC_COUNT >= 20000:
        # the v2-era cold union of this pair measured 741.2113 ms
        report.headline(
            "union_speedup_vs_v2",
            round(0.7412113 / max(_results["union_len_s"], 1e-9), 1),
        )
    for key, value in sorted(_results.items()):
        if key.startswith("ratio_"):
            report.headline(key, value)
    if "fetch_direct_s" in _results and "fetch_fallback_s" in _results:
        report.headline(
            "fallback_overhead_ms",
            (_results["fetch_fallback_s"] - _results["fetch_direct_s"]) * 1000,
        )
    if "lookup_local_hit_s" in _results and "lookup_remote_fallback_s" in _results:
        # warm local hit vs cold remote walk: the price of consulting
        # the public mirror at all
        report.headline(
            "remote_lookup_penalty_ms",
            _results["lookup_remote_fallback_s"] * 1000,
        )
    write_results(report)
