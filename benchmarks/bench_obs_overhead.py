"""Observability overhead: the always-on tier must cost ~nothing.

PR 7 added a flight recorder tapped into every span and an opt-in
session sink appended after every CLI invocation.  This bench prices
each layer so the CI regression gate (``repro obs bench-diff``) can
catch the day one of them grows into real work:

* **span + ring** — 20k spans with the flight recorder attached,
  versus the bare aggregates-only tracer (the PR 2 baseline);
* **session append** — atomic O_APPEND + fsync of one JSONL record,
  including the rotation stat;
* **report aggregation** — ``aggregate_sessions`` over a synthetic
  fleet, the cost of ``repro obs report`` itself.

Run:   pytest benchmarks/bench_obs_overhead.py
Scale: REPRO_OBS_BENCH_SPANS (default 20000; CI smoke uses less)
"""

import os
import time

import pytest

from repro.bench import FigureReport, write_results
from repro.obs import Tracer
from repro.obs.recorder import FlightRecorder
from repro.obs.session import (
    aggregate_sessions,
    append_session,
    read_sessions,
    session_record,
)

SPAN_COUNT = int(os.environ.get("REPRO_OBS_BENCH_SPANS", "20000"))
APPEND_COUNT = 200
FLEET_COUNT = 500

_results = {}


def _spin_spans(tracer, count):
    start = time.perf_counter()
    for _ in range(count):
        with tracer.span("bench.op"):
            pass
    return time.perf_counter() - start


def _fleet(count):
    phases = {
        "concretize.solve": {
            "count": 1, "total_s": 0.25, "mean_s": 0.25,
            "min_s": 0.25, "max_s": 0.25,
        }
    }
    metrics = {
        "counters": {"buildcache.hits": 3, "buildcache.misses": 1},
        "gauges": {},
        "histograms": {},
    }
    return [
        session_record(
            command="install" if i % 2 else "spec",
            argv=["install", f"pkg{i}"],
            exit_code=0,
            wall_s=0.1 + (i % 7) * 0.05,
            outcome="ok",
            phases=phases,
            metrics_snapshot=metrics,
        )
        for i in range(count)
    ]


class TestSpanOverhead:
    def test_bare_tracer(self):
        _results["span_bare_s"] = _spin_spans(Tracer(), SPAN_COUNT)

    def test_recorder_attached(self):
        tracer = Tracer()
        ring = FlightRecorder()
        tracer.set_recorder(ring.record_span)
        _results["span_ring_s"] = _spin_spans(tracer, SPAN_COUNT)
        assert len(ring) == ring.capacity

    def test_ring_overhead_is_bounded(self):
        # the ring may cost a few dict builds per span but must stay
        # the same order of magnitude as the bare aggregates
        assert "span_bare_s" in _results and "span_ring_s" in _results
        assert _results["span_ring_s"] < max(
            10.0 * _results["span_bare_s"], 0.5
        ), "flight recorder made spans an order of magnitude slower"


class TestSessionSink:
    def test_append_cost(self, tmp_path):
        record = session_record(
            command="spec", argv=["spec", "zlib"], exit_code=0,
            wall_s=0.1, outcome="ok", phases={},
            metrics_snapshot={"counters": {}, "gauges": {}, "histograms": {}},
        )
        start = time.perf_counter()
        for _ in range(APPEND_COUNT):
            append_session(tmp_path, record)
        _results["session_append_s"] = (
            time.perf_counter() - start
        ) / APPEND_COUNT
        assert len(read_sessions(tmp_path)) == APPEND_COUNT


class TestReportAggregation:
    def test_aggregate_fleet(self):
        fleet = _fleet(FLEET_COUNT)
        start = time.perf_counter()
        agg = aggregate_sessions(fleet)
        _results["aggregate_fleet_s"] = time.perf_counter() - start
        assert agg["sessions"] == FLEET_COUNT
        assert agg["rates"]["cache_hit_rate"] == pytest.approx(0.75)


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    report = FigureReport(
        "obs_overhead",
        f"telemetry overhead at {SPAN_COUNT} spans",
    )
    per_span = {"span_bare_s", "span_ring_s"}
    for key in sorted(_results):
        seconds = _results[key]
        if key in per_span:
            seconds = seconds / max(SPAN_COUNT, 1)
        report.rows.append(
            {"phase": key.removesuffix("_s"), "mirror": "n/a",
             "ms": round(seconds * 1000, 6)}
        )
    report.headline("span_count", SPAN_COUNT)
    if "span_bare_s" in _results and "span_ring_s" in _results:
        report.headline(
            "ring_overhead_x",
            _results["span_ring_s"] / max(_results["span_bare_s"], 1e-9),
        )
    write_results(report)
