"""The networked cache pair vs the simulated-latency model.

Every earlier mirror number in this repo priced the remote half of
Section 6's local/public pair with :class:`SimulatedRemoteBackend` —
a per-op sleep standing in for a round-trip.  This bench swaps in the
real thing: a populated buildcache behind ``repro buildcache serve``
on loopback, talked to by :class:`HTTPBackend`.  It measures

* **cold open** — first contact: manifest + summary sidecar over the
  wire, for HTTP and for the simulated remote at the same spec count;
* **warm refresh** — the steady-state poll an installer pays per run
  against an unchanged mirror.  Asserted, not just timed: every warm
  ``refresh()`` must be exactly one conditional GET answered 304,
  with zero shard re-downloads;
* **payload fetch** — one full verify-ready payload pull over HTTP;
* **K concurrent clients** — every client opens its own connection
  pool and pulls the full payload stack at once through the threaded
  server; throughput in payloads/s.

Per-phase numbers, ``buildcache.http_*`` counters, and the client-side
span table land in ``bench_results/http_mirror.json``.

Run:   pytest benchmarks/bench_http_mirror.py
Scale: REPRO_HTTP_SCALE_SPECS (default 2000 fabricated index entries)
       REPRO_HTTP_CLIENTS     (default 4 concurrent clients)
       REPRO_MIRROR_LATENCY_S (default 0.002 per simulated round-trip)
"""

import hashlib
import os
import threading
import time

import pytest

import repro.obs as obs
from repro.bench import FigureReport, write_results
from repro.buildcache import (
    BuildCache,
    HTTPBackend,
    LocalFSBackend,
    SimulatedRemoteBackend,
)
from repro.buildcache.server import start_server
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo

SPEC_COUNT = int(os.environ.get("REPRO_HTTP_SCALE_SPECS", "2000"))
CLIENTS = int(os.environ.get("REPRO_HTTP_CLIENTS", "4"))
LATENCY_S = float(os.environ.get("REPRO_MIRROR_LATENCY_S", "0.002"))

_results = {}
_counters = {}


def fake_entry(i: int, population: str):
    h = hashlib.sha256(f"{population}-{i}".encode()).hexdigest()[:32]
    doc = {
        "root": h,
        "nodes": [
            {"name": f"pkg{i}", "version": "1.0.0", "hash": h,
             "prefix": f"/opt/store/pkg{i}-1.0.0-{h[:7]}"},
        ],
    }
    return h, doc


def populate(cache: BuildCache, count: int, population: str) -> None:
    batch = {}
    for i in range(count):
        h, doc = fake_entry(i, population)
        batch[h] = doc
        if len(batch) >= 1000:
            cache._index.record_push(batch, {}, {})
            batch = {}
    if batch:
        cache._index.record_push(batch, {}, {})
    cache.save_index()


def snap_counters(prefix: str = "buildcache.http") -> None:
    for name, value in metrics.snapshot()["counters"].items():
        if name.startswith(prefix):
            _counters[name] = _counters.get(name, 0) + value


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One populated buildcache — real payload stack + ``SPEC_COUNT``
    fabricated index entries — behind a live loopback server."""
    ws = tmp_path_factory.mktemp("http_mirror")
    repo = make_mock_repo()
    spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
    seed = Installer(ws / "seed", repo)
    seed.install(spec)
    root = ws / "pub"
    pub = BuildCache(root, name="pub")
    seed.push_to_cache(pub, spec)
    populate(pub, SPEC_COUNT, "pub")
    server = start_server(root)
    yield ws, repo, spec, root, server
    server.shutdown()
    server.server_close()


class TestIndexRefresh:
    def test_cold_open_http(self, benchmark, served):
        """First contact over the wire: manifest + summary sidecar with
        a fresh connection pool and an empty revalidation cache."""
        _ws, _repo, spec, _root, server = served

        def cold_open():
            backend = HTTPBackend(server.url, name="cold")
            cache = BuildCache(backend=backend, name="cold")
            assert spec.dag_hash() in cache
            backend.close()

        benchmark(cold_open)
        _results["http_cold_open_s"] = benchmark.stats.stats.mean

    def test_cold_open_sim(self, benchmark, served):
        """The latency model this repo priced remotes with so far, at
        the same spec count — the baseline the wire is judged against."""
        _ws, _repo, spec, root, _server = served

        def cold_open():
            backend = SimulatedRemoteBackend(
                LocalFSBackend(root, name="inner"), name="sim",
                latency_per_op={"get": LATENCY_S},
            )
            cache = BuildCache(backend=backend, name="sim")
            assert spec.dag_hash() in cache

        benchmark(cold_open)
        _results["sim_cold_open_s"] = benchmark.stats.stats.mean

    def test_warm_refresh_http_is_one_304(self, benchmark, served):
        """The steady-state poll: an unchanged served mirror costs one
        conditional GET per ``refresh()`` — asserted request-by-request
        on the server's log, then timed."""
        _ws, _repo, spec, _root, server = served
        obs.reset()
        cache = BuildCache(backend=HTTPBackend(server.url, name="warm"),
                           name="warm")
        assert spec.dag_hash() in cache
        mark = len(server.request_log)
        refreshes = [0]

        def warm_refresh():
            assert cache.refresh_index() == 0
            refreshes[0] += 1

        benchmark(warm_refresh)
        new = server.request_log[mark:]
        assert len(new) == refreshes[0], "warm refresh made extra requests"
        assert all(status == 304 for _m, _p, status in new)
        assert metrics.counter("buildcache.http_304s").value == refreshes[0]
        _results["http_warm_refresh_s"] = benchmark.stats.stats.mean
        _results["warm_refresh_requests_per_refresh"] = (
            len(new) / max(refreshes[0], 1)
        )
        snap_counters()

    def test_warm_refresh_sim(self, benchmark, served):
        _ws, _repo, spec, root, _server = served
        backend = SimulatedRemoteBackend(
            LocalFSBackend(root, name="inner"), name="sim",
            latency_per_op={"get": LATENCY_S},
        )
        cache = BuildCache(backend=backend, name="sim")
        assert spec.dag_hash() in cache
        benchmark(lambda: cache.refresh_index())
        _results["sim_warm_refresh_s"] = benchmark.stats.stats.mean


class TestPayloadPath:
    def test_fetch_and_verify_over_http(self, benchmark, served):
        """One verify-ready payload pull: meta + manifest + signature
        + blob bytes over the wire."""
        _ws, _repo, spec, _root, server = served
        obs.reset()
        cache = BuildCache(backend=HTTPBackend(server.url, name="fetch"),
                           name="fetch")
        h = spec.dag_hash()

        def fetch():
            cache.verify_payload(cache.fetch(h))

        benchmark(fetch)
        _results["http_fetch_verify_s"] = benchmark.stats.stats.mean
        snap_counters()


class TestConcurrentClients:
    def test_k_clients_pull_full_stack(self, served):
        """``CLIENTS`` independent clients (own pool, own revalidation
        cache) each pull and verify the whole payload stack at once
        through the threaded server."""
        _ws, _repo, spec, _root, server = served
        hashes = [spec.dag_hash()] + [
            d.dag_hash() for d in spec.traverse() if d is not spec
        ]
        obs.reset()
        errors = []
        barrier = threading.Barrier(CLIENTS)

        def client(name):
            try:
                cache = BuildCache(
                    backend=HTTPBackend(server.url, name=name), name=name
                )
                barrier.wait()
                for h in hashes:
                    if h in cache:
                        cache.verify_payload(cache.fetch(h))
            except Exception as e:
                errors.append(e)

        threads = [
            threading.Thread(target=client, args=(f"client{i}",))
            for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert not errors
        payloads = CLIENTS * len(hashes)
        _results["concurrent_wall_s"] = elapsed
        _results["concurrent_payloads_per_s"] = payloads / max(elapsed, 1e-9)
        _results["concurrent_clients"] = CLIENTS
        snap_counters()


@pytest.fixture(scope="module", autouse=True)
def report_at_end(served):
    yield
    report = FigureReport(
        "http_mirror",
        f"HTTP cache pair vs simulated remote at {SPEC_COUNT} specs, "
        f"{CLIENTS} clients",
    )
    phases = [
        "http_cold_open_s", "sim_cold_open_s",
        "http_warm_refresh_s", "sim_warm_refresh_s",
        "http_fetch_verify_s", "concurrent_wall_s",
    ]
    for key in phases:
        if key in _results:
            report.rows.append(
                {"phase": key.removesuffix("_s"),
                 "ms": round(_results[key] * 1000, 4)}
            )
    for name in sorted(_counters):
        report.rows.append(
            {"phase": "counters", "counter": name, "value": _counters[name]}
        )
    # the client-side span table: where the wire time actually went
    for name, stats in sorted(trace.phase_stats().items()):
        if name.startswith("buildcache.http"):
            report.rows.append(
                {"phase": "spans", "span": name, "count": stats["count"],
                 "total_ms": round(stats["total_s"] * 1000, 4),
                 "mean_ms": round(stats["mean_s"] * 1000, 4)}
            )
    report.headline("spec_count", SPEC_COUNT)
    report.headline("clients", CLIENTS)
    report.headline("sim_latency_ms", LATENCY_S * 1000)
    if "warm_refresh_requests_per_refresh" in _results:
        report.headline(
            "warm_refresh_requests",
            _results["warm_refresh_requests_per_refresh"],
        )
    if "http_warm_refresh_s" in _results and "http_cold_open_s" in _results:
        report.headline(
            "warm_vs_cold_speedup",
            _results["http_cold_open_s"]
            / max(_results["http_warm_refresh_s"], 1e-9),
        )
    if "concurrent_payloads_per_s" in _results:
        report.headline(
            "concurrent_payloads_per_s",
            _results["concurrent_payloads_per_s"],
        )
    write_results(report)
