"""Figure 7 / RQ4: scaling in the number of splice candidates.

The paper clones MPIABI 100× (differing only in name), forbids mpich in
solutions, and concretizes MPI-dependent specs against the local cache
with growing replica subsets.  Expectations (Section 6.4):

* average +74.2 % concretization time from 10 → 100 replicas across
  MPI-dependent specs — i.e. sublinear in a 10× candidate increase;
* near-flat scaling for specs without an MPI dependency.

Run:   pytest benchmarks/bench_fig7_scaling.py --benchmark-only
Scale: REPRO_REPLICA_COUNTS (comma list, default "10,25,50,100")
"""

import os

import pytest

from repro.bench import (
    FigureReport,
    bench_runs,
    local_cache_specs,
    mpi_bench_roots,
    percent_increase,
    time_concretization,
    write_results,
)
from repro.repos.radiuss import add_mpiabi_replicas, make_radiuss_repo

MPI_SPECS = mpi_bench_roots()
ALL_SPECS = MPI_SPECS + ["py-shroud"]


def replica_counts():
    raw = os.environ.get("REPRO_REPLICA_COUNTS", "10,25,50,100")
    return [int(x) for x in raw.split(",")]


COUNTS = replica_counts()

_repos = {}
_results = {}


def repo_with_replicas(count):
    """One repo per replica count (package classes are per-repo)."""
    if count not in _repos:
        repo = make_radiuss_repo()
        add_mpiabi_replicas(repo, count)
        _repos[count] = repo
    return _repos[count]


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    report = FigureReport(
        "figure7", "concretization time vs number of splice candidates"
    )
    for key in sorted(_results):
        report.add_timing(_results[key])
    lo, hi = COUNTS[0], COUNTS[-1]
    increases = []
    for spec in MPI_SPECS:
        a = _results.get((lo, spec))
        b = _results.get((hi, spec))
        if a and b:
            increases.append(percent_increase(a.mean, b.mean))
    if increases:
        report.headline(
            f"mpi_avg_pct_increase_{lo}_to_{hi}_replicas (paper 10->100: 74.2)",
            sum(increases) / len(increases),
        )
    control_a = _results.get((lo, "py-shroud"))
    control_b = _results.get((hi, "py-shroud"))
    if control_a and control_b:
        report.headline(
            "pyshroud_pct_increase (paper: ~flat)",
            percent_increase(control_a.mean, control_b.mean),
        )
    write_results(report)


@pytest.mark.parametrize("count", COUNTS)
@pytest.mark.parametrize("spec", ALL_SPECS)
def test_fig7_scaling(benchmark, count, spec):
    benchmark.group = f"fig7-{spec}"
    repo = repo_with_replicas(count)
    cache = local_cache_specs()
    runs = bench_runs()
    forbidden = [] if spec == "py-shroud" else ["mpich"]

    timing = time_concretization(
        repo, cache, spec, runs=1, splicing=True, forbidden=forbidden,
        label=f"replicas={count}",
    )

    def one_run():
        sample = time_concretization(
            repo, cache, spec, runs=1, splicing=True, forbidden=forbidden,
            label=f"replicas={count}",
        )
        timing.samples.extend(sample.samples)

    benchmark.pedantic(one_run, rounds=max(runs - 1, 1), iterations=1)
    _results[(count, spec)] = timing
