"""Figure 6 / RQ2 + RQ3: correctness and overhead of automatic splicing.

The paper concretizes the MPI-dependent RADIUSS specs with *old spack*
(explicit ``^mpich``) and with *splice spack* (explicit ``^mpiabi``,
splicing enabled), against both buildcaches, plus py-shroud as the
cannot-splice control.  Expectations (Section 6.3):

* every MPI-dependent spec yields a **spliced solution** (RQ2);
* overhead grows with cache size — paper: **+17.1 % (local)**,
  **+153 % (public)**, and **~0 %** for py-shroud (RQ3).

Run:   pytest benchmarks/bench_fig6_splicing.py --benchmark-only
"""

import pytest

from repro.bench import (
    FigureReport,
    aggregate_percent,
    bench_repo,
    bench_runs,
    local_cache_specs,
    mpi_bench_roots,
    public_cache_specs,
    time_concretization,
    write_results,
)

MPI_SPECS = mpi_bench_roots()
ALL_SPECS = MPI_SPECS + ["py-shroud"]
CACHES = ["local", "public"]
#: old-spack        = old encoding, no splicing, ^mpich   (paper baseline)
#: new-no-splice    = new encoding, no splicing, ^mpich   (decomposition aid:
#:                    isolates the encoding layer, whose cost is inflated in a
#:                    pure-Python grounder relative to clingo — see Figure 5)
#: splice-spack     = new encoding, splicing on, ^mpiabi
CONFIGS = ["old-spack", "new-no-splice", "splice-spack"]

_results = {}


def _cache(name):
    return local_cache_specs() if name == "local" else public_cache_specs()


def _request(config, spec):
    if spec == "py-shroud":
        return spec  # the control has no MPI dependency to pin
    if config == "splice-spack":
        return f"{spec} ^mpiabi"
    return f"{spec} ^mpich"


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    report = FigureReport(
        "figure6", "splicing overhead and correctness (MPI-dependent specs)"
    )
    for key in sorted(_results):
        report.add_timing(_results[key])
    for cache in CACHES:
        base = [_results[(cache, "old-spack", s)] for s in MPI_SPECS
                if (cache, "old-spack", s) in _results]
        mid = [_results[(cache, "new-no-splice", s)] for s in MPI_SPECS
               if (cache, "new-no-splice", s) in _results]
        spliced = [_results[(cache, "splice-spack", s)] for s in MPI_SPECS
                   if (cache, "splice-spack", s) in _results]
        if base and spliced:
            report.headline(
                f"{cache}_splicing_overhead_pct (paper: "
                f"{17.1 if cache == 'local' else 153})",
                aggregate_percent(base, spliced),
            )
        if mid and spliced:
            report.headline(
                f"{cache}_splice_machinery_only_pct (engine decomposition)",
                aggregate_percent(mid, spliced),
            )
        shroud_base = _results.get((cache, "old-spack", "py-shroud"))
        shroud_mid = _results.get((cache, "new-no-splice", "py-shroud"))
        shroud_splice = _results.get((cache, "splice-spack", "py-shroud"))
        if shroud_base and shroud_splice:
            report.headline(
                f"{cache}_pyshroud_overhead_pct (paper: ~0)",
                aggregate_percent([shroud_base], [shroud_splice]),
            )
        if shroud_mid and shroud_splice:
            report.headline(
                f"{cache}_pyshroud_machinery_only_pct (paper claim: ~0)",
                aggregate_percent([shroud_mid], [shroud_splice]),
            )
    # RQ2: every MPI-dependent splice-spack solve produced splices
    spliced_ok = all(
        _results[(cache, "splice-spack", s)].samples[-1].spliced > 0
        for cache in CACHES
        for s in MPI_SPECS
        if (cache, "splice-spack", s) in _results
    )
    report.headline("rq2_all_mpi_specs_spliced (1=yes)", 1.0 if spliced_ok else 0.0)
    write_results(report)


@pytest.mark.parametrize("cache_name", CACHES)
@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("spec", ALL_SPECS)
def test_fig6_concretization(benchmark, cache_name, config, spec):
    benchmark.group = f"fig6-{cache_name}-{spec}"
    repo = bench_repo()
    cache = _cache(cache_name)
    runs = bench_runs()
    splicing = config == "splice-spack"
    # the paper's "old spack" predates the hash_attr change entirely:
    # old reuse encoding AND no splicing
    encoding = "old" if config == "old-spack" else "new"
    request = _request(config, spec)

    timing = time_concretization(
        repo, cache, request, runs=1, encoding=encoding, splicing=splicing,
        label=f"{config}/{cache_name}",
    )
    timing.spec = spec

    def one_run():
        sample = time_concretization(
            repo, cache, request, runs=1, encoding=encoding, splicing=splicing,
            label=f"{config}/{cache_name}",
        )
        timing.samples.extend(sample.samples)

    benchmark.pedantic(one_run, rounds=max(runs - 1, 1), iterations=1)

    if splicing and spec != "py-shroud":
        assert timing.samples[-1].spliced > 0, (
            f"RQ2 violated: no spliced solution for {spec} on {cache_name}"
        )
    _results[(cache_name, config, spec)] = timing
