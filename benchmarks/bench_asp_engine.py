"""ASP-engine ablations (design choices called out in DESIGN.md).

Not a paper figure — these benches justify two engine design choices:

* **lazy loop formulas** (ASSAT) vs paying for loop handling upfront:
  measured as the number of loop-formula repairs on real concretizer
  workloads (expected: ~0, which is why lazy wins) against the cost of
  solving a loop-heavy synthetic program (where laziness still works);
* **model-guided bound strengthening** for ``#minimize`` vs naive
  enumerate-all-models-and-pick: strengthening visits O(cost-steps)
  models; enumeration visits all of them.
"""

import pytest

from repro.asp.api import Control
from repro.asp.grounder import Grounder
from repro.asp.parser import parse_program
from repro.asp.stable import StableModelFinder
from repro.asp.translate import Translator
from repro.bench import bench_repo, local_cache_specs
from repro.concretize import Concretizer


class TestLoopFormulaLaziness:
    def test_concretizer_workload_needs_no_loop_formulas(self, benchmark):
        """Dependency DAGs are acyclic: the lazy strategy's bet is that
        real workloads trigger zero repairs — verify and time it."""
        benchmark.group = "asp-loops"
        repo = bench_repo()
        cache = list(local_cache_specs())

        def solve():
            c = Concretizer(repo, reusable_specs=cache, splicing=True)
            result = c.solve(["mfem ^mpiabi"])
            return result.stats["loop_formulas"]

        loops = benchmark(solve)
        assert loops == 0, "acyclic workload should need no loop repairs"

    def test_loop_heavy_synthetic_program(self, benchmark):
        """A chain of positive loops with external supports: the lazy
        strategy repairs each loop at most once."""
        benchmark.group = "asp-loops"
        n = 30
        lines = []
        for i in range(n):
            lines.append(f"a{i} :- b{i}. b{i} :- a{i}.")
            lines.append(f"{{ s{i} }}. a{i} :- s{i}.")
            lines.append(f":- not b{i}.")
        text = "\n".join(lines)

        def solve():
            translator = Translator(Grounder(parse_program(text)).ground())
            finder = StableModelFinder(translator)
            model = finder.solve()
            assert model is not None
            return finder.loop_formulas_added

        loops = benchmark(solve)
        assert loops <= 2 * n, "each loop repaired a bounded number of times"


class TestOptimizationStrategy:
    N = 12

    def _program(self):
        picks = " ; ".join(f"pick({i})" for i in range(1, self.N + 1))
        lines = [f"3 {{ {picks} }} 3."]
        for i in range(1, self.N + 1):
            lines.append(f"cost({i}, {i * i}).")
        lines.append("#minimize { C, X : pick(X), cost(X, C) }.")
        return "\n".join(lines)

    def test_bound_strengthening(self, benchmark):
        benchmark.group = "asp-optimize"

        def solve():
            ctl = Control()
            ctl.add(self._program())
            result = ctl.solve()
            assert result.cost[0] == 1 + 4 + 9
            return result.stats["models_seen"]

        models = benchmark(solve)
        # strengthening needs at most a handful of improving models, far
        # fewer than the C(12,3)=220 total models enumeration would visit
        assert models < 60

    def test_naive_enumeration_baseline(self, benchmark):
        """The ablation baseline: enumerate stable models by blocking
        clauses and take the best — correct but visits every model."""
        benchmark.group = "asp-optimize"

        def solve():
            translator = Translator(
                Grounder(parse_program(self._program())).ground()
            )
            finder = StableModelFinder(translator)
            seen = 0
            best = None
            while True:
                model = finder.solve()
                if model is None:
                    break
                seen += 1
                solver_model = translator.solver.model()
                cost = sum(
                    w
                    for w, var in translator.objectives[0]
                    if solver_model[var] == 1
                )
                best = cost if best is None else min(best, cost)
                # block this model's pick-set
                picks = [
                    translator.atom_var[a]
                    for a in model
                    if a.predicate == "pick"
                ]
                translator.solver.add_clause([-v for v in picks])
            assert best == 14
            return seen

        models = benchmark(solve)
        assert models == 220, "enumeration visits every 3-subset"
