"""Ablation: transitive vs intransitive splice mechanics (Section 4.1).

Library-level microbenchmark of :meth:`Spec.splice` on deep dependency
chains: the transitive mode rebuilds every node between the root and the
splice point; the intransitive mode additionally re-points the spliced
node at existing dependencies.  Also measures rewire-plan construction.
"""

import pytest

from repro.binary.rewire import plan_rewire
from repro.spec import DEPTYPE_LINK_RUN, Spec, VersionList, parse_one


def chain(depth: int, leaf_version: str):
    """pkg0 -> pkg1 -> ... -> leaf(zlib@leaf_version)."""
    leaf = parse_one(f"zlib@={leaf_version} arch=centos8-skylake")
    leaf._mark_concrete()
    node = leaf
    for i in range(depth - 1, -1, -1):
        parent = parse_one(f"pkg{i}@=1.0 arch=centos8-skylake")
        parent.add_dependency(node, (DEPTYPE_LINK_RUN,))
        parent._mark_concrete()
        node = parent
    return node, leaf


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_transitive_splice_depth(benchmark, depth):
    benchmark.group = f"splice-depth-{depth}"
    root, _ = chain(depth, "1.0")
    replacement = parse_one("zlib@=1.1 arch=centos8-skylake")
    replacement._mark_concrete()

    result = benchmark(root.splice, replacement, True)
    assert result.spliced
    assert result["zlib"].version.string == "1.1"
    # every intermediate node between root and splice point is rewired
    rewired = [n for n in result.traverse() if n.spliced]
    assert len(rewired) == depth


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_intransitive_splice_depth(benchmark, depth):
    benchmark.group = f"splice-depth-{depth}"
    root, _ = chain(depth, "1.0")
    mid = parse_one("helper@=2.0 arch=centos8-skylake")
    z11 = parse_one("zlib@=1.1 arch=centos8-skylake")
    z11._mark_concrete()
    mid.add_dependency(z11, (DEPTYPE_LINK_RUN,))
    mid._mark_concrete()
    root2 = parse_one("top@=1.0 arch=centos8-skylake")
    root2.add_dependency(root, (DEPTYPE_LINK_RUN,))
    root2.add_dependency(mid, (DEPTYPE_LINK_RUN,))
    root2._mark_concrete()
    z10 = root["zlib"]

    result = benchmark(root2.splice, mid.copy(), False, "helper")
    assert result.concrete


def test_rewire_plan_cost(benchmark):
    benchmark.group = "rewire"
    root, _ = chain(8, "1.0")
    replacement = parse_one("zlib@=1.1 arch=centos8-skylake")
    replacement._mark_concrete()
    spliced = root.splice(replacement, transitive=True)

    def prefix(spec):
        return f"/store/{spec.name}-{spec.version}-{spec.dag_hash(8)}"

    plan = benchmark(plan_rewire, spliced, prefix)
    assert plan.replaced


def test_dag_hash_cost_on_wide_dag(benchmark):
    benchmark.group = "hashing"
    root = parse_one("root@=1.0 arch=centos8-skylake")
    for i in range(60):
        dep = parse_one(f"dep{i}@=1.0 arch=centos8-skylake")
        dep._mark_concrete()
        root.add_dependency(dep, (DEPTYPE_LINK_RUN,))
    root._mark_concrete()

    def rehash():
        root._invalidate_hash()
        return root.dag_hash()

    assert benchmark(rehash)
