"""Buildcache index operations at public-mirror scale (~20k specs).

Spack's public binary cache indexes tens of thousands of specs; a
monolithic ``index.json`` makes every open parse the world and every
push rewrite it.  This bench fabricates a synthetic index at that
scale and measures the three hot operations in both formats:

* **open + single lookup** — v1 parses every spec; v2 reads the
  manifest and exactly one shard;
* **push + save** — v1 rewrites the whole index; v2 appends to the
  journal and folds one dirty shard;
* **single-pass relocation** — one combined-alternation scan vs the
  legacy per-prefix loop at a many-dependency prefix map.

Run:   pytest benchmarks/bench_cache_scale.py
       (plain run: the push/save and span-count tests are not
       pytest-benchmark fixtures and would be skipped by
       ``--benchmark-only``)
Scale: REPRO_CACHE_SCALE_SPECS (default 20000; CI smoke uses less)
"""

import hashlib
import json
import os
import shutil
import time

import pytest

import repro.obs as obs
from repro.bench import FigureReport, write_results
from repro.binary.relocate import PrefixRewriter, _replace_prefix
from repro.buildcache import ShardedIndex
from repro.obs import trace

SPEC_COUNT = int(os.environ.get("REPRO_CACHE_SCALE_SPECS", "20000"))

_results = {}


def fake_entry(i: int):
    """A fabricated spec document with a realistically-spread hash."""
    h = hashlib.sha256(f"cache-scale-{i}".encode()).hexdigest()[:32]
    doc = {
        "root": h,
        "nodes": [
            {"name": f"pkg{i}", "version": "1.0.0", "hash": h,
             "prefix": f"/opt/store/pkg{i}-1.0.0-{h[:7]}"},
        ],
    }
    return h, doc


def v1_document(count: int) -> dict:
    specs = dict(fake_entry(i) for i in range(count))
    return {
        "version": 1,
        "specs": specs,
        "build_specs": {},
        "external_prefixes": {},
    }


@pytest.fixture(scope="module")
def layouts(tmp_path_factory):
    """Side-by-side v1 (monolithic) and v2 (sharded) copies of the same
    synthetic ``SPEC_COUNT``-spec index."""
    ws = tmp_path_factory.mktemp("cache-scale")
    doc = v1_document(SPEC_COUNT)
    v1 = ws / "v1"
    v1.mkdir()
    (v1 / "index.json").write_text(json.dumps(doc))
    v2 = ws / "v2"
    v2.mkdir()
    (v2 / "index.json").write_text(json.dumps(doc))
    migrate_start = time.perf_counter()
    ShardedIndex(v2).save()  # transparent v1 read + sharded write
    _results["migrate_s"] = time.perf_counter() - migrate_start
    some_hash = fake_entry(SPEC_COUNT // 2)[0]
    return ws, v1, v2, some_hash


@pytest.fixture(scope="module", autouse=True)
def report_at_end(layouts):
    yield
    report = FigureReport(
        "cache_scale", f"index operations at {SPEC_COUNT} cached specs"
    )
    for key in ("open_v1_s", "open_v2_s", "push_save_v1_s", "push_save_v2_s",
                "relocate_legacy_s", "relocate_single_pass_s"):
        if key in _results:
            report.rows.append({"op": key, "seconds": round(_results[key], 5)})
    report.headline("spec_count", SPEC_COUNT)
    report.headline("migrate_s", round(_results.get("migrate_s", 0.0), 3))
    if "open_v1_s" in _results and "open_v2_s" in _results:
        report.headline(
            "open_speedup", _results["open_v1_s"] / max(_results["open_v2_s"], 1e-9)
        )
    if "push_save_v1_s" in _results and "push_save_v2_s" in _results:
        report.headline(
            "push_save_speedup",
            _results["push_save_v1_s"] / max(_results["push_save_v2_s"], 1e-9),
        )
    if "relocate_legacy_s" in _results and "relocate_single_pass_s" in _results:
        report.headline(
            "relocate_speedup",
            _results["relocate_legacy_s"]
            / max(_results["relocate_single_pass_s"], 1e-9),
        )
    write_results(report)


class TestOpenAndLookup:
    def test_open_v1_monolithic(self, benchmark, layouts):
        ws, v1, v2, some_hash = layouts
        benchmark.group = "open+lookup"

        def open_and_lookup():
            index = ShardedIndex(v1)
            assert index.get_spec(some_hash) is not None
            return index

        benchmark.pedantic(open_and_lookup, rounds=3, iterations=1)
        _results["open_v1_s"] = benchmark.stats.stats.mean

    def test_open_v2_sharded(self, benchmark, layouts):
        ws, v1, v2, some_hash = layouts
        benchmark.group = "open+lookup"

        def open_and_lookup():
            index = ShardedIndex(v2)
            assert index.get_spec(some_hash) is not None
            return index

        benchmark.pedantic(open_and_lookup, rounds=3, iterations=1)
        _results["open_v2_s"] = benchmark.stats.stats.mean

    def test_lookup_parses_exactly_one_shard(self, layouts):
        """The structural claim behind the speedup, asserted via span
        counts: one lookup at 20k-spec scale loads one shard."""
        ws, v1, v2, some_hash = layouts
        obs.reset()
        index = ShardedIndex(v2)
        assert index.get_spec(some_hash) is not None
        assert trace.phase_stats()["buildcache.shard_load"]["count"] == 1

    def test_count_without_any_shard_parse(self, layouts):
        ws, v1, v2, some_hash = layouts
        obs.reset()
        assert ShardedIndex(v2).spec_count() == SPEC_COUNT
        assert "buildcache.shard_load" not in trace.phase_stats()


class TestPushAndSave:
    def _timed_push_save(self, ws, source, name, write_v1):
        root = ws / name
        if root.exists():
            shutil.rmtree(root)
        shutil.copytree(source, root)
        h, doc = fake_entry(SPEC_COUNT + hash(name) % 1000)
        index = ShardedIndex(root)
        if write_v1:
            os.environ["REPRO_BUILDCACHE_WRITE_V1"] = "1"
        try:
            start = time.perf_counter()
            index.record_push({h: doc}, {}, {})
            index.save()
            elapsed = time.perf_counter() - start
        finally:
            os.environ.pop("REPRO_BUILDCACHE_WRITE_V1", None)
        assert ShardedIndex(root).get_spec(h) == doc
        return elapsed

    def test_push_save_v1_rewrites_world(self, layouts):
        ws, v1, v2, some_hash = layouts
        _results["push_save_v1_s"] = self._timed_push_save(
            ws, v1, "push-v1", write_v1=True
        )

    def test_push_save_v2_folds_one_shard(self, layouts):
        ws, v1, v2, some_hash = layouts
        _results["push_save_v2_s"] = self._timed_push_save(
            ws, v2, "push-v2", write_v1=False
        )

    def test_incremental_push_beats_full_rewrite(self, layouts):
        """At 20k specs a journaled single-shard fold must beat the
        monolithic rewrite by a wide margin."""
        if "push_save_v1_s" not in _results or "push_save_v2_s" not in _results:
            pytest.skip("push timings not collected")
        assert _results["push_save_v2_s"] < _results["push_save_v1_s"]


class TestRelocationScaling:
    #: a deep stack's worth of dependency prefixes in one relocation map
    PREFIXES = 64
    STRINGS = 2000

    @pytest.fixture(scope="class")
    def workload(self):
        prefix_map = {
            f"/opt/build/store/dep{i:03d}-{hashlib.sha256(str(i).encode()).hexdigest()[:7]}":
                f"/srv/site/store/dep{i:03d}"
            for i in range(self.PREFIXES)
        }
        olds = list(prefix_map)
        strings = [
            f"{olds[i % len(olds)]}/lib:{olds[(i * 7) % len(olds)]}/lib64:/usr/lib"
            for i in range(self.STRINGS)
        ]
        return prefix_map, strings

    def test_legacy_per_prefix_loop(self, benchmark, workload):
        prefix_map, strings = workload
        benchmark.group = "relocation"
        ordered = sorted(prefix_map, key=lambda o: (-len(o), o))

        def legacy():
            out = []
            for text in strings:
                for old in ordered:
                    text, _ = _replace_prefix(text, old, prefix_map[old])
                out.append(text)
            return out

        benchmark.pedantic(legacy, rounds=3, iterations=1)
        _results["relocate_legacy_s"] = benchmark.stats.stats.mean
        self._expected = legacy()

    def test_single_pass_rewriter(self, benchmark, workload):
        prefix_map, strings = workload
        benchmark.group = "relocation"
        rewriter = PrefixRewriter(prefix_map)

        def single_pass():
            return [rewriter.rewrite(text)[0] for text in strings]

        result = benchmark.pedantic(single_pass, rounds=3, iterations=1)
        _results["relocate_single_pass_s"] = benchmark.stats.stats.mean
        # byte-identical output, not just faster
        ordered = sorted(prefix_map, key=lambda o: (-len(o), o))
        for before, after in zip(strings, result):
            expected = before
            for old in ordered:
                expected, _ = _replace_prefix(expected, old, prefix_map[old])
            assert after == expected
