"""Installation-path costs: build vs extract vs splice-rewire.

The paper's abstract claims splicing "incurs minimal installation-time
overhead and allows rapid installation from binaries, even for
ABI-sensitive dependencies like MPI that would otherwise require many
rebuilds."  This bench measures the three installation paths for the
same spec (mfem + solvers stack):

* **source build** — with the simulated build clock at 1 ms per real
  build second (mfem's stack is ~1.5 simulated hours);
* **cache extract** — relocation-only installs from a buildcache;
* **splice rewire** — extract the build spec's binaries and rewire them
  against mpiabi: the paper's path, expected ≈ extract ≪ build.
"""

import shutil

import pytest

from repro.buildcache import BuildCache
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.repos.radiuss import make_radiuss_repo

#: wall seconds simulated per build second (1 ms/s ≈ visible but fast)
TIME_SCALE = 0.001
TARGET = "mfem"


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    ws = tmp_path_factory.mktemp("install-paths")
    repo = make_radiuss_repo()
    built = Concretizer(repo).solve([f"{TARGET} ^mpich@3.4.3"]).roots[0]
    source = Installer(ws / "source", repo)
    source.install(built)
    cache = BuildCache(ws / "cache")
    source.push_to_cache(cache, built)
    spliced = Concretizer(
        repo, reusable_specs=cache.all_specs(), splicing=True
    ).solve([f"{TARGET} ^mpiabi"]).roots[0]
    return ws, repo, built, spliced, cache


def test_source_build_path(benchmark, setup):
    ws, repo, built, spliced, cache = setup
    benchmark.group = "install-paths"
    counter = [0]

    def build_fresh():
        counter[0] += 1
        store = ws / f"build-{counter[0]}"
        installer = Installer(store, repo)
        installer.builder.time_scale = TIME_SCALE
        report = installer.install(built)
        shutil.rmtree(store, ignore_errors=True)
        return report

    report = benchmark.pedantic(build_fresh, rounds=3, iterations=1)
    assert len(report.built) == len(list(built.traverse()))


def test_cache_extract_path(benchmark, setup):
    ws, repo, built, spliced, cache = setup
    benchmark.group = "install-paths"
    counter = [0]

    def extract_fresh():
        counter[0] += 1
        store = ws / f"extract-{counter[0]}"
        installer = Installer(store, repo, caches=[cache])
        installer.builder.time_scale = TIME_SCALE
        report = installer.install(built)
        shutil.rmtree(store, ignore_errors=True)
        return report

    report = benchmark.pedantic(extract_fresh, rounds=3, iterations=1)
    assert not report.built


def test_splice_rewire_path(benchmark, setup):
    """The headline path: only mpiabi builds; everything MPI-dependent
    is rewired, everything else extracted."""
    ws, repo, built, spliced, cache = setup
    benchmark.group = "install-paths"
    counter = [0]

    def rewire_fresh():
        counter[0] += 1
        store = ws / f"rewire-{counter[0]}"
        installer = Installer(store, repo, caches=[cache])
        installer.builder.time_scale = TIME_SCALE
        report = installer.install(spliced)
        shutil.rmtree(store, ignore_errors=True)
        return report

    report = benchmark.pedantic(rewire_fresh, rounds=3, iterations=1)
    assert report.built == ["mpiabi"]
    assert set(report.rewired) == {"mfem", "hypre"}


def test_pipelined_fetch_path(benchmark, setup):
    """Cache extraction with ``--fetch-jobs 4``: blob fetch + verify of
    independent nodes overlaps extraction.  A local-disk cache has no
    fetch latency to hide, so a simulated mirror round-trip
    (REPRO_FETCH_LATENCY seconds per blob, default 10 ms) stands in for
    the network; extraction itself is still the real code path."""
    import os
    import time

    ws, repo, built, spliced, cache = setup
    benchmark.group = "install-paths"
    latency = float(os.environ.get("REPRO_FETCH_LATENCY", "0.01"))
    original_fetch = cache.fetch

    def laggy_fetch(h):
        time.sleep(latency)
        return original_fetch(h)

    cache.fetch = laggy_fetch
    counter = [0]

    def extract_pipelined():
        counter[0] += 1
        store = ws / f"piped-{counter[0]}"
        installer = Installer(store, repo, caches=[cache], fetch_jobs=4)
        installer.builder.time_scale = TIME_SCALE
        report = installer.install(built)
        shutil.rmtree(store, ignore_errors=True)
        return report

    try:
        report = benchmark.pedantic(extract_pipelined, rounds=3, iterations=1)
    finally:
        cache.fetch = original_fetch
    assert not report.built
    assert len(report.extracted) == len(list(built.traverse()))


def test_pipelined_fetch_beats_serial_and_matches_trees(setup):
    """The acceptance bar for --fetch-jobs: a wall-clock win over the
    serial fetch path AND byte-identical install trees."""
    import os
    import time

    ws, repo, built, spliced, cache = setup
    latency = float(os.environ.get("REPRO_FETCH_LATENCY", "0.01"))
    original_fetch = cache.fetch

    def laggy_fetch(h):
        time.sleep(latency)
        return original_fetch(h)

    def digest(root):
        out = {}
        for path in sorted(p for p in root.rglob("*") if p.is_file()):
            out[str(path.relative_to(root))] = path.read_text().replace(
                str(root), "@ROOT@"
            )
        return out

    cache.fetch = laggy_fetch
    try:
        def timed(store, fetch_jobs):
            installer = Installer(
                ws / store, repo, caches=[cache], fetch_jobs=fetch_jobs
            )
            installer.builder.time_scale = TIME_SCALE
            start = time.perf_counter()
            installer.install(built)
            return time.perf_counter() - start

        # equal-length store names keep padding-relocated bytes comparable
        serial = timed("f1", 1)
        piped = timed("f4", 4)
    finally:
        cache.fetch = original_fetch
    assert digest(ws / "f1") == digest(ws / "f4")
    assert piped < serial, (serial, piped)
    shutil.rmtree(ws / "f1", ignore_errors=True)
    shutil.rmtree(ws / "f4", ignore_errors=True)


def test_rewire_overhead_vs_extract_is_minimal(setup):
    """The abstract's claim, quantified: rewiring costs about as much
    as plain extraction and avoids nearly all of the build time."""
    import time

    ws, repo, built, spliced, cache = setup

    def timed(spec, store, use_cache, scale=TIME_SCALE):
        installer = Installer(
            ws / store, repo, caches=[cache] if use_cache else []
        )
        installer.builder.time_scale = scale
        start = time.perf_counter()
        installer.install(spec)
        elapsed = time.perf_counter() - start
        shutil.rmtree(ws / store, ignore_errors=True)
        return elapsed

    build_time = timed(built, "cmp-build", use_cache=False)
    extract_time = timed(built, "cmp-extract", use_cache=True)
    rewire_time = timed(spliced, "cmp-rewire", use_cache=True)
    # rewiring rebuilds only mpiabi (1300 sim-seconds of ~5500 total)
    assert rewire_time < build_time * 0.6
    assert rewire_time < extract_time + build_time * 0.5
