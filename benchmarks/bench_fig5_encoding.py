"""Figure 5 / RQ1: old vs new encoding of reusable specs (no splicing).

The paper compares *old spack* (direct ``imposed_constraint`` facts)
against *splice spack* (``hash_attr`` indirection) with automatic
splicing disabled, over the RADIUSS stack against the local and public
buildcaches.  Expectation (Section 6.2): the indirection adds only a
few percent — paper numbers: **+4.7 % (local)**, **+7.1 % (public)**.

Run:   pytest benchmarks/bench_fig5_encoding.py --benchmark-only
Scale: REPRO_BENCH_RUNS / REPRO_PUBLIC_SPECS / REPRO_BENCH_SPECS=all
"""

import pytest

from repro.bench import (
    FigureReport,
    aggregate_percent,
    bench_repo,
    bench_roots,
    bench_runs,
    local_cache_specs,
    public_cache_specs,
    time_concretization,
    write_results,
)

SPECS = bench_roots()
CACHES = ["local", "public"]
ENCODINGS = ["old", "new"]

_results = {}


def _cache(name):
    return local_cache_specs() if name == "local" else public_cache_specs()


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    report = FigureReport(
        "figure5", "old vs new reusable-spec encoding (splicing disabled)"
    )
    for key in sorted(_results):
        report.add_timing(_results[key])
    for cache in CACHES:
        old = [_results[(cache, "old", s)] for s in SPECS
               if (cache, "old", s) in _results]
        new = [_results[(cache, "new", s)] for s in SPECS
               if (cache, "new", s) in _results]
        if old and new:
            pct = aggregate_percent(old, new)
            report.headline(
                f"{cache}_encoding_overhead_pct (paper: "
                f"{4.7 if cache == 'local' else 7.1})",
                pct,
            )
    write_results(report)


@pytest.mark.parametrize("cache_name", CACHES)
@pytest.mark.parametrize("encoding", ENCODINGS)
@pytest.mark.parametrize("spec", SPECS)
def test_fig5_concretization(benchmark, cache_name, encoding, spec):
    benchmark.group = f"fig5-{cache_name}-{spec}"
    repo = bench_repo()
    cache = _cache(cache_name)
    runs = bench_runs()

    timing = time_concretization(
        repo,
        cache,
        spec,
        runs=1,
        encoding=encoding,
        splicing=False,
        label=f"{encoding}/{cache_name}",
    )

    def one_run():
        sample = time_concretization(
            repo, cache, spec, runs=1, encoding=encoding, splicing=False,
            label=f"{encoding}/{cache_name}",
        )
        timing.samples.extend(sample.samples)

    benchmark.pedantic(one_run, rounds=max(runs - 1, 1), iterations=1)
    _results[(cache_name, encoding, spec)] = timing
