"""Full static audit of a public-scale buildcache in single-digit seconds.

The ISSUE's promise for the audit families: auditing the whole ~4k-spec
public cache — every shard digest, every summary entry, every
``can_splice`` declaration cross-checked against artifacts — is cheap
enough to run in CI on every publish.  This bench populates a
radiuss-shaped index at that scale (index-only: the audit's ABI surface
fallback reads the same class data the simulated builds bake into
binaries), runs the complete checker set, and reports wall time plus
the per-checker ``analysis.*`` obs spans as the proof.

Run:   pytest benchmarks/bench_audit.py
Scale: REPRO_AUDIT_SCALE_SPECS  (default 4000)
Budget: REPRO_AUDIT_BUDGET_S    (default 9.9 — "single-digit seconds")
"""

import os
import time

import pytest

import repro.obs as obs
from repro.analysis import Analyzer, AuditContext
from repro.bench import FigureReport, write_results
from repro.buildcache import BuildCache, vary_configurations
from repro.obs import SCHEMA_VERSION, trace
from repro.repos.radiuss import RADIUSS_ROOTS, make_radiuss_repo

SPEC_COUNT = int(os.environ.get("REPRO_AUDIT_SCALE_SPECS", "4000"))
BUDGET_S = float(os.environ.get("REPRO_AUDIT_BUDGET_S", "9.9"))

PROVIDERS = [
    {"mpi": "mpich"},
    {"mpi": "mpich"},
    {"mpi": "openmpi"},
    {"mpi": "mvapich2"},
]

_results = {}


@pytest.fixture(scope="module")
def public_cache(tmp_path_factory):
    """A ~SPEC_COUNT-spec cache shaped like the public mirror."""
    root = tmp_path_factory.mktemp("audit-scale") / "cache"
    repo = make_radiuss_repo()
    specs = vary_configurations(
        repo, RADIUSS_ROOTS, count=SPEC_COUNT, seed=7, providers=PROVIDERS
    )
    start = time.perf_counter()
    cache = BuildCache(root)
    for spec in specs:
        cache._index_spec(spec)
    cache.save_index()
    _results["populate_s"] = time.perf_counter() - start
    _results["spec_count"] = len(cache)
    return repo, BuildCache(root)


@pytest.fixture(scope="module", autouse=True)
def report_at_end(public_cache):
    yield
    report = FigureReport(
        "audit_scale",
        f"full static audit of a {_results.get('spec_count', 0)}-spec cache",
    )
    for row in _results.get("checker_spans", []):
        report.rows.append(row)
    report.headline("spec_count", _results.get("spec_count", 0))
    report.headline("populate_s", round(_results.get("populate_s", 0.0), 3))
    report.headline("audit_s", round(_results.get("audit_s", 0.0), 3))
    report.headline("budget_s", BUDGET_S)
    report.headline("obs_schema", SCHEMA_VERSION)
    write_results(report)


class TestAuditAtScale:
    def test_full_audit_within_budget(self, public_cache):
        repo, cache = public_cache
        obs.reset()
        context = AuditContext(
            repo=repo,
            cache=cache,
            concrete_specs=cache.all_specs(),
            reusable_specs=cache.all_specs(),
        )
        start = time.perf_counter()
        audit = Analyzer().run(context)
        elapsed = time.perf_counter() - start
        _results["audit_s"] = elapsed

        # per-checker wall time, straight from the analysis.* obs spans —
        # the bench JSON carries the proof, not just the total
        spans = []
        for phase, stats in sorted(trace.phase_stats().items()):
            if phase.startswith("analysis."):
                spans.append(
                    {"span": phase, "seconds": round(stats["total_s"], 4)}
                )
        _results["checker_spans"] = spans
        assert spans, "audit ran without emitting analysis.* spans"

        # a clean public cache: the seeded repos carry no unsound
        # declarations, so nothing may error at scale
        assert not audit.has_errors, audit.render()
        assert elapsed < BUDGET_S, (
            f"full audit took {elapsed:.2f}s (budget {BUDGET_S}s) over "
            f"{_results['spec_count']} specs"
        )

    def test_per_code_counters_exported(self, public_cache):
        """Schema 8: any diagnostic increments its per-code counter."""
        from repro.obs import metrics

        repo, cache = public_cache
        obs.reset()
        context = AuditContext(
            repo=repo, cache=cache, concrete_specs=cache.all_specs()
        )
        audit = Analyzer(["abi"]).run(context)
        counters = metrics.snapshot()["counters"]
        for diag in audit.diagnostics:
            assert counters.get(f"analysis.diagnostics.code.{diag.code}")
