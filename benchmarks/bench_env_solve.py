"""Environment-scale concretization: batch solve, ground cache, incremental.

An environment's roots used to be solved one ``spack spec`` at a time;
``Concretizer.solve_all`` puts every root in ONE ASP program, so the
repository encoding, the reuse facts, and every shared ground rule are
paid for once.  This bench measures the three new paths against the
sequential baseline over the full RADIUSS root set:

* **seq**    — one fresh Concretizer per root (the historical cost of
  ``repro env concretize`` as N single-root solves);
* **batch**  — one ``solve_all`` over every root (headline: speedup);
* **warm**   — the identical batch re-solved through an enabled
  ground-program cache (headline: setup_s and ground_s must be 0.0 —
  neither span even opens on the cached path);
* **incremental** — one shared monotone ground state, each root solved
  as a delta against it (``asp.ground_delta``).

Run:   pytest benchmarks/bench_env_solve.py
Scale: REPRO_ENV_SOLVE_ROOTS (default: all 32 RADIUSS roots)
"""

import os
import time

import pytest

from repro.bench import FigureReport, local_cache_specs, write_results
from repro.bench.runner import PHASE_SPANS, ConfigTiming, TimingSample
from repro.bench.scenarios import bench_repo
from repro.concretize import Concretizer, GroundProgramCache
from repro.obs import metrics, trace
from repro.repos.radiuss import RADIUSS_ROOTS

ROOT_COUNT = int(os.environ.get("REPRO_ENV_SOLVE_ROOTS", str(len(RADIUSS_ROOTS))))
ROOTS = list(RADIUSS_ROOTS)[:ROOT_COUNT]

_results = {}
_headlines = {}


def _sample(fn):
    """Run ``fn`` once; return (TimingSample, its return value)."""
    before = trace.phase_times()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    after = trace.phase_times()
    phases = {
        phase: after.get(span, 0.0) - before.get(span, 0.0)
        for phase, span in PHASE_SPANS.items()
    }
    return (
        TimingSample(
            seconds=elapsed,
            built=len(result.built),
            spliced=len(result.spliced),
            reused=len(result.reused),
            phases=phases,
        ),
        result,
    )


def _record(label, sample):
    timing = ConfigTiming(label=label, spec=f"radiuss-{len(ROOTS)}")
    timing.samples.append(sample)
    _results[label] = timing
    return timing


@pytest.fixture(scope="module", autouse=True)
def report_at_end():
    yield
    report = FigureReport(
        "env_solve",
        f"environment-scale concretization over {len(ROOTS)} RADIUSS roots",
    )
    for label in ("seq", "batch", "warm", "incremental"):
        if label in _results:
            report.add_timing(_results[label])
    for key, value in sorted(_headlines.items()):
        report.headline(key, value)
    write_results(report)


def test_sequential_baseline():
    """N fresh single-root solves: what an env concretize used to cost."""
    repo = bench_repo()
    reusable = local_cache_specs()
    total, phases = 0.0, {p: 0.0 for p in PHASE_SPANS}
    built = spliced = reused = 0
    for root in ROOTS:
        concretizer = Concretizer(repo, reusable_specs=reusable)
        sample, _ = _sample(lambda: concretizer.solve([root]))
        total += sample.seconds
        built += sample.built
        spliced += sample.spliced
        reused += sample.reused
        for p in phases:
            phases[p] += sample.phases[p]
    _record(
        "seq",
        TimingSample(
            seconds=total, built=built, spliced=spliced, reused=reused,
            phases=phases,
        ),
    )


def test_batch_solve():
    """All roots in one ASP program; shared deps unify into one node."""
    repo = bench_repo()
    concretizer = Concretizer(repo, reusable_specs=local_cache_specs())
    sample, result = _sample(lambda: concretizer.solve_all(ROOTS))
    assert len(result.roots) == len(ROOTS)
    _record("batch", sample)
    if "seq" in _results:
        speedup = _results["seq"].mean / sample.seconds
        _headlines["batch_speedup_vs_sequential (target: >=5)"] = speedup
        assert sample.seconds < _results["seq"].mean
    # CI budget knob: the env-solve smoke job pins a fixed wall-clock
    # budget for the whole batch at its reduced root count
    budget_ms = os.environ.get("REPRO_ENV_SOLVE_BUDGET_MS")
    if budget_ms is not None:
        assert sample.seconds * 1000 <= float(budget_ms), (
            f"batch solve of {len(ROOTS)} roots took "
            f"{sample.seconds * 1e3:.1f} ms (budget {budget_ms} ms)"
        )


def test_warm_ground_cache():
    """Cached re-solve: neither concretize.setup nor asp.ground opens."""
    repo = bench_repo()
    reusable = local_cache_specs()
    cache = GroundProgramCache()
    Concretizer(
        repo, reusable_specs=reusable, ground_cache=cache
    ).solve_all(ROOTS)  # cold: populates the cache
    hits_before = metrics.snapshot()["counters"].get(
        "concretize.ground_cache_hits", 0
    )
    warm = Concretizer(repo, reusable_specs=reusable, ground_cache=cache)
    sample, result = _sample(lambda: warm.solve_all(ROOTS))
    assert len(result.roots) == len(ROOTS)
    hits = metrics.snapshot()["counters"].get("concretize.ground_cache_hits", 0)
    assert hits >= hits_before + 1
    # the whole point: the cached path provably spends ZERO time in
    # setup and grounding (the spans never open, so the deltas are 0.0)
    assert sample.phases["setup"] == 0.0
    assert sample.phases["ground"] == 0.0
    _record("warm", sample)
    _headlines["warm_setup_s (must be 0)"] = sample.phases["setup"]
    _headlines["warm_ground_s (must be 0)"] = sample.phases["ground"]
    if "batch" in _results:
        _headlines["warm_speedup_vs_batch"] = _results["batch"].mean / sample.seconds


def test_incremental_resolves():
    """Re-solve after one root changes: only the delta is re-ground.

    The incremental path shines when the request *almost* repeats —
    here the environment drops one root — because the shared monotone
    ground state already holds every base (repo + logic) instance and
    only the changed request facts are delta-ground
    (``asp.ground_delta``; no ``asp.ground`` span opens at all).
    """
    repo = bench_repo()
    reusable = local_cache_specs()
    changed = ROOTS[:-1] if len(ROOTS) > 1 else ROOTS
    concretizer = Concretizer(repo, reusable_specs=reusable, incremental=True)
    concretizer.solve(ROOTS)  # primes the shared base + request state
    sample, result = _sample(lambda: concretizer.solve(changed))
    assert len(result.roots) == len(changed)
    assert sample.phases["ground"] == 0.0  # only ground_delta ran
    _record("incremental", sample)
    fresh = Concretizer(repo, reusable_specs=reusable)
    fresh_sample, _ = _sample(lambda: fresh.solve(changed))
    _headlines["incremental_resolve_speedup_vs_fresh_batch"] = (
        fresh_sample.seconds / sample.seconds
    )
