"""CLI telemetry tests: the sink, crash path, and `repro obs` verbs."""

import json
import logging

import pytest

import repro.cli as cli
from repro.cli import main
from repro.obs import SpanContextFilter, trace
from repro.obs.session import read_sessions


@pytest.fixture
def telemetry(monkeypatch, tmp_path):
    tdir = tmp_path / "telemetry"
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tdir))
    return tdir


@pytest.fixture
def no_telemetry(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)


class TestSessionSink:
    def test_every_invocation_appends_one_record(self, telemetry, capsys):
        for _ in range(3):
            assert main(["--repo", "mock", "spec", "zlib"]) == 0
        sessions = read_sessions(telemetry)
        assert len(sessions) == 3
        for s in sessions:
            assert s["command"] == "spec"
            assert s["outcome"] == "ok"
            assert s["exit_code"] == 0
            assert s["wall_s"] > 0
            assert "concretize.solve" in s["phases"]

    def test_record_phases_are_per_invocation_deltas(self, telemetry, capsys):
        main(["--repo", "mock", "spec", "zlib"])
        main(["--repo", "mock", "spec", "zlib"])
        a, b = read_sessions(telemetry)
        # cumulative aggregates would double on the second run
        assert b["phases"]["concretize.solve"]["count"] == \
            a["phases"]["concretize.solve"]["count"]

    def test_flag_enables_sink_without_env(self, no_telemetry, tmp_path, capsys):
        tdir = tmp_path / "flagged"
        assert main(["--repo", "mock", "spec", "zlib",
                     "--telemetry-dir", str(tdir)]) == 0
        assert len(read_sessions(tdir)) == 1

    def test_disabled_sink_adds_no_files(self, no_telemetry, tmp_path,
                                         monkeypatch, capsys):
        # overhead guard for the off-by-default path: no telemetry dir
        # configured -> a CLI run must create nothing anywhere
        monkeypatch.chdir(tmp_path)
        assert main(["--repo", "mock", "spec", "zlib"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_failed_command_recorded_as_error(self, telemetry, capsys):
        assert main(["--repo", "mock", "spec", "zlib@=99"]) == 1
        [session] = read_sessions(telemetry)
        assert session["outcome"] == "error"
        assert session["exit_code"] == 1

    def test_usage_error_recorded(self, telemetry, tmp_path, capsys):
        missing = tmp_path / "nope.txt"
        assert main(["--repo", "mock", "spec", "zlib",
                     "--mirrors-file", str(missing)]) == 2
        [session] = read_sessions(telemetry)
        assert session["outcome"] == "usage-error"
        assert session["error"] == "CLIError"


class TestCrashPath:
    @pytest.fixture
    def exploding_find(self, monkeypatch):
        def boom(args):
            raise RuntimeError("synthetic crash")
        monkeypatch.setattr(cli, "cmd_find", boom)

    def test_crash_is_one_line_exit_2_with_report(
        self, telemetry, exploding_find, capsys, tmp_path
    ):
        assert main(["find", "--store", str(tmp_path / "s")]) == 2
        err = capsys.readouterr().err
        assert "error: internal error: RuntimeError: synthetic crash" in err
        assert "crash report:" in err
        assert "Traceback" not in err  # one line, not a spew
        [crash] = list(telemetry.glob("crash-*.json"))
        doc = json.loads(crash.read_text())
        assert doc["exception"]["type"] == "RuntimeError"
        assert any("synthetic crash" in l for l in doc["exception"]["traceback"])
        assert doc["command"] == "find"
        assert isinstance(doc["recent_spans"], list)

    def test_crash_session_recorded(self, telemetry, exploding_find,
                                    capsys, tmp_path):
        main(["find", "--store", str(tmp_path / "s")])
        [session] = read_sessions(telemetry)
        assert session["outcome"] == "crash"
        assert session["error"] == "RuntimeError"
        assert session["exit_code"] == 2

    def test_vv_shows_traceback(self, telemetry, exploding_find, capsys,
                                tmp_path):
        assert main(["-vv", "find", "--store", str(tmp_path / "s")]) == 2
        err = capsys.readouterr().err
        assert "Traceback (most recent call last)" in err
        assert "error: internal error: RuntimeError" in err

    def test_no_telemetry_dir_still_one_line(self, no_telemetry,
                                             exploding_find, capsys, tmp_path):
        assert main(["find", "--store", str(tmp_path / "s")]) == 2
        err = capsys.readouterr().err
        assert "error: internal error: RuntimeError" in err
        assert "rerun with -vv" in err

    def test_cli_error_still_exits_2_without_crash_report(self, telemetry,
                                                          capsys, tmp_path):
        missing = tmp_path / "nope.txt"
        assert main(["--repo", "mock", "spec", "zlib",
                     "--mirrors-file", str(missing)]) == 2
        assert list(telemetry.glob("crash-*.json")) == []

    def test_broken_pipe_is_not_a_crash(self, telemetry, monkeypatch,
                                        capsys, tmp_path):
        # `repro obs report | head` closing stdout early is a normal
        # downstream event: quiet exit 1, no crash report
        def closed_pipe(args):
            raise BrokenPipeError(32, "Broken pipe")
        monkeypatch.setattr(cli, "cmd_find", closed_pipe)
        assert main(["find", "--store", str(tmp_path / "s")]) == 1
        assert "internal error" not in capsys.readouterr().err
        assert list(telemetry.glob("crash-*.json")) == []
        [session] = read_sessions(telemetry)
        assert session["outcome"] == "interrupted"
        assert session["error"] == "BrokenPipeError"


class TestObsVerbs:
    def _record_fleet(self, telemetry, tmp_path, capsys):
        store = str(tmp_path / "store")
        cache = str(tmp_path / "cache")
        assert main(["--repo", "mock", "install", "zlib",
                     "--store", store]) == 0
        assert main(["--repo", "mock", "buildcache", "create", "zlib",
                     "--store", store, "--cache", cache]) == 0
        store2 = str(tmp_path / "store2")
        assert main(["--repo", "mock", "install", "zlib", "--store", store2,
                     "--cache", cache]) == 0
        assert main(["--repo", "mock", "spec", "zlib"]) == 0
        capsys.readouterr()

    def test_report_over_fleet(self, telemetry, tmp_path, capsys):
        self._record_fleet(telemetry, tmp_path, capsys)
        assert main(["obs", "report"]) == 0
        out = capsys.readouterr().out
        assert "4 session(s)" in out
        assert "install" in out and "spec" in out
        assert "wall_p50_ms" in out and "wall_p95_ms" in out
        assert "p50_ms" in out and "p95_ms" in out  # per-command phases
        assert "concretize.solve" in out
        assert "cache_hit_rate" in out
        assert "buildcache.hits" in out

    def test_report_json(self, telemetry, tmp_path, capsys):
        self._record_fleet(telemetry, tmp_path, capsys)
        assert main(["obs", "report", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sessions"] == 4
        assert "install" in doc["commands"]
        assert doc["rates"]["cache_hit_rate"] > 0

    def test_show_and_diff(self, telemetry, tmp_path, capsys):
        self._record_fleet(telemetry, tmp_path, capsys)
        assert main(["obs", "show", "last"]) == 0
        out = capsys.readouterr().out
        assert "command: spec" in out
        assert "concretize.solve" in out
        assert main(["obs", "diff", "0", "last"]) == 0
        out = capsys.readouterr().out
        assert "delta_pct" in out and "concretize.solve" in out

    def test_show_unknown_session_exits_2(self, telemetry, tmp_path, capsys):
        self._record_fleet(telemetry, tmp_path, capsys)
        assert main(["obs", "show", "zzzzzzzz"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_verbs_without_telemetry_dir_exit_2(self, no_telemetry, capsys):
        assert main(["obs", "report"]) == 2
        assert "no telemetry directory" in capsys.readouterr().err

    def test_report_empty_dir(self, telemetry, capsys):
        assert main(["obs", "report"]) == 0
        assert "no recorded sessions" in capsys.readouterr().out


class TestBenchDiffVerb:
    def _write(self, tmp_path, name, mean):
        doc = {"figure": "fig", "rows": [
            {"label": "l", "spec": "axom", "mean_s": mean, "solve_s": mean / 2}
        ]}
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_self_vs_self_passes(self, no_telemetry, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 1.0)
        assert main(["obs", "bench-diff", a, a]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_inflated_fails(self, no_telemetry, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 1.0)
        b = self._write(tmp_path, "b.json", 2.0)
        assert main(["obs", "bench-diff", a, b, "--budget-pct", "20"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_budget_loosens_gate(self, no_telemetry, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 1.0)
        b = self._write(tmp_path, "b.json", 1.15)
        assert main(["obs", "bench-diff", a, b, "--budget-pct", "50"]) == 0

    def test_missing_file_exits_2(self, no_telemetry, tmp_path, capsys):
        assert main(["obs", "bench-diff", str(tmp_path / "g.json"),
                     str(tmp_path / "h.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_baseline_dir_resolves_by_figure(self, no_telemetry, tmp_path,
                                             capsys):
        baseline = tmp_path / "baseline"
        baseline.mkdir()
        self._write(baseline, "fig.json", 1.0)  # figure name, not file name
        new = self._write(tmp_path, "new.json", 1.05)
        assert main(["obs", "bench-diff", "--baseline-dir", str(baseline),
                     new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_baseline_dir_catches_regression(self, no_telemetry, tmp_path,
                                             capsys):
        baseline = tmp_path / "baseline"
        baseline.mkdir()
        self._write(baseline, "fig.json", 1.0)
        new = self._write(tmp_path, "new.json", 2.0)
        assert main(["obs", "bench-diff", "--baseline-dir", str(baseline),
                     new, "--budget-pct", "20"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_baseline_dir_without_figure_exits_2(self, no_telemetry,
                                                 tmp_path, capsys):
        path = tmp_path / "new.json"
        path.write_text(json.dumps({"rows": []}))  # no figure field
        assert main(["obs", "bench-diff", "--baseline-dir", str(tmp_path),
                     str(path)]) == 2
        assert "figure" in capsys.readouterr().err

    def test_baseline_dir_missing_figure_file_exits_2(self, no_telemetry,
                                                      tmp_path, capsys):
        baseline = tmp_path / "empty"
        baseline.mkdir()
        new = self._write(tmp_path, "new.json", 1.0)
        assert main(["obs", "bench-diff", "--baseline-dir", str(baseline),
                     new]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_baseline_at_all_exits_2(self, no_telemetry, tmp_path,
                                        capsys):
        new = self._write(tmp_path, "new.json", 1.0)
        assert main(["obs", "bench-diff", new]) == 2
        assert "baseline" in capsys.readouterr().err


class TestLogCorrelation:
    def test_filter_stamps_active_span(self):
        f = SpanContextFilter()
        record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                                   "msg", (), None)
        with trace.span("correlate.op"):
            assert f.filter(record) is True
            assert record.span.startswith("correlate.op#")
            span_id = int(record.span.split("#")[1])
            assert span_id > 0

    def test_filter_outside_span_uses_dash(self):
        f = SpanContextFilter()
        record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                                   "msg", (), None)
        f.filter(record)
        assert record.span == "-"

    def test_configured_handler_formats_span(self):
        import io

        logger = logging.getLogger("repro")
        saved = list(logger.handlers)
        logger.handlers = []
        try:
            from repro.obs import configure_logging

            stream = io.StringIO()
            configure_logging(1, stream=stream)
            with trace.span("logged.op"):
                logging.getLogger("repro.test").info("hello from inside")
            out = stream.getvalue()
            assert "[logged.op#" in out
            assert "hello from inside" in out
            logging.getLogger("repro.test").info("outside")
            assert "[-]" in stream.getvalue()
        finally:
            logger.handlers = saved
