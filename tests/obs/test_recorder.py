"""Flight-recorder tests: ring bounds, overhead guard, crash reports."""

import json
import threading
import time

import pytest

from repro.obs import Tracer, crash_report, flight_recorder, trace, write_crash_report
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder


@pytest.fixture
def recorder():
    r = FlightRecorder(capacity=64)
    tracer = Tracer()
    tracer.set_recorder(r.record_span)
    return r, tracer


class TestRingBounds:
    def test_ring_never_grows_past_capacity(self, recorder):
        r, tracer = recorder
        for i in range(5000):
            with tracer.span("ring.op", i=i):
                pass
        assert len(r) == 64
        # newest-last: the ring holds exactly the final 64 spans
        ids = [rec["id"] for rec in r.recent()]
        assert ids == sorted(ids)
        assert len(ids) == 64

    def test_recent_n_returns_newest(self, recorder):
        r, tracer = recorder
        for _ in range(10):
            with tracer.span("ring.op"):
                pass
        last3 = r.recent(3)
        assert len(last3) == 3
        assert last3 == r.recent()[-3:]

    def test_record_fields(self, recorder):
        r, tracer = recorder
        with tracer.span("outer.op"):
            with tracer.span("inner.op"):
                pass
        inner, outer = r.recent()[-2], r.recent()[-1]
        assert inner["name"] == "inner.op"
        assert inner["parent"] == "outer.op"
        assert inner["duration_s"] >= 0.0
        assert isinstance(inner["id"], int) and inner["id"] > 0
        assert outer["name"] == "outer.op"

    def test_error_spans_flagged(self, recorder):
        r, tracer = recorder
        with pytest.raises(ValueError):
            with tracer.span("bad.op"):
                raise ValueError("no")
        assert r.recent()[-1]["error"] == "ValueError"

    def test_capacity_zero_disables(self):
        r = FlightRecorder(capacity=0)
        tracer = Tracer()
        tracer.set_recorder(r.record_span)
        for _ in range(100):
            with tracer.span("quiet.op"):
                pass
        assert len(r) == 0

    def test_capacity_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_RECORDER_SPANS", "7")
        assert FlightRecorder().capacity == 7
        monkeypatch.setenv("REPRO_FLIGHT_RECORDER_SPANS", "junk")
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_global_tracer_feeds_global_ring(self):
        before = len(flight_recorder)
        with trace.span("recorder.smoke"):
            pass
        assert len(flight_recorder) >= min(before + 1, flight_recorder.capacity)
        assert any(
            rec["name"] == "recorder.smoke" for rec in flight_recorder.recent(10)
        )

    def test_thread_safety_under_concurrent_spans(self, recorder):
        r, tracer = recorder
        barrier = threading.Barrier(4)

        def worker(idx):
            barrier.wait()
            for i in range(500):
                with tracer.span(f"thread.{idx}", i=i):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(r) == 64  # bounded regardless of contention


class TestOverheadGuard:
    def test_recorder_span_overhead_is_tiny(self):
        # same idiom as the PR 2 event-retention guard: 20k spans with
        # the ring attached must stay far under a generous CI-safe
        # bound — the always-on tier must never grow real work
        r = FlightRecorder(capacity=DEFAULT_CAPACITY)
        tracer = Tracer()
        tracer.set_recorder(r.record_span)
        start = time.perf_counter()
        for _ in range(20_000):
            with tracer.span("fast.op"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"recorded spans too slow: {elapsed:.3f}s for 20k"
        assert len(r) == DEFAULT_CAPACITY


class TestCrashReport:
    def _boom(self):
        try:
            raise RuntimeError("kaboom")
        except RuntimeError as e:
            return e

    def test_report_contents(self, recorder):
        r, tracer = recorder
        tracer.set_recorder(r.record_span)
        with tracer.span("doomed.op"):
            pass
        report = crash_report(
            self._boom(), command="install", argv=["install", "zlib"], recorder=r
        )
        assert report["kind"] == "crash_report"
        assert report["command"] == "install"
        assert report["exception"]["type"] == "RuntimeError"
        assert report["exception"]["message"] == "kaboom"
        assert any("kaboom" in line for line in report["exception"]["traceback"])
        assert any(s["name"] == "doomed.op" for s in report["recent_spans"])
        assert "metrics" in report and "phases" in report
        json.dumps(report)  # must be serializable as-is

    def test_write_crash_report_lands_json(self, tmp_path):
        report = crash_report(self._boom(), command="spec", argv=["spec", "x"])
        path = write_crash_report(tmp_path / "tel", report)
        assert path.exists() and path.name.startswith("crash-")
        doc = json.loads(path.read_text())
        assert doc["exception"]["type"] == "RuntimeError"
        # no torn temp file left behind
        assert not list((tmp_path / "tel").glob("*.tmp"))

    def test_two_reports_do_not_collide(self, tmp_path):
        a = write_crash_report(tmp_path, crash_report(self._boom()))
        time.sleep(0.001)  # ensure a distinct microsecond stamp
        b = write_crash_report(tmp_path, crash_report(self._boom()))
        assert a != b
        assert len(list(tmp_path.glob("crash-*.json"))) == 2
