"""Exporter tests: Chrome trace-event validity and the phase table."""

import json

import pytest

from repro.obs import SCHEMA_VERSION, Tracer, chrome_trace, phase_table, write_chrome_trace


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    with t.span("concretize.solve", roots=["hdf5"]):
        with t.span("asp.ground"):
            pass
        with t.span("asp.solve", atoms=42):
            pass
    return t


class TestChromeTrace:
    def test_json_round_trip(self, tracer, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        document = json.loads(path.read_text())
        assert document == chrome_trace(tracer)

    def test_required_fields(self, tracer):
        document = chrome_trace(tracer)
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)

    def test_category_is_subsystem(self, tracer):
        cats = {e["name"]: e["cat"] for e in chrome_trace(tracer)["traceEvents"]}
        assert cats["concretize.solve"] == "concretize"
        assert cats["asp.ground"] == "asp"

    def test_nesting_encoded_in_args_parent(self, tracer):
        by_name = {e["name"]: e for e in chrome_trace(tracer)["traceEvents"]}
        assert by_name["asp.ground"]["args"]["parent"] == "concretize.solve"
        assert "parent" not in by_name["concretize.solve"]["args"]

    def test_attributes_exported(self, tracer):
        by_name = {e["name"]: e for e in chrome_trace(tracer)["traceEvents"]}
        assert by_name["asp.solve"]["args"]["atoms"] == 42
        assert by_name["concretize.solve"]["args"]["roots"] == ["hdf5"]

    def test_schema_version_embedded(self, tracer):
        assert chrome_trace(tracer)["otherData"]["schema_version"] == SCHEMA_VERSION

    def test_child_timestamps_inside_parent(self, tracer):
        by_name = {e["name"]: e for e in chrome_trace(tracer)["traceEvents"]}
        parent = by_name["concretize.solve"]
        child = by_name["asp.ground"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3

    def test_empty_tracer_is_valid(self):
        document = chrome_trace(Tracer())
        assert document["traceEvents"] == []
        json.dumps(document)


class TestPhaseTable:
    def test_lists_every_phase(self, tracer):
        table = phase_table(tracer)
        for name in ("concretize.solve", "asp.ground", "asp.solve"):
            assert name in table

    def test_has_header_and_alignment(self, tracer):
        lines = phase_table(tracer).splitlines()
        assert "phase" in lines[0] and "total_s" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 2 + 3  # header + rule + one row per phase

    def test_empty_tracer_message(self):
        assert phase_table(Tracer()) == "(no spans recorded)"

    def test_works_from_aggregates_even_when_disabled(self):
        tracer = Tracer()  # disabled: no events, aggregates only
        with tracer.span("quiet.op"):
            pass
        assert "quiet.op" in phase_table(tracer)
