"""Exporter tests: Chrome trace-event validity and the phase table."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    metrics_table,
    phase_table,
    write_chrome_trace,
)
from repro.obs.trace import PhaseStat


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    with t.span("concretize.solve", roots=["hdf5"]):
        with t.span("asp.ground"):
            pass
        with t.span("asp.solve", atoms=42):
            pass
    return t


class TestChromeTrace:
    def test_json_round_trip(self, tracer, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        document = json.loads(path.read_text())
        assert document == chrome_trace(tracer)

    def test_required_fields(self, tracer):
        document = chrome_trace(tracer)
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)

    def test_category_is_subsystem(self, tracer):
        cats = {e["name"]: e["cat"] for e in chrome_trace(tracer)["traceEvents"]}
        assert cats["concretize.solve"] == "concretize"
        assert cats["asp.ground"] == "asp"

    def test_nesting_encoded_in_args_parent(self, tracer):
        by_name = {e["name"]: e for e in chrome_trace(tracer)["traceEvents"]}
        assert by_name["asp.ground"]["args"]["parent"] == "concretize.solve"
        assert "parent" not in by_name["concretize.solve"]["args"]

    def test_attributes_exported(self, tracer):
        by_name = {e["name"]: e for e in chrome_trace(tracer)["traceEvents"]}
        assert by_name["asp.solve"]["args"]["atoms"] == 42
        assert by_name["concretize.solve"]["args"]["roots"] == ["hdf5"]

    def test_schema_version_embedded(self, tracer):
        assert chrome_trace(tracer)["otherData"]["schema_version"] == SCHEMA_VERSION

    def test_child_timestamps_inside_parent(self, tracer):
        by_name = {e["name"]: e for e in chrome_trace(tracer)["traceEvents"]}
        parent = by_name["concretize.solve"]
        child = by_name["asp.ground"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3

    def test_empty_tracer_is_valid(self):
        document = chrome_trace(Tracer())
        assert document["traceEvents"] == []
        json.dumps(document)


class TestPhaseTable:
    def test_lists_every_phase(self, tracer):
        table = phase_table(tracer)
        for name in ("concretize.solve", "asp.ground", "asp.solve"):
            assert name in table

    def test_has_header_and_alignment(self, tracer):
        lines = phase_table(tracer).splitlines()
        assert "phase" in lines[0] and "total_s" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 2 + 3  # header + rule + one row per phase

    def test_empty_tracer_message(self):
        assert phase_table(Tracer()) == "(no spans recorded)"

    def test_works_from_aggregates_even_when_disabled(self):
        tracer = Tracer()  # disabled: no events, aggregates only
        with tracer.span("quiet.op"):
            pass
        assert "quiet.op" in phase_table(tracer)


class TestDeterministicOrdering:
    """`repro obs diff` and CI diffs depend on stable table output."""

    @staticmethod
    def _stat(total: float) -> PhaseStat:
        stat = PhaseStat()
        stat.add(total)
        return stat

    def test_phase_table_breaks_total_ties_by_name(self):
        tracer = Tracer()
        for name in ("z.op", "a.op", "m.op"):
            tracer._aggregates[name] = self._stat(0.5)
        rows = phase_table(tracer).splitlines()[2:]
        assert [r.split()[0] for r in rows] == ["a.op", "m.op", "z.op"]

    def test_phase_table_primary_sort_is_total_desc(self):
        tracer = Tracer()
        tracer._aggregates["small.op"] = self._stat(0.1)
        tracer._aggregates["big.op"] = self._stat(0.9)
        tracer._aggregates["mid.op"] = self._stat(0.5)
        rows = phase_table(tracer).splitlines()[2:]
        assert [r.split()[0] for r in rows] == ["big.op", "mid.op", "small.op"]

    def test_phase_table_identical_across_insertion_orders(self):
        totals = {"a.op": 0.25, "b.op": 0.25, "c.op": 0.5, "d.op": 0.25}
        tables = []
        for names in (list(totals), list(reversed(list(totals)))):
            tracer = Tracer()
            for name in names:
                tracer._aggregates[name] = self._stat(totals[name])
            tables.append(phase_table(tracer))
        assert tables[0] == tables[1]

    def test_metrics_table_sorted_by_name_then_kind(self):
        registry = MetricsRegistry()
        # one name reused across all three instrument kinds plus an
        # earlier/later name: rows must come out (metric, kind)-sorted
        registry.inc("b.same")
        registry.gauge("b.same").set(1.0)
        registry.observe("b.same", 2.0)
        registry.inc("z.counter")
        registry.gauge("a.gauge").set(3.0)
        rows = metrics_table(registry).splitlines()[2:]
        keys = [(r.split()[0], r.split()[1]) for r in rows]
        assert keys == [
            ("a.gauge", "gauge"),
            ("b.same", "counter"),
            ("b.same", "gauge"),
            ("b.same", "histogram"),
            ("z.counter", "counter"),
        ]

    def test_metrics_table_identical_across_insertion_orders(self):
        first = MetricsRegistry()
        first.inc("x.a")
        first.gauge("x.b").set(1.0)
        second = MetricsRegistry()
        second.gauge("x.b").set(1.0)
        second.inc("x.a")
        assert metrics_table(first) == metrics_table(second)
