"""Metrics registry tests: counters, gauges, histogram percentiles."""

import threading

import pytest

from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_defaults_to_one(self, registry):
        registry.inc("a.hits")
        registry.inc("a.hits")
        assert registry.counter("a.hits").value == 2

    def test_inc_amount(self, registry):
        registry.inc("a.bytes", 1024)
        registry.inc("a.bytes", 512)
        assert registry.counter("a.bytes").value == 1536

    def test_counters_only_go_up(self, registry):
        with pytest.raises(ValueError):
            registry.counter("a.n").inc(-1)

    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("x.y") is registry.counter("x.y")

    def test_concurrent_increments_lose_nothing(self, registry):
        counter = registry.counter("race.n")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_last_write_wins(self, registry):
        gauge = registry.gauge("g.v")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1

    def test_max_keeps_high_water(self, registry):
        gauge = registry.gauge("g.peak")
        for v in (2, 5, 3):
            gauge.max(v)
        assert gauge.value == 5


class TestHistogramPercentiles:
    def test_percentiles_over_uniform_1_to_100(self, registry):
        hist = registry.histogram("h.lat")
        for v in range(1, 101):
            hist.observe(v)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100
        assert hist.percentile(0) == 1  # nearest-rank floor

    def test_summary_fields(self, registry):
        hist = registry.histogram("h.s")
        for v in (4.0, 1.0, 3.0, 2.0):
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == 4
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["p50"] == 2.0

    def test_empty_histogram_summary_is_zeros(self, registry):
        s = registry.histogram("h.empty").summary()
        assert s["count"] == 0
        assert s["p99"] == 0.0

    def test_single_sample(self, registry):
        hist = registry.histogram("h.one")
        hist.observe(7.0)
        assert hist.percentile(50) == 7.0
        assert hist.percentile(99) == 7.0

    def test_percentile_out_of_range(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h.x").percentile(101)


class TestSnapshot:
    def test_snapshot_is_json_serializable(self, registry):
        import json

        registry.inc("c.n", 3)
        registry.gauge("g.v").set(2.5)
        registry.observe("h.v", 1.0)
        snap = registry.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["counters"]["c.n"] == 3
        assert parsed["gauges"]["g.v"] == 2.5
        assert parsed["histograms"]["h.v"]["count"] == 1

    def test_reset(self, registry):
        registry.inc("c.n")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestGlobalHelpers:
    def test_obs_snapshot_merges_phases_and_metrics(self):
        import repro.obs as obs

        snap = obs.snapshot()
        assert snap["schema_version"] == obs.SCHEMA_VERSION
        assert set(snap) == {"schema_version", "phases", "metrics"}
