"""Session-sink tests: append/rotate/read, resolution, aggregation."""

import json
import os

import pytest

from repro.obs.session import (
    SESSIONS_FILE,
    aggregate_sessions,
    append_session,
    diff_text,
    metrics_delta,
    phase_delta,
    read_sessions,
    report_text,
    resolve_session,
    session_record,
    session_text,
    telemetry_dir,
)


def make_record(command="spec", outcome="ok", wall_s=0.5, phases=None,
                counters=None, error=None, exit_code=0):
    return session_record(
        command=command,
        argv=[command, "zlib"],
        exit_code=exit_code,
        wall_s=wall_s,
        outcome=outcome,
        error=error,
        phases=phases if phases is not None else {},
        metrics_snapshot={
            "counters": counters or {}, "gauges": {}, "histograms": {}
        },
    )


class TestTelemetryDir:
    def test_flag_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "env"))
        assert telemetry_dir(str(tmp_path / "flag")).name == "flag"

    def test_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "env"))
        assert telemetry_dir(None).name == "env"

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        assert telemetry_dir(None) is None


class TestRecord:
    def test_shape_and_serializability(self):
        record = make_record(phases={"asp.solve": {
            "count": 1, "total_s": 0.2, "mean_s": 0.2, "min_s": 0.2, "max_s": 0.2}})
        for key in ("schema_version", "id", "ts", "iso_time", "host",
                    "command", "argv", "argv_digest", "exit_code",
                    "outcome", "wall_s", "phases", "metrics"):
            assert key in record, key
        assert record["kind"] == "session"
        json.dumps(record)

    def test_error_field_only_when_set(self):
        assert "error" not in make_record()
        assert make_record(error="RuntimeError", outcome="crash")["error"] == \
            "RuntimeError"

    def test_ids_are_distinct(self):
        assert make_record()["id"] != make_record()["id"]


class TestAppendAndRead:
    def test_append_creates_jsonl(self, tmp_path):
        path = append_session(tmp_path, make_record())
        assert path.name == SESSIONS_FILE
        [session] = read_sessions(tmp_path)
        assert session["command"] == "spec"

    def test_appends_accumulate_in_order(self, tmp_path):
        for i in range(5):
            append_session(tmp_path, make_record(wall_s=float(i)))
        walls = [s["wall_s"] for s in read_sessions(tmp_path)]
        assert walls == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_rotation_at_cap(self, tmp_path):
        # a tiny cap: the third append must rotate the first two out
        line_size = len(json.dumps(make_record(), sort_keys=True)) + 1
        cap = int(line_size * 2.5)
        for _ in range(3):
            append_session(tmp_path, make_record(), max_bytes=cap)
        assert (tmp_path / (SESSIONS_FILE + ".1")).exists()
        live = (tmp_path / SESSIONS_FILE).read_text().splitlines()
        assert len(live) == 1
        # rotated records still readable, oldest first
        assert len(read_sessions(tmp_path)) == 3
        assert len(read_sessions(tmp_path, include_rotated=False)) == 1

    def test_rotation_caps_total_disk(self, tmp_path):
        cap = 4096
        record = make_record()
        for _ in range(50):
            append_session(tmp_path, record, max_bytes=cap)
        total = sum(
            p.stat().st_size for p in tmp_path.iterdir() if p.is_file()
        )
        line = len(json.dumps(record, sort_keys=True)) + 1
        assert total <= 2 * cap + line

    def test_corrupt_lines_skipped(self, tmp_path):
        append_session(tmp_path, make_record())
        with open(tmp_path / SESSIONS_FILE, "a") as fh:
            fh.write('{"torn": \n')
        append_session(tmp_path, make_record())
        assert len(read_sessions(tmp_path)) == 2

    def test_non_session_documents_ignored(self, tmp_path):
        with open(tmp_path / SESSIONS_FILE, "w") as fh:
            fh.write(json.dumps({"kind": "other"}) + "\n")
            fh.write(json.dumps(["not", "a", "dict"]) + "\n")
        assert read_sessions(tmp_path) == []

    def test_missing_dir_reads_empty(self, tmp_path):
        assert read_sessions(tmp_path / "ghost") == []

    def test_line_is_single_json_document(self, tmp_path):
        append_session(tmp_path, make_record())
        [line] = (tmp_path / SESSIONS_FILE).read_text().splitlines()
        json.loads(line)


class TestResolve:
    def _sessions(self, n=4):
        return [make_record(wall_s=float(i)) for i in range(n)]

    def test_last_and_index(self):
        sessions = self._sessions()
        assert resolve_session(sessions, "last") is sessions[-1]
        assert resolve_session(sessions, "0") is sessions[0]
        assert resolve_session(sessions, "-2") is sessions[-2]

    def test_id_prefix(self):
        sessions = self._sessions()
        target = sessions[2]
        assert resolve_session(sessions, target["id"][:8]) is target

    def test_errors_are_lookup_errors(self):
        sessions = self._sessions()
        with pytest.raises(LookupError):
            resolve_session(sessions, "zzzzzz")
        with pytest.raises(LookupError):
            resolve_session(sessions, "99")
        with pytest.raises(LookupError):
            resolve_session([], "last")


class TestDeltas:
    def test_phase_delta_subtracts(self):
        before = {"asp.solve": {"count": 2, "total_s": 1.0, "mean_s": 0.5,
                                "min_s": 0.4, "max_s": 0.6}}
        after = {
            "asp.solve": {"count": 5, "total_s": 4.0, "mean_s": 0.8,
                          "min_s": 0.4, "max_s": 1.2},
            "asp.ground": {"count": 1, "total_s": 0.5, "mean_s": 0.5,
                           "min_s": 0.5, "max_s": 0.5},
        }
        delta = phase_delta(before, after)
        assert delta["asp.solve"]["count"] == 3
        assert delta["asp.solve"]["total_s"] == pytest.approx(3.0)
        assert delta["asp.solve"]["mean_s"] == pytest.approx(1.0)
        assert delta["asp.ground"]["count"] == 1

    def test_phase_delta_drops_untouched(self):
        stats = {"count": 1, "total_s": 0.1, "mean_s": 0.1,
                 "min_s": 0.1, "max_s": 0.1}
        assert phase_delta({"old.op": stats}, {"old.op": stats}) == {}

    def test_metrics_delta_counters_only(self):
        before = {"counters": {"buildcache.hits": 3}, "gauges": {},
                  "histograms": {}}
        after = {"counters": {"buildcache.hits": 5, "buildcache.misses": 2},
                 "gauges": {"g": 1.0}, "histograms": {}}
        delta = metrics_delta(before, after)
        assert delta["counters"] == {"buildcache.hits": 2,
                                     "buildcache.misses": 2}
        assert delta["gauges"] == {"g": 1.0}


class TestAggregation:
    def _fleet(self):
        solve = lambda t: {"asp.solve": {"count": 1, "total_s": t,
                                         "mean_s": t, "min_s": t, "max_s": t}}
        return [
            make_record("install", wall_s=1.0, phases=solve(0.5),
                        counters={"buildcache.hits": 8,
                                  "buildcache.misses": 2}),
            make_record("install", wall_s=2.0, phases=solve(1.5),
                        counters={"buildcache.hits": 2,
                                  "buildcache.misses": 8,
                                  "buildcache.mirror_hits": 5,
                                  "buildcache.mirror_misses": 5,
                                  "buildcache.mirror_fallbacks": 1}),
            make_record("install", wall_s=3.0, phases=solve(2.5)),
            make_record("spec", wall_s=0.5, outcome="crash",
                        error="RuntimeError", exit_code=2),
        ]

    def test_per_command_percentiles(self):
        agg = aggregate_sessions(self._fleet())
        install = agg["commands"]["install"]
        assert install["runs"] == 3
        assert install["wall"]["p50_s"] == pytest.approx(2.0)
        assert install["wall"]["p95_s"] == pytest.approx(3.0)
        solve = install["phases"]["asp.solve"]
        assert solve["p50_s"] == pytest.approx(1.5)
        assert solve["p95_s"] == pytest.approx(2.5)

    def test_rates(self):
        agg = aggregate_sessions(self._fleet())
        assert agg["rates"]["cache_hit_rate"] == pytest.approx(0.5)
        assert agg["rates"]["mirror_hit_rate"] == pytest.approx(0.5)
        assert agg["rates"]["mirror_fallback_rate"] == pytest.approx(0.1)

    def test_error_taxonomy(self):
        agg = aggregate_sessions(self._fleet())
        assert agg["errors"] == {"RuntimeError": 1}

    def test_report_text_contains_everything(self):
        text = report_text(self._fleet())
        assert "install" in text and "spec" in text
        assert "wall_p50_ms" in text and "wall_p95_ms" in text
        assert "asp.solve" in text
        assert "cache_hit_rate" in text
        assert "RuntimeError" in text

    def test_report_text_empty(self):
        assert "no recorded sessions" in report_text([])


class TestRenderers:
    def test_session_text(self):
        record = make_record(phases={"asp.solve": {
            "count": 2, "total_s": 0.4, "mean_s": 0.2, "min_s": 0.1,
            "max_s": 0.3}})
        text = session_text(record)
        assert record["id"] in text
        assert "asp.solve" in text and "total_ms" in text

    def test_diff_text_deltas(self):
        mk = lambda t: make_record(phases={"asp.solve": {
            "count": 1, "total_s": t, "mean_s": t, "min_s": t, "max_s": t}})
        text = diff_text(mk(0.1), mk(0.3))
        assert "asp.solve" in text
        assert "+200.0" in text

    def test_diff_text_phase_only_on_one_side(self):
        a = make_record(phases={"only.a": {"count": 1, "total_s": 0.1,
                                           "mean_s": 0.1, "min_s": 0.1,
                                           "max_s": 0.1}})
        b = make_record(phases={})
        text = diff_text(a, b)
        assert "only.a" in text and "-100.0" in text
