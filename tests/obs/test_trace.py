"""Span API tests: nesting, timing, attributes, thread-safety."""

import threading
import time

import pytest

from repro.obs import Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestSpanBasics:
    def test_span_times_its_body(self, tracer):
        with tracer.span("test.sleep") as sp:
            time.sleep(0.01)
        assert sp.duration >= 0.01
        [event] = tracer.events()
        assert event["name"] == "test.sleep"
        assert event["dur"] >= 0.01 * 1e6  # microseconds

    def test_attributes_at_creation_and_mid_flight(self, tracer):
        with tracer.span("test.attrs", atoms=7) as sp:
            sp.set(clauses=11)
        [event] = tracer.events()
        assert event["args"] == {"atoms": 7, "clauses": 11}

    def test_name_is_a_legal_attribute(self, tracer):
        with tracer.span("test.named", name="zlib"):
            pass
        [event] = tracer.events()
        assert event["name"] == "test.named"
        assert event["args"]["name"] == "zlib"

    def test_duration_zero_before_exit(self, tracer):
        with tracer.span("test.open") as sp:
            assert sp.duration == 0.0
        assert sp.duration > 0.0

    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("test.boom"):
                raise ValueError("no")
        [event] = tracer.events()
        assert event["args"]["error"] == "ValueError"

    def test_timestamps_relative_to_epoch_are_ordered(self, tracer):
        with tracer.span("test.first"):
            pass
        with tracer.span("test.second"):
            pass
        first, second = tracer.events()
        assert 0 <= first["ts"] <= second["ts"]


class TestNesting:
    def test_child_records_parent_name(self, tracer):
        with tracer.span("outer.op"):
            with tracer.span("inner.op"):
                pass
        inner, outer = tracer.events()
        assert inner["name"] == "inner.op"
        assert inner["parent"] == "outer.op"
        assert outer["parent"] is None

    def test_three_levels(self, tracer):
        with tracer.span("a.a"):
            with tracer.span("b.b"):
                with tracer.span("c.c"):
                    pass
        by_name = {e["name"]: e for e in tracer.events()}
        assert by_name["c.c"]["parent"] == "b.b"
        assert by_name["b.b"]["parent"] == "a.a"
        assert by_name["a.a"]["parent"] is None

    def test_siblings_share_parent(self, tracer):
        with tracer.span("root.op"):
            with tracer.span("kid.one"):
                pass
            with tracer.span("kid.two"):
                pass
        by_name = {e["name"]: e for e in tracer.events()}
        assert by_name["kid.one"]["parent"] == "root.op"
        assert by_name["kid.two"]["parent"] == "root.op"

    def test_current_span(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("test.cur") as sp:
            assert tracer.current_span() is sp
        assert tracer.current_span() is None

    def test_nested_durations_contained(self, tracer):
        with tracer.span("outer.timed") as outer:
            with tracer.span("inner.timed") as inner:
                time.sleep(0.005)
        assert inner.duration <= outer.duration


class TestAggregates:
    def test_phase_times_always_on(self):
        tracer = Tracer()  # never enabled
        for _ in range(3):
            with tracer.span("agg.op"):
                pass
        assert tracer.events() == []
        times = tracer.phase_times()
        assert times["agg.op"] > 0.0
        stats = tracer.phase_stats()["agg.op"]
        assert stats["count"] == 3
        assert stats["min_s"] <= stats["mean_s"] <= stats["max_s"]
        assert stats["total_s"] == pytest.approx(times["agg.op"])

    def test_clear_resets_everything(self, tracer):
        with tracer.span("gone.op"):
            pass
        tracer.clear()
        assert tracer.events() == []
        assert tracer.phase_times() == {}

    def test_disable_stops_event_retention(self, tracer):
        with tracer.span("kept.op"):
            pass
        tracer.disable()
        with tracer.span("dropped.op"):
            pass
        names = [e["name"] for e in tracer.events()]
        assert names == ["kept.op"]
        # ...but aggregates keep accumulating
        assert "dropped.op" in tracer.phase_times()


class TestThreadSafety:
    def test_concurrent_writers(self, tracer):
        n_threads, n_spans = 8, 50
        barrier = threading.Barrier(n_threads)

        def worker(idx):
            barrier.wait()
            for i in range(n_spans):
                with tracer.span(f"thread.{idx}", i=i):
                    with tracer.span(f"thread.{idx}.child"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = tracer.events()
        assert len(events) == n_threads * n_spans * 2
        # nesting is tracked per thread: children name their own
        # thread's span as parent, never another thread's
        for event in events:
            if event["name"].endswith(".child"):
                assert event["parent"] == event["name"][: -len(".child")]
        # every worker got its own tid lane
        tids = {e["tid"] for e in events}
        assert len(tids) == n_threads
        for idx in range(n_threads):
            assert tracer.phase_stats()[f"thread.{idx}"]["count"] == n_spans


class TestZeroOverheadWhenDisabled:
    def test_no_events_accumulate(self):
        tracer = Tracer()
        for _ in range(100):
            with tracer.span("quiet.op"):
                pass
        assert tracer.events() == []

    def test_disabled_span_overhead_is_tiny(self):
        # guard against the disabled path growing real work: 20k spans
        # must stay far under a generous CI-safe bound (~50µs each)
        tracer = Tracer()
        start = time.perf_counter()
        for _ in range(20_000):
            with tracer.span("fast.op"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"disabled spans too slow: {elapsed:.3f}s for 20k"
