"""bench-diff tests: self-comparison, inflation, noise floor, provenance."""

import json

import pytest

from repro.obs.regress import BenchDiffError, bench_diff, load_bench


def make_doc(mean=1.0, solve=0.5, figure="figure5", extra_row=None,
             provenance=None):
    rows = [
        {"label": "new/local", "spec": "axom", "runs": 3,
         "mean_s": mean, "stdev_s": 0.01, "solve_s": solve,
         "ground_s": 0.2, "built": 0},
        {"label": "new/local", "spec": "raja", "runs": 3,
         "mean_s": mean * 0.5, "stdev_s": 0.01, "solve_s": solve * 0.5,
         "ground_s": 0.1, "built": 0},
    ]
    if extra_row:
        rows.append(extra_row)
    doc = {"figure": figure, "rows": rows, "obs_schema": 6}
    if provenance:
        doc["provenance"] = provenance
    return doc


class TestBenchDiff:
    def test_self_comparison_is_clean(self):
        doc = make_doc()
        diff = bench_diff(doc, doc)
        assert diff.ok
        assert diff.deltas  # compared something, found nothing
        assert all(d.pct == 0.0 for d in diff.deltas)

    def test_inflation_beyond_budget_regresses(self):
        diff = bench_diff(make_doc(), make_doc(mean=1.5, solve=0.8),
                          budget_pct=20.0)
        assert not diff.ok
        regressed = {(d.key, d.column) for d in diff.regressions}
        assert ("new/local/axom", "mean_s") in regressed
        assert ("new/local/axom", "solve_s") in regressed

    def test_inflation_within_budget_passes(self):
        diff = bench_diff(make_doc(mean=1.0), make_doc(mean=1.1),
                          budget_pct=25.0)
        assert diff.ok
        # ...but the delta is still reported
        assert any(d.pct == pytest.approx(10.0, abs=0.1) for d in diff.deltas)

    def test_improvement_never_regresses(self):
        assert bench_diff(make_doc(mean=2.0), make_doc(mean=1.0)).ok

    def test_noise_floor_suppresses_tiny_phases(self):
        # a 10x blowup on a 0.1 ms phase is timer noise, not a regression
        old = make_doc()
        new = make_doc()
        for doc, value in ((old, 0.0001), (new, 0.001)):
            for row in doc["rows"]:
                row["translate_s"] = value
        diff = bench_diff(old, new, budget_pct=25.0, min_seconds=1e-3)
        assert all(
            not d.regressed for d in diff.deltas if d.column == "translate_s"
        )

    def test_ms_columns_normalized(self):
        old = {"figure": "mirrors",
               "rows": [{"phase": "union_len", "mirror": "a+b", "ms": 100.0}]}
        new = {"figure": "mirrors",
               "rows": [{"phase": "union_len", "mirror": "a+b", "ms": 200.0}]}
        diff = bench_diff(old, new, budget_pct=25.0)
        [delta] = diff.deltas
        assert delta.old_s == pytest.approx(0.1)
        assert delta.regressed

    def test_rows_on_one_side_reported_not_flagged(self):
        extra = {"label": "new/local", "spec": "umpire", "mean_s": 9.0}
        diff = bench_diff(make_doc(), make_doc(extra_row=extra))
        assert diff.ok
        assert diff.only_new == ["new/local/umpire"]

    def test_stdev_and_count_columns_ignored(self):
        old = make_doc()
        new = make_doc()
        for row in new["rows"]:
            row["stdev_s"] = 99.0   # noisy, but not a timing regression
            row["runs"] = 30
        assert bench_diff(old, new).ok

    def test_column_filter(self):
        diff = bench_diff(make_doc(), make_doc(mean=5.0, solve=5.0),
                          budget_pct=10.0, columns=["solve_s"])
        assert {d.column for d in diff.deltas} == {"solve_s"}

    def test_render_mentions_verdict_and_provenance(self):
        prov = {"git_sha": "abc1234", "timestamp": "2026-08-08T00:00:00Z",
                "hostname": "ci-runner"}
        diff = bench_diff(make_doc(provenance=prov),
                          make_doc(mean=3.0, provenance=prov),
                          budget_pct=20.0)
        text = diff.render()
        assert "REGRESSED" in text
        assert "abc1234" in text and "ci-runner" in text
        assert "regression(s)" in text


class TestLoadBench:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(make_doc()))
        assert load_bench(path)["figure"] == "figure5"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchDiffError):
            load_bench(tmp_path / "ghost.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchDiffError):
            load_bench(path)

    def test_rowless_doc_raises(self, tmp_path):
        path = tmp_path / "norows.json"
        path.write_text(json.dumps({"figure": "x"}))
        with pytest.raises(BenchDiffError):
            load_bench(path)


class TestBenchProvenance:
    def test_figure_report_embeds_provenance(self, tmp_path):
        from repro.bench.report import FigureReport

        report = FigureReport("figtest", "provenance smoke")
        report.headline("x", 1.0)
        path = report.save(tmp_path)
        doc = json.loads(path.read_text())
        prov = doc["provenance"]
        for key in ("git_sha", "timestamp", "hostname", "repro_version"):
            assert key in prov, key
        assert prov["hostname"]
        assert prov["timestamp"].endswith("Z")

    def test_shipped_bench_results_diff_cleanly_against_themselves(self):
        # the real artifacts in bench_results/ must satisfy the gate's
        # self-comparison invariant (what CI runs)
        from pathlib import Path

        results = Path(__file__).resolve().parents[2] / "bench_results"
        for path in sorted(results.glob("*.json")):
            doc = load_bench(path)
            diff = bench_diff(doc, doc)
            assert diff.ok, f"{path.name}: {diff.regressions}"
