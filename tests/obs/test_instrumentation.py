"""End-to-end instrumentation: spans/metrics emitted by the real paths."""

import json
import logging

import pytest

import repro.obs as obs
from repro.cli import main
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate the global tracer/metrics per test."""
    obs.reset()
    trace.disable()
    yield
    obs.reset()
    trace.disable()


class TestConcretizerSpans:
    def test_solver_phases_traced_and_nested(self):
        trace.enable()
        repo = make_mock_repo()
        Concretizer(repo).solve(["example ^mpich"])
        by_name = {e["name"]: e for e in trace.events()}
        for phase in ("asp.ground", "asp.translate", "asp.solve",
                      "concretize.setup", "concretize.extract"):
            assert by_name[phase]["parent"] == "concretize.solve", phase
        assert by_name["concretize.solve"]["parent"] is None

    def test_stats_backward_compatible(self):
        repo = make_mock_repo()
        result = Concretizer(repo).solve(["example ^mpich"])
        stats = result.stats
        # the pre-obs keys every caller/bench relied on
        for key in ("total_time", "ground_time", "translate_time",
                    "solve_time", "models_seen", "reusable_nodes"):
            assert key in stats, key
        assert stats["total_time"] >= stats["solve_time"]
        assert result.solve_time == stats["total_time"]

    def test_problem_size_stats_added(self):
        repo = make_mock_repo()
        stats = Concretizer(repo).solve(["example ^mpich"]).stats
        assert stats["ground_rules"] > 0
        assert stats["atoms"] > 0
        assert stats["sat_clauses"] > 0
        assert stats["sat_decisions"] >= 0

    def test_ground_span_attrs_carry_problem_size(self):
        trace.enable()
        repo = make_mock_repo()
        Concretizer(repo).solve(["example ^mpich"])
        by_name = {e["name"]: e for e in trace.events()}
        assert by_name["asp.ground"]["args"]["rules"] > 0
        assert by_name["asp.translate"]["args"]["atoms"] > 0
        assert by_name["asp.solve"]["args"]["decisions"] >= 0

    def test_unsat_still_records_solve_span(self):
        from repro.concretize import UnsatisfiableError

        trace.enable()
        repo = make_mock_repo()
        with pytest.raises(UnsatisfiableError):
            Concretizer(repo).solve(["example ^mpich"], forbidden=["mpich"])
        by_name = {e["name"]: e for e in trace.events()}
        assert by_name["concretize.solve"]["args"]["error"] == "UnsatisfiableError"


class TestInstallerAndCacheMetrics:
    def _installed_store(self, tmp_path):
        repo = make_mock_repo()
        result = Concretizer(repo).solve(["example ^mpich"])
        installer = Installer(tmp_path / "store", repo)
        installer.install(result.roots[0])
        return repo, installer, result.roots[0]

    def test_build_spans_and_relocation_counters(self, tmp_path):
        trace.enable()
        self._installed_store(tmp_path)
        names = {e["name"] for e in trace.events()}
        assert "install.run" in names
        assert "install.build" in names

    def test_cache_hit_miss_and_bytes(self, tmp_path):
        from repro.buildcache import BuildCache

        repo, installer, root = self._installed_store(tmp_path)
        cache = BuildCache(tmp_path / "bc")
        installer.push_to_cache(cache, root)
        assert metrics.counter("buildcache.pushes").value > 0
        assert metrics.counter("buildcache.pushed_bytes").value > 0

        consumer = Installer(tmp_path / "store2", repo, caches=[cache])
        consumer.install(root)
        assert metrics.counter("buildcache.hits").value > 0
        assert metrics.counter("buildcache.extracted_bytes").value > 0
        assert metrics.counter("relocate.binaries").value > 0
        assert metrics.counter("relocate.strings_scanned").value > 0

    def test_parallel_install_occupancy(self, tmp_path):
        repo = make_mock_repo()
        result = Concretizer(repo).solve(["example ^mpich"])
        installer = Installer(tmp_path / "store", repo)
        installer.install(result.roots[0], jobs=4)
        assert metrics.gauge("install.max_concurrency").value >= 1
        occupancy = metrics.histogram("install.worker_occupancy").summary()
        assert occupancy["count"] == len(list(result.roots[0].traverse()))


class TestCliFlags:
    def test_trace_and_profile(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        rc = main(["--repo", "mock", "spec", "--trace", str(trace_file),
                   "--profile", "example ^mpich"])
        assert rc == 0
        document = json.loads(trace_file.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert {"asp.ground", "asp.translate", "asp.solve"} <= names
        out = capsys.readouterr().out
        assert "concretize.solve" in out  # the phase table
        assert not trace.enabled  # disabled again after the command

    def test_flags_accepted_before_subcommand(self, tmp_path):
        trace_file = tmp_path / "t.json"
        rc = main(["--repo", "mock", "--trace", str(trace_file),
                   "spec", "example ^mpich"])
        assert rc == 0
        assert trace_file.exists()

    def test_default_output_unchanged_without_flags(self, capsys):
        rc = main(["--repo", "mock", "spec", "example ^mpich"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "to build" in out
        assert "phase" not in out

    def test_verbose_sets_logger_level(self):
        main(["--repo", "mock", "spec", "-vv", "example ^mpich"])
        assert logging.getLogger("repro").level == logging.DEBUG
        main(["--repo", "mock", "spec", "example ^mpich"])
        assert logging.getLogger("repro").level == logging.WARNING


class TestBenchPhases:
    def test_samples_carry_phase_breakdown(self):
        from repro.bench import time_concretization

        timing = time_concretization(make_mock_repo(), (), "example ^mpich",
                                     runs=2)
        for sample in timing.samples:
            assert set(sample.phases) == {"setup", "ground", "translate", "solve"}
            assert sample.phases["ground"] > 0.0
            # phases are a decomposition of (most of) the wall clock
            assert sum(sample.phases.values()) <= sample.seconds * 1.05
        row = timing.row()
        assert row["ground_s"] >= 0.0 and row["solve_s"] >= 0.0
