"""End-to-end integration scenarios (the paper's storylines)."""

import pytest

from repro.binary.loader import Loader
from repro.binary.mockelf import MockBinary
from repro.buildcache import BuildCache, external_spec
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.repos.radiuss import make_radiuss_repo


@pytest.fixture(scope="module")
def repo():
    return make_radiuss_repo()


class TestBuildCacheDeployCycle:
    """Build on machine A → cache → deploy spliced on machine B."""

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory, repo):
        ws = tmp_path_factory.mktemp("pipeline")
        build_server = Installer(ws / "a", repo)
        spec = Concretizer(repo).solve(["mfem ^mpich@3.4.3"]).roots[0]
        build_server.install(spec)
        cache = BuildCache(ws / "cache")
        build_server.push_to_cache(cache, spec)
        return ws, spec, cache

    def test_cache_holds_stack(self, workspace, repo):
        _, spec, cache = workspace
        assert len(cache) == len(list(spec.traverse()))

    def test_plain_redeploy_extracts_everything(self, workspace, repo):
        ws, spec, cache = workspace
        target = Installer(ws / "plain", repo, caches=[cache])
        report = target.install(spec)
        assert not report.built
        prefix = target.database.prefix_of(spec)
        assert Loader().load(f"{prefix}/lib/libmfem.so").ok

    def test_spliced_deploy_with_mpiabi(self, workspace, repo):
        ws, spec, cache = workspace
        c = Concretizer(repo, reusable_specs=cache.all_specs(), splicing=True)
        result = c.solve(["mfem ^mpiabi"])
        assert {s.name for s in result.built} == {"mpiabi"}
        target = Installer(ws / "spliced", repo, caches=[cache])
        report = target.install(result.roots[0])
        assert set(report.rewired) == {"mfem", "hypre"}
        assert report.built == ["mpiabi"]
        prefix = target.database.prefix_of(result.roots[0])
        loaded = Loader().load(f"{prefix}/lib/libmfem.so")
        assert loaded.ok
        assert "libmpiabi.so" in loaded.resolved
        assert "libmpich.so" not in loaded.resolved

    def test_cray_deploy_zero_builds(self, workspace, repo):
        """The paper's motivating scenario, full fidelity."""
        ws, spec, cache = workspace
        cray_prefix = ws / "opt" / "cray"
        (cray_prefix / "lib").mkdir(parents=True, exist_ok=True)
        MockBinary(
            soname="libcray-mpich.so",
            defined_symbols=[
                "MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                "MPI_Allreduce", "MPI_Bcast",
            ],
            type_layouts={"MPI_Comm": "int32", "MPI_Datatype": "int32"},
        ).write(cray_prefix / "lib" / "libcray-mpich.so")
        cray = external_spec(repo, "cray-mpich", str(cray_prefix))

        c = Concretizer(
            repo, reusable_specs=list(cache.all_specs()) + [cray], splicing=True
        )
        result = c.solve(["mfem ^cray-mpich"])
        assert not result.built, "zero rebuilds on the cluster"
        cluster = Installer(ws / "cluster", repo, caches=[cache])
        report = cluster.install(result.roots[0])
        assert not report.built
        prefix = cluster.database.prefix_of(result.roots[0])
        loaded = Loader().load(f"{prefix}/lib/libmfem.so")
        assert loaded.ok
        assert any("cray" in p for p in loaded.resolved.values())

    def test_external_with_empty_prefix_is_rejected(self, repo):
        """A broken external (no prefix) must fail loudly at creation,
        not surface later as an undiagnosable install error."""
        from repro.buildcache import BuildCacheError

        for bad_prefix in ("", "   ", None):
            with pytest.raises(BuildCacheError) as excinfo:
                external_spec(repo, "cray-mpich", bad_prefix)
            assert "prefix" in str(excinfo.value)


class TestDependencyUpdateScenario:
    def test_zlib_update_rebuilds_one_package(self, repo, tmp_path):
        base = Concretizer(repo)
        installed = [base.solve(["glvis ^zlib@1.2.13"]).roots[0]]
        splicing = Concretizer(repo, reusable_specs=installed, splicing=True)
        result = splicing.solve(["glvis ^zlib@1.3"])
        assert {s.name for s in result.built} == {"zlib"}
        spliced_names = {s.name for s in result.spliced}
        assert "glvis" in spliced_names

    def test_update_shares_install_time_savings(self, repo):
        base = Concretizer(repo)
        installed = [base.solve(["glvis ^zlib@1.2.13"]).roots[0]]
        plain = Concretizer(repo, reusable_specs=installed)
        rebuilt = plain.solve(["glvis ^zlib@1.3"]).built
        spliced = Concretizer(
            repo, reusable_specs=installed, splicing=True
        ).solve(["glvis ^zlib@1.3"]).built
        assert len(spliced) < len(rebuilt)


class TestJointConcretization:
    def test_stack_concretizes_jointly(self, repo):
        """Several roots share one DAG (the paper concretizes the stack
        'separately and jointly')."""
        result = Concretizer(repo).solve(["raja", "umpire", "chai"])
        camp_hashes = {
            root["camp"].dag_hash() for root in result.roots
        }
        assert len(camp_hashes) == 1
