"""Unit tests for the benchmark harness itself."""

import json

import pytest

from repro.bench.report import FigureReport, aggregate_percent, format_table
from repro.bench.runner import (
    ConfigTiming,
    TimingSample,
    percent_increase,
    time_concretization,
)
from repro.repos.mock import make_mock_repo


def timing(spec, times, label="x"):
    t = ConfigTiming(label=label, spec=spec)
    for s in times:
        t.samples.append(TimingSample(s, built=1, spliced=0, reused=0))
    return t


class TestStatistics:
    def test_mean_median_stdev(self):
        t = timing("raja", [1.0, 2.0, 3.0])
        assert t.mean == 2.0
        assert t.median == 2.0
        assert t.stdev == pytest.approx(1.0)
        assert t.min == 1.0 and t.max == 3.0

    def test_single_sample_stdev_zero(self):
        assert timing("x", [1.5]).stdev == 0.0

    def test_row_shape(self):
        row = timing("raja", [1.0, 2.0]).row()
        assert row["spec"] == "raja"
        assert row["runs"] == 2
        assert row["mean_s"] == 1.5


class TestPercentages:
    def test_percent_increase(self):
        assert percent_increase(2.0, 3.0) == pytest.approx(50.0)
        assert percent_increase(2.0, 1.0) == pytest.approx(-50.0)
        assert percent_increase(0.0, 1.0) == 0.0

    def test_aggregate_matches_by_spec(self):
        base = [timing("a", [1.0]), timing("b", [2.0])]
        measured = [timing("a", [2.0]), timing("b", [2.0])]
        # a: +100%, b: +0% → mean 50%
        assert aggregate_percent(base, measured) == pytest.approx(50.0)

    def test_aggregate_ignores_unmatched_specs(self):
        base = [timing("a", [1.0])]
        measured = [timing("a", [1.5]), timing("zzz", [9.0])]
        assert aggregate_percent(base, measured) == pytest.approx(50.0)


class TestTimingRunner:
    def test_time_concretization_collects_samples(self):
        repo = make_mock_repo()
        t = time_concretization(repo, [], "zlib", runs=2)
        assert len(t.samples) == 2
        assert all(s.seconds > 0 for s in t.samples)
        assert t.samples[0].built == 1

    def test_splice_counts_in_samples(self):
        from repro.concretize import Concretizer

        repo = make_mock_repo()
        cached = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        t = time_concretization(
            repo, [cached], "example@1.1.0 ^mpiabi", runs=1, splicing=True
        )
        assert t.samples[0].spliced == 1
        assert t.samples[0].built == 1


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "222" in lines[3]

    def test_empty_table(self):
        assert format_table([]) == "(no rows)"

    def test_figure_report_round_trip(self, tmp_path):
        report = FigureReport("figureX", "test title")
        report.add_timing(timing("raja", [1.0]))
        report.headline("metric", 42.123)
        path = report.save(tmp_path)
        data = json.loads(path.read_text())
        assert data["figure"] == "figureX"
        assert data["headlines"]["metric"] == 42.12
        assert data["rows"][0]["spec"] == "raja"

    def test_render_contains_headlines(self):
        report = FigureReport("f", "t")
        report.headline("overhead_pct", 7.1)
        assert "overhead_pct: 7.1" in report.render()
