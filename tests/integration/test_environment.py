"""Environment (manifest + lockfile) tests."""

import json

import pytest

from repro.buildcache import BuildCache
from repro.concretize import Concretizer
from repro.environment import Environment, EnvironmentError
from repro.installer import Installer
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


class TestManifest:
    def test_add_remove_roots(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("zlib")
        env.add("example +bzip")
        env.add("zlib")  # idempotent
        assert env.roots == ["zlib", "example +bzip"]
        env.remove("zlib")
        assert env.roots == ["example +bzip"]

    def test_invalid_root_rejected_eagerly(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        with pytest.raises(Exception):
            env.add("zlib ^")

    def test_empty_concretize_rejected(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        with pytest.raises(EnvironmentError):
            env.concretize()


class TestConcretization:
    def test_joint_concretization(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("example")
        env.add("example-ng")
        roots = env.concretize()
        assert len(roots) == 2
        assert roots[0]["zlib"].dag_hash() == roots[1]["zlib"].dag_hash()

    def test_all_specs_deduplicated(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("example")
        env.add("tool")
        env.concretize()
        names = [s.name for s in env.all_specs()]
        assert names.count("zlib") == 1

    def test_adding_root_invalidates_lock(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("zlib")
        env.concretize()
        assert env.concretized
        env.add("bzip2")
        assert not env.concretized

    def test_forbidden_respected(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("example")
        env.forbidden = ["mpich"]
        roots = env.concretize()
        assert "mpich" not in roots[0]


class TestLockfile:
    def test_round_trip(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("example@1.1.0")
        env.concretize()
        env.write()
        again = Environment.read(tmp_path / "env", repo)
        assert again.concretized
        assert (
            again.concrete_roots[0].dag_hash()
            == env.concrete_roots[0].dag_hash()
        )

    def test_stale_lock_dropped_on_manifest_change(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("zlib")
        env.concretize()
        env.write()
        # edit the manifest behind the lock's back
        manifest_path = tmp_path / "env" / "repro.yaml.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["roots"].append("bzip2")
        manifest_path.write_text(json.dumps(manifest))
        again = Environment.read(tmp_path / "env", repo)
        assert not again.concretized, "stale lock must not be trusted"

    def test_splice_provenance_survives_lockfile(self, repo, tmp_path):
        cached = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        env = Environment(tmp_path / "env", repo)
        env.add("example@1.1.0 ^mpiabi")
        env.splicing = True
        env.concretize(reusable_specs=[cached])
        assert env.concrete_roots[0].spliced
        env.write()
        again = Environment.read(tmp_path / "env", repo)
        root = again.concrete_roots[0]
        assert root.spliced
        assert root.build_spec.dag_hash() == cached.dag_hash()

    def test_missing_environment_raises(self, repo, tmp_path):
        with pytest.raises(EnvironmentError):
            Environment.read(tmp_path / "nope", repo)

    def test_locked_environment_installs(self, repo, tmp_path):
        env = Environment(tmp_path / "env", repo)
        env.add("example@1.0.0")
        env.concretize()
        env.write()
        again = Environment.read(tmp_path / "env", repo)
        installer = Installer(tmp_path / "store", repo)
        report = installer.install_all(again.concrete_roots)
        assert len(report.built) == len(list(again.concrete_roots[0].traverse()))
