"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


class TestSpecCommand:
    def test_basic_spec(self, capsys):
        assert main(["--repo", "mock", "spec", "zlib"]) == 0
        out = capsys.readouterr().out
        assert "zlib@1.3" in out
        assert "to build" in out

    def test_dependency_tree_printed(self, capsys):
        main(["--repo", "mock", "spec", "example@1.0.0"])
        out = capsys.readouterr().out
        assert "zlib@1.2.11" in out and "mpich" in out

    def test_unsatisfiable_is_error_exit(self, capsys):
        assert main(["--repo", "mock", "spec", "zlib@=99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_forbid(self, capsys):
        main(["--repo", "mock", "spec", "example", "--forbid", "mpich"])
        out = capsys.readouterr().out
        assert "mpich" not in out.split("to build")[0]

    def test_time_flag(self, capsys):
        main(["--repo", "mock", "spec", "zlib", "--time"])
        assert "concretization time" in capsys.readouterr().out


class TestInstallAndFind:
    def test_install_then_find(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["--repo", "mock", "install", "zlib", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "built=1" in out
        assert main(["find", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "zlib@1.3" in out

    def test_reuse_from_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main(["--repo", "mock", "install", "zlib", "--store", store])
        capsys.readouterr()
        main(["--repo", "mock", "spec", "zlib", "--store", store])
        out = capsys.readouterr().out
        assert "to build: nothing" in out

    def test_find_empty_store(self, capsys, tmp_path):
        assert main(["find", "--store", str(tmp_path)]) == 0
        assert "no installed specs" in capsys.readouterr().out


class TestBuildcacheAndSplice:
    def test_full_splice_workflow(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        cache = str(tmp_path / "cache")
        # build against the splice target and cache it
        main(["--repo", "mock", "install",
              "example@1.1.0 ^mpich@3.4.3", "--store", store])
        main(["--repo", "mock", "buildcache", "create", "example",
              "--cache", cache, "--store", store])
        out = capsys.readouterr().out
        assert "pushed" in out
        main(["--repo", "mock", "buildcache", "list", "--cache", cache])
        assert "example@1.1.0" in capsys.readouterr().out
        # spliced concretization against the cache
        main(["--repo", "mock", "spec", "example@1.1.0 ^mpiabi",
              "--cache", cache, "--splice"])
        out = capsys.readouterr().out
        assert "to splice (relink, no rebuild): ['example']" in out
        assert "to build: ['mpiabi']" in out
        # spliced install: rewires rather than rebuilds
        store2 = str(tmp_path / "store2")
        main(["--repo", "mock", "install", "example@1.1.0 ^mpiabi",
              "--cache", cache, "--splice", "--store", store2])
        out = capsys.readouterr().out
        assert "rewired=1" in out
        main(["find", "--store", store2])
        assert "[spliced]" in capsys.readouterr().out


class TestSuggestSplices:
    def test_report(self, capsys):
        assert main(["suggest-splices", "--virtual", "mpi", "--all"]) == 0
        out = capsys.readouterr().out
        assert 'can_splice("mpich@' in out

    def test_unknown_repo(self):
        with pytest.raises(SystemExit):
            main(["--repo", "bogus", "spec", "zlib"])


class TestDiffCommand:
    def test_diff_versions(self, capsys):
        assert main(["--repo", "mock", "diff", "example@1.0.0", "example@1.1.0"]) == 0
        out = capsys.readouterr().out
        assert "1.0.0 -> 1.1.0" in out
        assert "1.2.11 -> 1.3" in out

    def test_diff_identical(self, capsys):
        main(["--repo", "mock", "diff", "zlib", "zlib"])
        assert "identical" in capsys.readouterr().out

    def test_diff_unsat_errors(self, capsys):
        assert main(["--repo", "mock", "diff", "zlib@=9", "zlib"]) == 1


class TestStoreManagement:
    def test_uninstall_and_gc(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main(["--repo", "mock", "install",
              "example@1.1.0 ^mpich@3.4.3", "--store", store])
        capsys.readouterr()
        assert main(["--repo", "mock", "uninstall", "example",
                     "--store", store]) == 0
        assert main(["--repo", "mock", "gc", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "removed:" in out
        main(["find", "--store", store])
        assert "no installed specs" in capsys.readouterr().out

    def test_uninstall_dependency_refused(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main(["--repo", "mock", "install",
              "example@1.1.0 ^mpich@3.4.3", "--store", store])
        capsys.readouterr()
        assert main(["--repo", "mock", "uninstall", "zlib",
                     "--store", store]) == 1
        assert "required by" in capsys.readouterr().err

    def test_verify_healthy_and_broken(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main(["--repo", "mock", "install", "zlib", "--store", store])
        capsys.readouterr()
        assert main(["--repo", "mock", "verify", "--store", store]) == 0
        assert "healthy" in capsys.readouterr().out
        # break the store behind the database's back
        import shutil
        from repro.installer.database import Database
        from pathlib import Path

        db = Database(Path(store))
        shutil.rmtree(db.query("zlib")[0].prefix)
        assert main(["--repo", "mock", "verify", "--store", store]) == 1


class TestEnvCommand:
    def test_env_lifecycle(self, capsys, tmp_path):
        env_dir = str(tmp_path / "env")
        store = str(tmp_path / "store")
        assert main(["--repo", "mock", "env", "create", "zlib",
                     "--env", env_dir]) == 0
        assert main(["--repo", "mock", "env", "add", "bzip2",
                     "--env", env_dir]) == 0
        assert main(["--repo", "mock", "env", "concretize",
                     "--env", env_dir]) == 0
        out = capsys.readouterr().out
        assert "zlib@1.3" in out and "bzip2@1.0.8" in out
        assert main(["--repo", "mock", "env", "install",
                     "--env", env_dir, "--store", store, "--jobs", "2"]) == 0
        assert "built=2" in capsys.readouterr().out
        assert main(["--repo", "mock", "env", "status", "--env", env_dir]) == 0
        assert "concretized" in capsys.readouterr().out

    def test_env_missing_errors(self, capsys, tmp_path):
        assert main(["--repo", "mock", "env", "status",
                     "--env", str(tmp_path / "ghost")]) == 1
