"""The everything-together scenario: environments + caches + splicing +
parallel installs + housekeeping, at RADIUSS scale.

This is the closest thing to a user's real week with the tool, run as
one test class with shared state (each stage depends on the previous).
"""

import pytest

from repro.binary.loader import Loader
from repro.buildcache import BuildCache, SigningKey, TrustStore
from repro.concretize import Concretizer
from repro.environment import Environment
from repro.installer import Installer
from repro.repos.radiuss import make_radiuss_repo


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    ws = tmp_path_factory.mktemp("workflow")
    repo = make_radiuss_repo()
    key = SigningKey.generate("ci")
    return {"ws": ws, "repo": repo, "key": key}


@pytest.fixture(scope="module")
def built_environment(world):
    """Stage 1: a CI host builds and caches a spliceable stack."""
    ws, repo, key = world["ws"], world["repo"], world["key"]
    env = Environment(ws / "env", repo)
    env.add("mfem ^mpich@3.4.3")
    env.add("scr ^mpich@3.4.3")
    env.add("caliper")
    env.concretize()
    env.write()

    ci = Installer(ws / "ci-store", repo)
    report = ci.install_all(env.concrete_roots, jobs=8)
    cache = BuildCache(ws / "cache", signing_key=key)
    for root in env.concrete_roots:
        ci.push_to_cache(cache, root)
    world["env"] = env
    world["cache"] = cache
    world["ci_report"] = report
    return world


class TestFullWorkflow:
    def test_ci_built_everything_once(self, built_environment):
        report = built_environment["ci_report"]
        assert not report.extracted and not report.rewired
        assert len(set(report.built)) == len(report.built), "no duplicates"

    def test_signed_cache_round_trip(self, built_environment):
        ws = built_environment["ws"]
        key = built_environment["key"]
        cache = built_environment["cache"]
        env = built_environment["env"]
        consumer = BuildCache(ws / "cache", trust=TrustStore([key]))
        h = env.concrete_roots[0].dag_hash()
        consumer.extract(h, ws / "verified-extract")

    def test_developer_splices_from_cache(self, built_environment):
        """Stage 2: a developer wants the stack on mvapich2 — splice,
        don't rebuild."""
        ws, repo = built_environment["ws"], built_environment["repo"]
        cache = built_environment["cache"]
        c = Concretizer(repo, reusable_specs=cache.all_specs(), splicing=True)
        result = c.solve(["mfem ^mvapich2", "scr ^mvapich2"])
        assert {s.name for s in result.built} == {"mvapich2"}
        assert {"mfem", "hypre", "scr", "er", "kvtree"} <= {
            s.name for s in result.spliced
        }

        dev = Installer(ws / "dev-store", repo, caches=[cache])
        report = dev.install_all(result.roots, jobs=8)
        assert report.built == ["mvapich2"]
        prefix = dev.database.prefix_of(result.roots[0])
        loaded = Loader().load(f"{prefix}/lib/libmfem.so")
        assert loaded.ok and "libmvapich2.so" in loaded.resolved
        built_environment["dev"] = dev
        built_environment["dev_roots"] = result.roots

    def test_housekeeping(self, built_environment):
        """Stage 3: verify, uninstall a root, garbage-collect."""
        dev = built_environment["dev"]
        roots = built_environment["dev_roots"]
        assert dev.verify() == {}
        dev.uninstall(roots[1])  # drop scr
        removed = dev.gc()
        assert "er" in removed and "kvtree" in removed
        assert "mvapich2" not in removed, "mfem still needs it"
        assert dev.verify() == {}

    def test_lockfile_replay_respects_splices(self, built_environment):
        """Stage 4: lock the spliced environment and replay it."""
        ws, repo = built_environment["ws"], built_environment["repo"]
        cache = built_environment["cache"]
        env = Environment(ws / "spliced-env", repo)
        env.add("mfem ^mvapich2")
        env.splicing = True
        env.concretize(reusable_specs=cache.all_specs())
        env.write()
        again = Environment.read(ws / "spliced-env", repo)
        root = again.concrete_roots[0]
        assert root.spliced
        replay = Installer(ws / "replay-store", repo, caches=[cache])
        report = replay.install_all(again.concrete_roots, jobs=4)
        assert report.built == ["mvapich2"]
        assert "mfem" in report.rewired
