"""Benchmark-scenario configuration (env knobs) tests."""

import pytest

from repro.bench import scenarios


class TestEnvKnobs:
    def test_bench_runs_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_RUNS", raising=False)
        assert scenarios.bench_runs() == 3
        monkeypatch.setenv("REPRO_BENCH_RUNS", "30")
        assert scenarios.bench_runs() == 30

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RUNS", "not-a-number")
        assert scenarios.bench_runs() == 3

    def test_spec_subsets(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SPECS", raising=False)
        subset = scenarios.bench_roots()
        monkeypatch.setenv("REPRO_BENCH_SPECS", "all")
        everything = scenarios.bench_roots()
        assert set(subset) < set(everything)
        assert len(everything) == 32

    def test_mpi_roots_subset_of_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SPECS", "all")
        from repro.repos.radiuss import MPI_DEPENDENT_ROOTS

        assert scenarios.mpi_bench_roots() == MPI_DEPENDENT_ROOTS


class TestCacheShapes:
    def test_local_cache_consistent_mpich(self):
        specs = scenarios.local_cache_specs()
        versions = {
            n.version.string
            for s in specs
            for n in s.traverse()
            if n.name == "mpich"
        }
        assert versions == {scenarios.SPLICE_TARGET_MPICH}

    def test_local_cache_has_multiple_configurations(self):
        specs = scenarios.local_cache_specs()
        raja_configs = {
            s.dag_hash() for s in specs if s.name == "raja"
        }
        assert len(raja_configs) >= 2

    def test_public_strictly_larger_than_local(self):
        local = {
            n.dag_hash()
            for s in scenarios.local_cache_specs()
            for n in s.traverse()
        }
        public = {
            n.dag_hash()
            for s in scenarios.public_cache_specs()
            for n in s.traverse()
        }
        assert len(public) > 2 * len(local)
        assert local <= public, "public includes the local stack"

    def test_caches_are_memoized(self):
        assert scenarios.local_cache_specs() is scenarios.local_cache_specs()
