"""Tiny-scale smoke tests of the experiment scenarios.

These verify the *claims* behind each figure at a size that runs in
seconds, so the full benchmarks cannot silently rot: the benches then
only add statistical weight.
"""

import pytest

from repro.bench.runner import time_concretization, percent_increase
from repro.buildcache import generate_cache_specs, vary_configurations
from repro.concretize import Concretizer
from repro.repos.radiuss import (
    MPI_DEPENDENT_ROOTS,
    RADIUSS_ROOTS,
    add_mpiabi_replicas,
    make_radiuss_repo,
)


@pytest.fixture(scope="module")
def repo():
    return make_radiuss_repo()


@pytest.fixture(scope="module")
def local_cache(repo):
    return generate_cache_specs(repo, RADIUSS_ROOTS, versions={"mpich": "3.4.3"})


class TestFigure5Claim:
    """RQ1: the encodings agree on solutions; the indirection only adds
    constant-factor time."""

    def test_same_solutions_both_encodings(self, repo, local_cache):
        for spec in ["raja", "hypre", "py-shroud"]:
            old = Concretizer(
                repo, reusable_specs=local_cache, encoding="old"
            ).solve([spec])
            new = Concretizer(
                repo, reusable_specs=local_cache, encoding="new"
            ).solve([spec])
            assert old.roots[0].dag_hash() == new.roots[0].dag_hash()

    def test_overhead_is_bounded(self, repo, local_cache):
        old = time_concretization(repo, local_cache, "hypre", runs=2, encoding="old")
        new = time_concretization(repo, local_cache, "hypre", runs=2, encoding="new")
        assert percent_increase(old.mean, new.mean) < 400, (
            "the indirection must stay a constant factor, not a blowup"
        )


class TestFigure6Claim:
    """RQ2: spliced solutions whenever possible; RQ3: the control spec
    is unaffected by enabling splicing."""

    def test_all_mpi_roots_produce_spliced_solutions(self, repo, local_cache):
        concretizer = Concretizer(
            repo, reusable_specs=local_cache, splicing=True
        )
        for root in MPI_DEPENDENT_ROOTS[:5]:
            result = concretizer.solve([f"{root} ^mpiabi"])
            assert result.spliced, f"{root} should splice, not rebuild"
            assert {s.name for s in result.built} <= {"mpiabi"}

    def test_py_shroud_never_splices(self, repo, local_cache):
        concretizer = Concretizer(
            repo, reusable_specs=local_cache, splicing=True
        )
        result = concretizer.solve(["py-shroud"])
        assert not result.spliced
        assert not result.built


class TestFigure7Claim:
    """RQ4: many candidates still yield correct spliced solutions, and
    the solver picks exactly one replica."""

    def test_replicas_yield_one_splice(self, local_cache):
        repo = make_radiuss_repo()
        names = add_mpiabi_replicas(repo, 12)
        concretizer = Concretizer(
            repo, reusable_specs=local_cache, splicing=True
        )
        result = concretizer.solve(["hypre"], forbidden=["mpich"])
        assert {s.name for s in result.spliced} == {"hypre"}
        chosen = {n.name for n in result.roots[0].traverse()} & (
            set(names) | {"mpiabi", "mvapich2", "cray-mpich"}
        )
        assert len(chosen) == 1, "exactly one MPICH-ABI replacement chosen"

    def test_scaling_is_sublinear_in_candidates(self, local_cache):
        samples = {}
        for count in (4, 16):
            repo = make_radiuss_repo()
            add_mpiabi_replicas(repo, count)
            samples[count] = time_concretization(
                repo, local_cache, "hypre", runs=2, splicing=True,
                forbidden=["mpich"],
            ).mean
        # 4x the candidates must cost far less than 4x the time
        assert samples[16] < samples[4] * 4
