"""Directory-backed repositories: load / dump / round trip."""

import json

import pytest

from repro.concretize import Concretizer
from repro.package.repo_dir import (
    RepoLayoutError,
    dump_repository,
    load_repository,
)
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo


def write_package(root, name, source):
    pkg_dir = root / name
    pkg_dir.mkdir(parents=True)
    (pkg_dir / "package.py").write_text(source)


class TestLoad:
    def test_load_simple_repo(self, tmp_path):
        write_package(
            tmp_path / "myrepo",
            "zlib",
            'class Zlib(Package):\n    version("1.3")\n    variant("shared", default=True)\n',
        )
        repo = load_repository(tmp_path / "myrepo")
        assert "zlib" in repo
        assert repo.get("zlib").variant("shared").default is True
        assert repo.name == "myrepo"

    def test_repo_config_applies(self, tmp_path):
        root = tmp_path / "r"
        write_package(root, "impl", 'class Impl(Package):\n    version("1")\n    provides("v")\n')
        write_package(root, "alt", 'class Alt(Package):\n    version("1")\n    provides("v")\n')
        (root / "repo.json").write_text(
            json.dumps({"name": "configured", "preferences": {"v": ["impl"]}})
        )
        repo = load_repository(root)
        assert repo.name == "configured"
        assert repo.providers("v")[0] == "impl"

    def test_loaded_repo_concretizes(self, tmp_path):
        root = tmp_path / "r"
        write_package(root, "zlib", 'class Zlib(Package):\n    version("1.3")\n')
        write_package(
            root,
            "app",
            'class App(Package):\n    version("1.0")\n    depends_on("zlib")\n',
        )
        repo = load_repository(root)
        spec = Concretizer(repo).solve(["app"]).roots[0]
        assert "zlib" in spec

    def test_name_directory_mismatch_rejected(self, tmp_path):
        write_package(
            tmp_path / "r", "wrongdir", 'class Zlib(Package):\n    version("1")\n'
        )
        with pytest.raises(RepoLayoutError):
            load_repository(tmp_path / "r")

    def test_multiple_classes_rejected(self, tmp_path):
        write_package(
            tmp_path / "r",
            "two",
            'class Two(Package):\n    version("1")\n'
            'class Other(Package):\n    version("2")\n',
        )
        with pytest.raises(RepoLayoutError):
            load_repository(tmp_path / "r")

    def test_syntax_error_reported(self, tmp_path):
        write_package(tmp_path / "r", "bad", "class Bad(Package:\n")
        with pytest.raises(RepoLayoutError):
            load_repository(tmp_path / "r")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RepoLayoutError):
            load_repository(tmp_path / "ghost")


class TestRoundTrip:
    def test_mock_repo_round_trips(self, tmp_path):
        original = make_mock_repo()
        dump_repository(original, tmp_path / "dumped")
        loaded = load_repository(tmp_path / "dumped")
        assert loaded.names() == original.names()
        assert loaded.providers("mpi") == original.providers("mpi")
        # the Figure-1 example survives with all its directives
        example = loaded.get("example")
        assert len(example.can_splice_decls) == 2
        assert len(example.dependency_decls) == 4

    def test_round_tripped_repo_solves_identically(self, tmp_path):
        original = make_mock_repo()
        dump_repository(original, tmp_path / "dumped")
        loaded = load_repository(tmp_path / "dumped")
        for request in ["example@1.0.0", "tool", "app"]:
            a = Concretizer(original).solve([request]).roots[0]
            b = Concretizer(loaded).solve([request]).roots[0]
            assert a.dag_hash() == b.dag_hash(), request

    def test_round_tripped_splicing_works(self, tmp_path):
        original = make_radiuss_repo()
        dump_repository(original, tmp_path / "radiuss")
        loaded = load_repository(tmp_path / "radiuss")
        cached = Concretizer(loaded).solve(["hypre ^mpich@3.4.3"]).roots[0]
        c = Concretizer(loaded, reusable_specs=[cached], splicing=True)
        result = c.solve(["hypre ^mpiabi"])
        assert {s.name for s in result.spliced} == {"hypre"}

    def test_abi_metadata_survives(self, tmp_path):
        original = make_radiuss_repo()
        dump_repository(original, tmp_path / "radiuss")
        loaded = load_repository(tmp_path / "radiuss")
        assert loaded.get("mpich").type_layouts["MPI_Comm"] == "int32"
        assert loaded.get("openmpi").type_layouts["MPI_Comm"] == "ptr-struct"
        assert not loaded.get("cray-mpich").buildable
        assert loaded.get("visit").build_time == 7200
