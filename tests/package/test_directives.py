"""Directive and package-class tests (the Figure-1 DSL)."""

import pytest

from repro.package import (
    DirectiveError,
    Package,
    Repository,
    RepositoryError,
    can_splice,
    conflicts,
    depends_on,
    name_from_class,
    provides,
    requires,
    variant,
    version,
)
from repro.spec import DEPTYPE_BUILD, DEPTYPE_LINK_RUN, Version


def figure1_example():
    class Example(Package):
        version("1.1.0")
        version("1.0.0")
        variant("bzip", default=True)
        depends_on("bzip2", when="+bzip")
        depends_on("zlib@1.2", when="@1.0.0")
        depends_on("zlib@1.3", when="@1.1.0")
        depends_on("mpi")
        can_splice("example@1.0.0", when="@1.1.0")
        can_splice("example-ng@2.3.2+compat", when="@1.1.0+bzip")

    return Example


class TestFigure1:
    def test_versions_collected(self):
        pkg = figure1_example()
        assert pkg.declared_versions() == [Version("1.1.0"), Version("1.0.0")]

    def test_variant_collected(self):
        pkg = figure1_example()
        decl = pkg.variant("bzip")
        assert decl.default is True
        assert decl.allowed_values() == ("True", "False")

    def test_conditional_dependencies(self):
        pkg = figure1_example()
        zlib_deps = [d for d in pkg.dependency_decls if d.spec.name == "zlib"]
        assert len(zlib_deps) == 2
        assert all(d.when is not None for d in zlib_deps)

    def test_can_splice_declarations(self):
        pkg = figure1_example()
        assert len(pkg.can_splice_decls) == 2
        cross = pkg.can_splice_decls[1]
        assert cross.target.name == "example-ng"
        assert cross.when.variants["bzip"] == "True"

    def test_package_name_derived(self):
        assert figure1_example().name == "example"


class TestDirectiveDetails:
    def test_preferred_version(self):
        class P(Package):
            version("2.0")
            version("1.5", preferred=True)
            version("1.0")

        assert P.preferred_version() == Version("1.5")

    def test_deprecated_excluded_from_preferred(self):
        class P(Package):
            version("2.0", deprecated=True)
            version("1.0")

        assert P.preferred_version() == Version("1.0")

    def test_no_usable_versions_raises(self):
        class P(Package):
            version("1.0", deprecated=True)

        with pytest.raises(DirectiveError):
            P.preferred_version()

    def test_multivalued_variant(self):
        class P(Package):
            variant("pmi", default="pmix", values=("pmix", "slurm"))

        assert P.variant("pmi").allowed_values() == ("pmix", "slurm")

    def test_bad_default_rejected(self):
        with pytest.raises(DirectiveError):
            class P(Package):
                variant("pmi", default="bogus", values=("pmix", "slurm"))

    def test_build_dependency_type(self):
        class P(Package):
            depends_on("cmake", type="build")

        assert P.dependency_decls[0].deptypes == (DEPTYPE_BUILD,)

    def test_bad_deptype_rejected(self):
        with pytest.raises(DirectiveError):
            class P(Package):
                depends_on("cmake", type="compile")

    def test_provides(self):
        class P(Package):
            provides("mpi")

        assert P.provided_virtuals() == ["mpi"]

    def test_conflicts_and_requires_collected(self):
        class P(Package):
            conflicts("@1.0 ^zlib@1.0", msg="broken combo")
            requires("+shared", when="@2:")

        assert P.conflict_decls[0].msg == "broken combo"
        assert P.requires_decls[0].when is not None

    def test_inheritance_extends(self):
        class Base(Package):
            version("1.0")
            variant("base_opt", default=False)

        class Derived(Base):
            version("2.0")

        assert len(Derived.version_decls) == 2
        assert Derived.variant_names() == ["base_opt"]
        assert len(Base.version_decls) == 1, "base unchanged"

    def test_directives_do_not_leak_across_classes(self):
        class A(Package):
            version("1.0")

        class B(Package):
            version("2.0")

        assert len(A.version_decls) == 1
        assert len(B.version_decls) == 1


class TestNaming:
    @pytest.mark.parametrize(
        "cls,expected",
        [
            ("PyShroud", "py-shroud"),
            ("Hdf5", "hdf5"),
            ("FluxCore", "flux-core"),
            ("Zlib", "zlib"),
            ("CrayMpich", "cray-mpich"),
        ],
    )
    def test_camel_to_kebab(self, cls, expected):
        assert name_from_class(cls) == expected

    def test_explicit_name_wins(self):
        class Whatever(Package):
            name = "custom-name"
            version("1.0")

        assert Whatever.name == "custom-name"


class TestRepository:
    def test_add_and_get(self):
        repo = Repository()

        class Thing(Package):
            version("1.0")

        repo.add(Thing)
        assert repo.get("thing") is Thing
        assert "thing" in repo
        assert len(repo) == 1

    def test_duplicate_rejected(self):
        repo = Repository()

        class Thing(Package):
            version("1.0")

        repo.add(Thing)
        with pytest.raises(RepositoryError):
            repo.add(Thing)

    def test_unknown_package(self):
        with pytest.raises(RepositoryError):
            Repository().get("nope")

    def test_virtual_indexing(self):
        repo = Repository()

        class Impl(Package):
            version("1.0")
            provides("mpi")

        repo.add(Impl)
        assert repo.is_virtual("mpi")
        assert repo.providers("mpi") == ["impl"]
        assert not repo.is_virtual("impl")

    def test_provider_preferences_order(self):
        repo = Repository()

        class A(Package):
            version("1")
            provides("v")

        class B(Package):
            version("1")
            provides("v")

        repo.add(A)
        repo.add(B)
        assert repo.providers("v") == ["a", "b"]
        repo.provider_preferences["v"] = ["b"]
        assert repo.providers("v") == ["b", "a"]

    def test_copy_independent(self):
        repo = Repository()

        class A(Package):
            version("1")

        repo.add(A)
        clone = repo.copy()

        class B(Package):
            version("1")

        clone.add(B)
        assert "b" in clone and "b" not in repo
