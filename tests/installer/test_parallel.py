"""Parallel-install tests (the spack install -j analogue)."""

import time

import pytest

from repro.binary.loader import Loader
from repro.concretize import Concretizer
from repro.installer import InstallError, Installer
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


class TestCorrectness:
    def test_same_outcome_as_serial(self, repo, tmp_path):
        spec = Concretizer(repo).solve(["app ^mpich@3.4.3"]).roots[0]
        serial = Installer(tmp_path / "serial", repo)
        serial.install(spec)
        parallel = Installer(tmp_path / "parallel", repo)
        parallel.install(spec, jobs=4)
        assert len(serial.database) == len(parallel.database)
        for record in serial.database:
            assert parallel.database.get(record.spec.dag_hash()) is not None

    def test_dependency_order_respected(self, repo, tmp_path):
        """Every built binary's RPATHs resolve — impossible if a parent
        built before its dependency existed."""
        spec = Concretizer(repo).solve(["tool ^example@1.0.0 ^zlib@=1.2.11 ^mpich@3.4.3"]).roots[0]
        installer = Installer(tmp_path / "store", repo)
        installer.install(spec, jobs=8)
        prefix = installer.database.prefix_of(spec)
        assert Loader().load(f"{prefix}/lib/libtool.so").ok

    def test_shared_nodes_installed_once(self, repo, tmp_path):
        result = Concretizer(repo).solve(
            ["example@1.1.0 ^mpich@3.4.3", "example-ng"]
        )
        installer = Installer(tmp_path / "store", repo)
        report = installer.install_all(result.roots, jobs=4)
        assert report.built.count("zlib") == 1

    def test_database_persisted(self, repo, tmp_path):
        spec = Concretizer(repo).solve(["zlib"]).roots[0]
        Installer(tmp_path / "s", repo).install(spec, jobs=2)
        from repro.installer.database import Database

        assert len(Database(tmp_path / "s")) == 1

    def test_idempotent_reinstall(self, repo, tmp_path):
        spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        installer = Installer(tmp_path / "store", repo)
        installer.install(spec, jobs=4)
        report = installer.install(spec, jobs=4)
        assert not report.built
        assert len(report.already) == 4


class TestConcurrency:
    def test_independent_nodes_overlap(self, tmp_path):
        """Wide DAGs actually run concurrently: with a scaled build
        clock, 4 workers beat 1 worker by a wide margin."""
        repo = make_radiuss_repo()
        result = Concretizer(repo).solve(["lvarray"])  # raja/umpire/camp fan-out
        spec = result.roots[0]

        def timed(jobs, where):
            installer = Installer(tmp_path / where, repo)
            installer.builder.time_scale = 0.0002  # 0.2 ms per build second
            start = time.perf_counter()
            installer.install(spec, jobs=jobs)
            return time.perf_counter() - start

        serial = timed(1, "serial")
        parallel = timed(8, "parallel")
        assert parallel < serial * 0.8, (serial, parallel)

    def test_max_concurrency_observed(self, repo, tmp_path):
        from repro.installer.parallel import run_parallel_install

        result = Concretizer(repo).solve(["tool ^mpich@3.4.3"])
        installer = Installer(tmp_path / "store", repo)
        installer.builder.time_scale = 0.0001
        plan = run_parallel_install(installer, result.roots, jobs=4)
        assert not plan.failed
        assert plan.max_concurrency >= 2, "leaves build simultaneously"


class TestFailureIsolation:
    def test_failed_node_poisons_only_dependents(self, tmp_path):
        """cray-mpich is not buildable: installing a DAG containing it
        from source fails for it and its dependents, but reports the
        failure instead of corrupting the store."""
        repo = make_radiuss_repo()
        from repro.buildcache import external_spec

        # fabricate a spliced DAG whose replacement has no binary:
        # external_spec itself rejects empty prefixes, so model an
        # external whose prefix went missing after the spec was made
        cached = Concretizer(repo).solve(["hypre ^mpich@3.4.3"]).roots[0]
        cray = external_spec(repo, "cray-mpich", "/opt/cray/pe/mpich")
        cray.external_prefix = ""  # broken: the binaries are gone
        spliced = cached.splice(cray, transitive=True, replace="mpich")
        installer = Installer(tmp_path / "store", repo)
        with pytest.raises(InstallError) as excinfo:
            installer.install(spliced, jobs=4)
        message = str(excinfo.value)
        assert "cray-mpich" in message
        assert "hypre" in message, "dependent is reported as skipped/failed"
