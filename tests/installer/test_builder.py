"""Simulated-build tests."""

import pytest

from repro.binary.mockelf import MockBinary
from repro.concretize import Concretizer
from repro.installer.builder import BuildError, Builder, prefix_name
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


def build(repo, request, tmp_path):
    spec = Concretizer(repo).solve([request]).roots[0]
    builder = Builder(repo)
    prefixes = {}
    for node in spec.traverse(order="post"):
        prefix = tmp_path / prefix_name(node)
        builder.build(node, prefix, lambda d: str(prefixes[d.name]))
        prefixes[node.name] = prefix
    return spec, prefixes, builder


class TestBuilder:
    def test_artifacts_created(self, repo, tmp_path):
        spec, prefixes, _ = build(repo, "example@1.1.0 ^mpich@3.4.3", tmp_path)
        lib = prefixes["example"] / "lib" / "libexample.so"
        assert lib.exists()

    def test_needed_matches_link_deps(self, repo, tmp_path):
        spec, prefixes, _ = build(repo, "example@1.1.0 ^mpich@3.4.3", tmp_path)
        binary = MockBinary.read(prefixes["example"] / "lib" / "libexample.so")
        assert sorted(binary.needed) == [
            "libbzip2.so", "libmpich.so", "libzlib.so",
        ]

    def test_rpaths_point_at_dep_prefixes(self, repo, tmp_path):
        spec, prefixes, _ = build(repo, "example@1.1.0 ^mpich@3.4.3", tmp_path)
        binary = MockBinary.read(prefixes["example"] / "lib" / "libexample.so")
        assert str(prefixes["zlib"] / "lib") in binary.rpaths

    def test_type_layouts_travel_with_binary(self, repo, tmp_path):
        """A binary records the layouts it was compiled against (2.1)."""
        spec, prefixes, _ = build(repo, "example@1.1.0 ^mpich@3.4.3", tmp_path)
        binary = MockBinary.read(prefixes["example"] / "lib" / "libexample.so")
        assert binary.type_layouts["MPI_Comm"] == "int32"
        spec2, prefixes2, _ = build(repo, "example-ng ^openmpi", tmp_path / "2")
        binary2 = MockBinary.read(
            prefixes2["example-ng"] / "lib" / "libexample-ng.so"
        )
        assert binary2.type_layouts["MPI_Comm"] == "ptr-struct"

    def test_built_from_provenance(self, repo, tmp_path):
        spec, prefixes, _ = build(repo, "zlib", tmp_path)
        binary = MockBinary.read(prefixes["zlib"] / "lib" / "libzlib.so")
        assert binary.built_from == spec.dag_hash()

    def test_abstract_rejected(self, repo, tmp_path):
        from repro.spec import parse_one

        with pytest.raises(BuildError):
            Builder(repo).build(parse_one("zlib"), tmp_path, lambda d: "")

    def test_not_buildable_rejected(self, tmp_path):
        repo = make_radiuss_repo()
        from repro.buildcache import external_spec

        vendor = external_spec(repo, "cray-mpich", "/opt")
        with pytest.raises(BuildError):
            Builder(repo).build(vendor, tmp_path, lambda d: "")

    def test_build_accounting(self, repo, tmp_path):
        _, _, builder = build(repo, "example@1.1.0 ^mpich@3.4.3", tmp_path)
        assert builder.build_count == 4
        assert builder.simulated_build_time > 0

    def test_prefix_name_stable_and_unique(self, repo):
        a = Concretizer(repo).solve(["zlib@=1.3"]).roots[0]
        b = Concretizer(repo).solve(["zlib@=1.2.11"]).roots[0]
        assert prefix_name(a) == prefix_name(a)
        assert prefix_name(a) != prefix_name(b)
        assert prefix_name(a).startswith("zlib-1.3-")
