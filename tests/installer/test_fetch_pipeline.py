"""Pipelined binary installs: --fetch-jobs overlap, correctness, errors."""

import time

import pytest

import repro.obs as obs
from repro.buildcache import BuildCache, SigningKey, TrustStore
from repro.cli import main
from repro.concretize import Concretizer
from repro.installer import InstallError, Installer
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def spec(repo):
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


def make_cache(repo, spec, tmp_path, signing_key=None):
    """A populated buildcache holding ``spec``'s full stack."""
    source = Installer(tmp_path / "seed", repo)
    source.install(spec)
    cache = BuildCache(tmp_path / "cache", signing_key=signing_key)
    source.push_to_cache(cache, spec)
    cache.save_index()
    return cache


def tree_digest(root) -> dict:
    """Relative path -> content with the store root normalized out.

    Store roots of equal length produce identically-padded relocations,
    so after swapping the root for a fixed marker the trees from a
    serial and a pipelined install must match byte for byte.
    """
    digest = {}
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        text = path.read_text().replace(str(root), "@ROOT@")
        digest[str(path.relative_to(root))] = text
    return digest


class TestPipelinedExtract:
    def test_all_nodes_extracted(self, repo, spec, tmp_path):
        cache = make_cache(repo, spec, tmp_path)
        target = Installer(tmp_path / "store", repo, caches=[cache], fetch_jobs=4)
        report = target.install(spec)
        assert not report.built
        assert len(report.extracted) == 4

    def test_identical_tree_vs_serial(self, repo, spec, tmp_path):
        cache = make_cache(repo, spec, tmp_path)
        # equal-length store names: padding-relocated bytes stay comparable
        serial = Installer(tmp_path / "s1", repo, caches=[cache], fetch_jobs=1)
        serial.install(spec)
        piped = Installer(tmp_path / "s4", repo, caches=[cache], fetch_jobs=4)
        piped.install(spec)
        assert tree_digest(tmp_path / "s1") == tree_digest(tmp_path / "s4")

    def test_fetch_overlap_observed(self, repo, spec, tmp_path, monkeypatch):
        cache = make_cache(repo, spec, tmp_path)
        # stretch each fetch so worker overlap is deterministic, not a race
        original_fetch = cache.fetch

        def slow_fetch(h):
            time.sleep(0.02)
            return original_fetch(h)

        monkeypatch.setattr(cache, "fetch", slow_fetch)
        obs.reset()
        target = Installer(tmp_path / "store", repo, caches=[cache], fetch_jobs=4)
        target.install(spec)
        stats = trace.phase_stats()
        assert stats["installer.fetch"]["count"] == 4
        occupancy = metrics.histogram("installer.fetch_occupancy").values
        assert len(occupancy) == 4
        assert max(occupancy) > 1, occupancy

    def test_wall_clock_win_over_serial_fetch(self, repo, spec, tmp_path, monkeypatch):
        """With per-fetch latency dominating, 4 fetch workers beat 1."""
        cache = make_cache(repo, spec, tmp_path)
        original_fetch = cache.fetch
        delay = 0.05

        def slow_fetch(h):
            time.sleep(delay)
            return original_fetch(h)

        monkeypatch.setattr(cache, "fetch", slow_fetch)

        def timed(where, fetch_jobs):
            installer = Installer(
                tmp_path / where, repo, caches=[cache], fetch_jobs=fetch_jobs
            )
            start = time.perf_counter()
            installer.install(spec)
            return time.perf_counter() - start

        serial = timed("t1", 1)
        piped = timed("t4", 4)
        assert piped < serial, (serial, piped)

    def test_prefetch_skips_already_installed(self, repo, spec, tmp_path):
        cache = make_cache(repo, spec, tmp_path)
        target = Installer(tmp_path / "store", repo, caches=[cache], fetch_jobs=2)
        target.install(spec)
        obs.reset()
        report = target.install(spec)
        assert len(report.already) == 4
        assert "installer.fetch" not in trace.phase_stats()


class TestFetchErrors:
    def test_tampered_entry_fails_the_install(self, repo, spec, tmp_path):
        key = SigningKey.generate("publisher")
        cache = make_cache(repo, spec, tmp_path, signing_key=key)
        blob = cache.blobs / spec.dag_hash() / "files" / "lib" / "libexample.so"
        blob.write_text("evil payload")
        trust = TrustStore()
        trust.trust(key)
        consumer = BuildCache(tmp_path / "cache", trust=trust)
        target = Installer(
            tmp_path / "store", repo, caches=[consumer], fetch_jobs=4
        )
        with pytest.raises(InstallError, match="tampered"):
            target.install(spec)

    def test_signed_pipeline_round_trip(self, repo, spec, tmp_path):
        key = SigningKey.generate("publisher")
        make_cache(repo, spec, tmp_path, signing_key=key)
        trust = TrustStore()
        trust.trust(key)
        consumer = BuildCache(tmp_path / "cache", trust=trust)
        target = Installer(
            tmp_path / "store", repo, caches=[consumer], fetch_jobs=4
        )
        report = target.install(spec)
        assert len(report.extracted) == 4


class TestCLI:
    def test_fetch_jobs_flag(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path)
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--cache", str(tmp_path / "cache"),
            "--fetch-jobs", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "extracted" in out
