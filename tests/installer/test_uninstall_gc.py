"""Uninstall, garbage collection, and store verification."""

import pathlib

import pytest

from repro.binary.mockelf import MockBinary
from repro.concretize import Concretizer
from repro.installer import InstallError, Installer
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def store(repo, tmp_path):
    installer = Installer(tmp_path / "store", repo)
    spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
    installer.install(spec)
    return installer, spec


class TestUninstall:
    def test_uninstall_leaf(self, repo, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        spec = Concretizer(repo).solve(["zlib"]).roots[0]
        installer.install(spec)
        prefix = pathlib.Path(installer.database.prefix_of(spec))
        installer.uninstall(spec)
        assert installer.database.get(spec.dag_hash()) is None
        assert not prefix.exists()

    def test_uninstall_with_dependents_refused(self, store):
        installer, spec = store
        zlib = spec["zlib"]
        with pytest.raises(InstallError) as excinfo:
            installer.uninstall(zlib)
        assert "required by" in str(excinfo.value)

    def test_force_overrides(self, store):
        installer, spec = store
        installer.uninstall(spec["zlib"], force=True)
        assert installer.database.get(spec["zlib"].dag_hash()) is None

    def test_uninstall_missing_raises(self, repo, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        spec = Concretizer(repo).solve(["zlib"]).roots[0]
        with pytest.raises(InstallError):
            installer.uninstall(spec)

    def test_uninstall_persists(self, store, tmp_path):
        installer, spec = store
        installer.uninstall(spec, force=True)
        from repro.installer.database import Database

        again = Database(tmp_path / "store")
        assert again.get(spec.dag_hash()) is None


class TestGarbageCollection:
    def test_gc_keeps_explicit_closure(self, store):
        installer, spec = store
        removed = installer.gc()
        assert removed == [], "everything is reachable from the explicit root"

    def test_gc_removes_orphans(self, store):
        installer, spec = store
        # uninstall the explicit root; its deps become garbage
        installer.uninstall(spec)
        removed = installer.gc()
        assert set(removed) == {"bzip2", "mpich", "zlib"}
        assert len(installer.database) == 0

    def test_gc_dependents_before_dependencies(self, repo, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        spec = Concretizer(repo).solve(["tool ^mpich@3.4.3"]).roots[0]
        installer.install(spec)
        installer.uninstall(spec)  # root gone; chain tool->example->zlib
        removed = installer.gc()
        assert removed.index("example") < removed.index("zlib")

    def test_gc_spares_other_roots_shared_deps(self, repo, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        result = Concretizer(repo).solve(
            ["example@1.1.0 ^mpich@3.4.3", "example-ng"]
        )
        installer.install_all(result.roots)
        # drop one root; shared zlib must survive for the other
        installer.uninstall(result.roots[0])
        removed = installer.gc()
        assert "zlib" not in removed
        assert "bzip2" in removed  # only example needed bzip2


class TestVerify:
    def test_healthy_store(self, store):
        installer, _ = store
        assert installer.verify() == {}

    def test_detects_deleted_dependency(self, store):
        installer, spec = store
        import shutil

        shutil.rmtree(installer.database.prefix_of(spec["zlib"]))
        problems = installer.verify()
        assert "zlib" in problems  # its own prefix is gone
        assert "example" in problems  # its NEEDED no longer resolves

    def test_detects_corrupted_symbols(self, store):
        installer, spec = store
        prefix = installer.database.prefix_of(spec["mpich"])
        path = pathlib.Path(prefix) / "lib" / "libmpich.so"
        binary = MockBinary.read(path)
        binary.defined_symbols = []  # strip the ABI surface
        binary.write(path)
        problems = installer.verify()
        assert "example" in problems, "unresolved MPI symbols detected"
