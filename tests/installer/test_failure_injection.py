"""Failure-injection tests: corrupt artifacts, broken stores, bad input."""

import json

import pytest

from repro.binary.loader import Loader
from repro.binary.mockelf import MockBinary
from repro.buildcache import BuildCache, BuildCacheError
from repro.concretize import Concretizer
from repro.installer import InstallError, Installer
from repro.installer.database import Database, DatabaseError
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def pipeline(repo, tmp_path):
    spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
    installer = Installer(tmp_path / "store", repo)
    installer.install(spec)
    cache = BuildCache(tmp_path / "cache")
    installer.push_to_cache(cache, spec)
    return spec, installer, cache


class TestCorruptArtifacts:
    def test_corrupt_binary_in_cache_copied_as_blob(self, pipeline, tmp_path):
        """A non-mock file in the cache is treated as opaque data (like
        headers or docs in a real package) — extraction must not crash."""
        spec, installer, cache = pipeline
        blob = cache.blobs / spec.dag_hash() / "files"
        (blob / "share").mkdir(exist_ok=True)
        (blob / "share" / "README").write_bytes(b"plain text, not a binary")
        out = tmp_path / "out"
        cache.extract(spec.dag_hash(), out)
        assert (out / "share" / "README").read_bytes() == b"plain text, not a binary"

    def test_truncated_binary_fails_load_not_install(self, pipeline, tmp_path):
        spec, installer, cache = pipeline
        prefix = installer.database.prefix_of(spec)
        target = f"{prefix}/lib/libexample.so"
        with open(target, "wb") as f:
            f.write(b"\x7fMOCKELF\x01{truncated")
        result = Loader().load(target)
        assert not result.ok

    def test_missing_dependency_binary_detected_at_load(self, pipeline):
        spec, installer, cache = pipeline
        import shutil

        zlib_prefix = installer.database.prefix_of(spec["zlib"])
        shutil.rmtree(zlib_prefix)
        prefix = installer.database.prefix_of(spec)
        result = Loader().load(f"{prefix}/lib/libexample.so")
        assert not result.ok
        assert "libzlib.so" in result.missing_libraries


class TestBrokenMetadata:
    def test_missing_cache_meta(self, pipeline, tmp_path):
        spec, installer, cache = pipeline
        (cache.blobs / spec.dag_hash() / "meta.json").unlink()
        with pytest.raises(BuildCacheError):
            cache.extract(spec.dag_hash(), tmp_path / "x")

    def test_corrupt_cache_index(self, pipeline, tmp_path):
        cache_dir = tmp_path / "cache"
        (cache_dir / "index.json").write_text("{oops")
        with pytest.raises(BuildCacheError):
            BuildCache(cache_dir)

    def test_database_version_mismatch(self, tmp_path):
        (tmp_path / "db.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(DatabaseError):
            Database(tmp_path)

    def test_dangling_spec_document(self, tmp_path):
        from repro.spec import Spec, SpecError

        with pytest.raises(SpecError):
            Spec.from_dict(
                {
                    "root": "r",
                    "nodes": [
                        {
                            "name": "a",
                            "versions": "=1.0",
                            "variants": {},
                            "os": "centos8",
                            "target": "skylake",
                            "hash": "r",
                            "dependencies": [
                                {
                                    "name": "ghost",
                                    "hash": "missing",
                                    "deptypes": ["link-run"],
                                    "virtual": None,
                                }
                            ],
                        }
                    ],
                }
            )


class TestInstallerRobustness:
    def test_splice_without_any_source_binary(self, repo, tmp_path):
        spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        mpiabi = Concretizer(repo).solve(["mpiabi"]).roots[0]
        spliced = spec.splice(mpiabi, transitive=True, replace="mpich")
        bare = Installer(tmp_path / "bare", repo)
        with pytest.raises(InstallError) as excinfo:
            bare.install(spliced)
        assert "splicing requires the original binary" in str(excinfo.value)

    def test_reinstall_after_partial_state(self, pipeline, repo, tmp_path):
        """A second install over an existing store is a no-op, not a
        conflict."""
        spec, installer, cache = pipeline
        report = installer.install(spec)
        assert not report.built and len(report.already) == 4

    def test_install_all_shares_common_deps(self, repo, tmp_path):
        c = Concretizer(repo)
        result = c.solve(["example@1.1.0 ^mpich@3.4.3", "example-ng"])
        installer = Installer(tmp_path / "store", repo)
        report = installer.install_all(result.roots)
        zlib_installs = [n for n in report.built if n == "zlib"]
        assert len(zlib_installs) == 1, "shared zlib built once"
