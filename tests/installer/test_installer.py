"""Installer tests: builds, cache extraction, splice rewiring, externals."""

import pytest

from repro.binary.loader import Loader
from repro.binary.mockelf import MockBinary
from repro.buildcache import BuildCache, external_spec
from repro.concretize import Concretizer
from repro.installer import InstallError, Installer
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def spec(repo):
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


class TestSourceInstall:
    def test_builds_dependencies_first(self, repo, spec, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        report = installer.install(spec)
        assert len(report.built) == 4
        assert report.built.index("zlib") < report.built.index("example")

    def test_prefixes_created_with_artifacts(self, repo, spec, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        installer.install(spec)
        prefix = installer.database.prefix_of(spec)
        binary = MockBinary.read(f"{prefix}/lib/libexample.so")
        assert binary.built_from == spec.dag_hash()
        assert "libmpich.so" in binary.needed

    def test_install_idempotent(self, repo, spec, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        installer.install(spec)
        report = installer.install(spec)
        assert not report.built
        assert len(report.already) == 4

    def test_installed_binary_loads(self, repo, spec, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        installer.install(spec)
        prefix = installer.database.prefix_of(spec)
        assert Loader().load(f"{prefix}/lib/libexample.so").ok

    def test_abstract_spec_rejected(self, repo, tmp_path):
        from repro.spec import parse_one

        installer = Installer(tmp_path / "store", repo)
        with pytest.raises(InstallError):
            installer.install(parse_one("zlib"))

    def test_simulated_build_time_accumulates(self, repo, spec, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        report = installer.install(spec)
        assert report.simulated_build_time > 0


class TestCacheInstall:
    def test_extract_instead_of_build(self, repo, spec, tmp_path):
        source = Installer(tmp_path / "a", repo)
        source.install(spec)
        cache = BuildCache(tmp_path / "cache")
        source.push_to_cache(cache, spec)

        target = Installer(tmp_path / "b", repo, caches=[cache])
        report = target.install(spec)
        assert not report.built
        assert len(report.extracted) == 4

    def test_extracted_binary_loads_from_new_store(self, repo, spec, tmp_path):
        source = Installer(tmp_path / "a", repo)
        source.install(spec)
        cache = BuildCache(tmp_path / "cache")
        source.push_to_cache(cache, spec)
        target = Installer(tmp_path / "b", repo, caches=[cache])
        target.install(spec)
        prefix = target.database.prefix_of(spec)
        result = Loader().load(f"{prefix}/lib/libexample.so")
        assert result.ok
        assert all(str(tmp_path / "b") in p for p in result.resolved.values())


class TestSplicedInstall:
    def _cached_stack(self, repo, spec, tmp_path):
        source = Installer(tmp_path / "a", repo)
        source.install(spec)
        cache = BuildCache(tmp_path / "cache")
        source.push_to_cache(cache, spec)
        return cache

    def test_rewire_path(self, repo, spec, tmp_path):
        cache = self._cached_stack(repo, spec, tmp_path)
        c = Concretizer(repo, reusable_specs=cache.all_specs(), splicing=True)
        spliced = c.solve(["example@1.1.0 ^mpiabi"]).roots[0]
        target = Installer(tmp_path / "b", repo, caches=[cache])
        report = target.install(spliced)
        assert report.built == ["mpiabi"]
        assert report.rewired == ["example"]

    def test_rewired_binary_points_at_replacement(self, repo, spec, tmp_path):
        cache = self._cached_stack(repo, spec, tmp_path)
        c = Concretizer(repo, reusable_specs=cache.all_specs(), splicing=True)
        spliced = c.solve(["example@1.1.0 ^mpiabi"]).roots[0]
        target = Installer(tmp_path / "b", repo, caches=[cache])
        target.install(spliced)
        prefix = target.database.prefix_of(spliced)
        binary = MockBinary.read(f"{prefix}/lib/libexample.so")
        assert "libmpiabi.so" in binary.needed
        assert "libmpich.so" not in binary.needed
        result = Loader().load(f"{prefix}/lib/libexample.so")
        assert result.ok and "libmpiabi.so" in result.resolved

    def test_unsafe_manual_splice_refused(self, repo, spec, tmp_path):
        cache = self._cached_stack(repo, spec, tmp_path)
        openmpi = Concretizer(repo).solve(["openmpi"]).roots[0]
        unsafe = spec.splice(openmpi, transitive=True, replace="mpich")
        target = Installer(tmp_path / "b", repo, caches=[cache])
        target.install(unsafe["openmpi"])
        from repro.binary.rewire import RewireError

        with pytest.raises(RewireError):
            target.install(unsafe)

    def test_unsafe_splice_allowed_without_verification(self, repo, spec, tmp_path):
        cache = self._cached_stack(repo, spec, tmp_path)
        openmpi = Concretizer(repo).solve(["openmpi"]).roots[0]
        unsafe = spec.splice(openmpi, transitive=True, replace="mpich")
        target = Installer(tmp_path / "b", repo, caches=[cache], verify_abi=False)
        target.install(unsafe)
        # ...but the loader still catches the broken deployment
        prefix = target.database.prefix_of(unsafe)
        result = Loader().load(f"{prefix}/lib/libexample.so")
        assert not result.ok and result.layout_conflicts

    def test_splice_without_binary_fails(self, repo, spec, tmp_path):
        # splicing needs the original binary to relink (no cache here)
        mpiabi = Concretizer(repo).solve(["mpiabi"]).roots[0]
        spliced = spec.splice(mpiabi, transitive=True, replace="mpich")
        target = Installer(tmp_path / "b", repo)
        with pytest.raises(InstallError):
            target.install(spliced)


class TestExternals:
    def test_external_registered_not_built(self, repo, tmp_path):
        vendor = external_spec(repo, "mpich", str(tmp_path / "vendor"))
        installer = Installer(tmp_path / "store", repo)
        report = installer.install(vendor)
        assert report.externals == ["mpich"]
        assert not report.built
        assert installer.database.prefix_of(vendor) == str(tmp_path / "vendor")
