"""Install database: records, queries, persistence, splice provenance."""

import pytest

from repro.concretize import Concretizer
from repro.installer.database import Database, DatabaseError
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def spec(repo):
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


class TestRecords:
    def test_add_and_lookup(self, spec, tmp_path):
        db = Database(tmp_path)
        db.add(spec, "/prefix/example", explicit=True)
        record = db.get(spec.dag_hash())
        assert record.prefix == "/prefix/example"
        assert record.explicit

    def test_prefix_of(self, spec, tmp_path):
        db = Database(tmp_path)
        db.add(spec, "/p")
        assert db.prefix_of(spec) == "/p"

    def test_missing_raises(self, spec, tmp_path):
        with pytest.raises(DatabaseError):
            Database(tmp_path).prefix_of(spec)

    def test_conflicting_prefix_rejected(self, spec, tmp_path):
        db = Database(tmp_path)
        db.add(spec, "/a")
        with pytest.raises(DatabaseError):
            db.add(spec, "/b")

    def test_re_add_same_prefix_upgrades_explicit(self, spec, tmp_path):
        db = Database(tmp_path)
        db.add(spec, "/a", explicit=False)
        db.add(spec, "/a", explicit=True)
        assert db.get(spec.dag_hash()).explicit

    def test_query_by_name(self, spec, tmp_path):
        db = Database(tmp_path)
        for node in spec.traverse():
            db.add(node, f"/p/{node.name}")
        assert len(db.query("zlib")) == 1
        assert len(db.query()) == 4
        assert len(db) == 4

    def test_remove(self, spec, tmp_path):
        db = Database(tmp_path)
        db.add(spec, "/a")
        db.remove(spec.dag_hash())
        assert db.get(spec.dag_hash()) is None

    def test_external_prefix_fallback(self, repo, tmp_path):
        from repro.buildcache import external_spec

        vendor = external_spec(repo, "mpich", "/opt/vendor")
        db = Database(tmp_path)
        assert db.prefix_of(vendor) == "/opt/vendor"
        assert db.is_installed(vendor)


class TestPersistence:
    def test_round_trip(self, spec, tmp_path):
        db = Database(tmp_path)
        for node in spec.traverse():
            db.add(node, f"/p/{node.name}", explicit=node is spec)
        db.save()
        again = Database(tmp_path)
        assert len(again) == 4
        assert again.prefix_of(spec) == "/p/example"
        assert again.get(spec.dag_hash()).explicit

    def test_spliced_provenance_survives_reload(self, repo, spec, tmp_path):
        mpiabi = Concretizer(repo).solve(["mpiabi"]).roots[0]
        spliced = spec.splice(mpiabi, transitive=True, replace="mpich")
        db = Database(tmp_path)
        for node in spliced.traverse():
            db.add(node, f"/p/{node.name}")
        db.save()
        again = Database(tmp_path)
        reloaded = again.get(spliced.dag_hash()).spec
        assert reloaded.spliced
        assert reloaded.build_spec.dag_hash() == spec.dag_hash()
        assert reloaded.dag_hash() == spliced.dag_hash()

    def test_corrupt_db_raises(self, tmp_path):
        (tmp_path / "db.json").write_text("{broken")
        with pytest.raises(DatabaseError):
            Database(tmp_path)

    def test_reloaded_specs_fully_concrete(self, spec, tmp_path):
        db = Database(tmp_path)
        db.add(spec, "/p")
        db.save()
        Database(tmp_path).get(spec.dag_hash()).spec.validate_concrete()
