"""Sharded index tests: lazy shard loads, journal durability, migration."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.obs as obs
from repro.buildcache import (
    BuildCache,
    BuildCacheError,
    IndexFormatError,
    ShardedIndex,
    greedy_concretize,
)
from repro.buildcache.index import SHARD_WIDTH
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo


#: the CI migration leg sets REPRO_BUILDCACHE_WRITE_V1=1 to run the
#: whole suite through monolithic v1 writes; tests that assert the
#: sharded on-disk shape are meaningless there and sit out
requires_v2_writes = pytest.mark.skipif(
    os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1",
    reason="asserts the sharded on-disk layout",
)

#: the v2-compat leg additionally sets REPRO_BUILDCACHE_WRITE_V2=1;
#: tests that assert v3-only state (digests, the summary sidecar) sit
#: out under either compat knob
requires_v3_writes = pytest.mark.skipif(
    os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1"
    or os.environ.get("REPRO_BUILDCACHE_WRITE_V2") == "1",
    reason="asserts the v3 digest/summary on-disk layout",
)


def saved_version() -> int:
    """The manifest version the active env knobs make save() emit."""
    if os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1":
        return 1
    if os.environ.get("REPRO_BUILDCACHE_WRITE_V2") == "1":
        return 2
    return 3


@pytest.fixture(scope="module")
def repo():
    return make_mock_repo()


@pytest.fixture()
def zlib(repo):
    return greedy_concretize(repo, "zlib", include_build_deps=False)


def fake_doc(i: int) -> dict:
    """A fabricated spec document under a well-spread fake hash."""
    import hashlib

    h = hashlib.sha256(f"spec-{i}".encode()).hexdigest()[:32]
    return h, {"root": h, "nodes": [{"name": f"pkg{i}", "hash": h}]}


def populate(root: Path, count: int) -> dict:
    """Push ``count`` fabricated spec documents straight into an index."""
    index = ShardedIndex(root)
    docs = {}
    for i in range(count):
        h, doc = fake_doc(i)
        docs[h] = doc
        index.record_push({h: doc}, {}, {})
    index.save()
    return docs


class TestShardLayout:
    @requires_v2_writes
    def test_manifest_and_shards_on_disk(self, tmp_path):
        docs = populate(tmp_path, 50)
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert manifest["version"] == saved_version()
        assert manifest["shard_width"] == SHARD_WIDTH
        shard_files = sorted((tmp_path / "index.d").glob("*.json"))
        assert shard_files, "no shard files written"
        assert set(manifest["shards"]) == {p.stem for p in shard_files}
        # every entry lives in the shard of its own hash prefix
        for path in shard_files:
            doc = json.loads(path.read_text())
            for h in doc["specs"]:
                assert h[:SHARD_WIDTH] == path.stem
        assert sum(e["specs"] for e in manifest["shards"].values()) == len(docs)

    @requires_v2_writes
    def test_single_lookup_parses_one_shard(self, tmp_path):
        docs = populate(tmp_path, 200)
        some_hash = sorted(docs)[17]
        obs.reset()
        index = ShardedIndex(tmp_path)
        assert index.get_spec(some_hash) == docs[some_hash]
        stats = trace.phase_stats()
        assert stats["buildcache.shard_load"]["count"] == 1

    def test_len_uses_manifest_counts_without_parsing(self, tmp_path):
        populate(tmp_path, 200)
        obs.reset()
        index = ShardedIndex(tmp_path)
        assert index.spec_count() == 200
        assert "buildcache.shard_load" not in trace.phase_stats()

    def test_enumeration_loads_all_shards(self, tmp_path):
        docs = populate(tmp_path, 60)
        index = ShardedIndex(tmp_path)
        assert sorted(index.spec_hashes()) == sorted(docs)

    @requires_v2_writes
    def test_incremental_save_rewrites_only_dirty_shards(self, tmp_path):
        populate(tmp_path, 200)
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(100000)
        obs.reset()
        index.record_push({h: doc}, {}, {})
        index.save()
        stats = trace.phase_stats()
        # one dirty shard (the pushed hash's) is folded and rewritten;
        # a monolithic index would have rewritten all 200 specs
        assert stats["buildcache.shard_save"]["count"] == 1
        assert ShardedIndex(tmp_path).get_spec(h) == doc

    @requires_v2_writes
    def test_corrupt_shard_is_diagnosed(self, tmp_path):
        docs = populate(tmp_path, 20)
        some_hash = sorted(docs)[0]
        shard_path = tmp_path / "index.d" / f"{some_hash[:SHARD_WIDTH]}.json"
        shard_path.write_text("{torn")
        index = ShardedIndex(tmp_path)
        with pytest.raises(IndexFormatError, match="corrupt buildcache index shard"):
            index.get_spec(some_hash)


class TestJournal:
    def test_push_journal_replayed_on_open(self, tmp_path):
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(1)
        index.record_push({h: doc}, {}, {})
        # no save(): the journal alone must carry the push
        reopened = ShardedIndex(tmp_path)
        assert reopened.get_spec(h) == doc
        assert reopened.journal_entries == 1

    def test_save_folds_and_truncates_journal(self, tmp_path):
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(2)
        index.record_push({h: doc}, {}, {})
        assert (tmp_path / "journal.jsonl").exists()
        index.save()
        assert not (tmp_path / "journal.jsonl").exists()
        assert ShardedIndex(tmp_path).get_spec(h) == doc

    def test_torn_final_journal_line_is_tolerated(self, tmp_path):
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(3)
        index.record_push({h: doc}, {}, {})
        with open(tmp_path / "journal.jsonl", "a") as fh:
            fh.write('{"specs": {"dead')  # the crash artifact
        reopened = ShardedIndex(tmp_path)
        assert reopened.get_spec(h) == doc

    def test_journal_overlay_wins_over_stale_shard(self, tmp_path):
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(4)
        index.record_push({h: doc}, {}, {})
        index.save()
        updated = dict(doc, nodes=[{"name": "pkg4-v2", "hash": h}])
        index2 = ShardedIndex(tmp_path)
        index2.record_push({h: updated}, {}, {})
        # lazy load of the on-disk shard must keep the journaled update
        assert ShardedIndex(tmp_path).get_spec(h) == updated

    def test_push_survives_hard_process_kill(self, zlib, tmp_path):
        """The regression test for the old durability gap: the pushing
        process dies between push() and save_index(); the spec must
        still be indexed on reopen."""
        src = tmp_path / "build" / "zlib"
        (src / "lib").mkdir(parents=True)
        (src / "lib" / "libzlib.so").write_text("payload")
        script = f"""
import os
from pathlib import Path
from repro.buildcache import BuildCache, greedy_concretize
from repro.repos.mock import make_mock_repo

spec = greedy_concretize(make_mock_repo(), "zlib", include_build_deps=False)
cache = BuildCache({str(tmp_path / "cache")!r})
cache.push(spec, {str(src)!r})
os._exit(9)  # die before save_index(): no atexit, no flush, nothing
"""
        env = dict(os.environ)
        src_dir = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src_dir}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 9, proc.stderr
        reopened = BuildCache(tmp_path / "cache")
        assert len(reopened) == 1
        assert zlib.dag_hash() in reopened
        (restored,) = reopened.all_specs()
        assert restored.dag_hash() == zlib.dag_hash()
        assert reopened.has_payload(zlib.dag_hash())

    def test_save_index_survives_hard_process_kill(self, zlib, tmp_path):
        """save_index() writes shards + manifest through the fsyncing
        helper: a process killed immediately after must leave a fully
        readable index with the journal already folded — never an empty
        or torn shard (the old rename-without-fsync gap)."""
        src = tmp_path / "build" / "zlib"
        (src / "lib").mkdir(parents=True)
        (src / "lib" / "libzlib.so").write_text("payload")
        script = f"""
import os
from pathlib import Path
from repro.buildcache import BuildCache, greedy_concretize
from repro.repos.mock import make_mock_repo

spec = greedy_concretize(make_mock_repo(), "zlib", include_build_deps=False)
cache = BuildCache({str(tmp_path / "cache")!r})
cache.push(spec, {str(src)!r})
cache.save_index()
os._exit(9)  # die right after the save: no atexit, no flush, nothing
"""
        env = dict(os.environ)
        src_dir = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src_dir}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 9, proc.stderr
        # the journal was folded into shards and truncated by the save
        assert not (tmp_path / "cache" / "journal.jsonl").exists()
        reopened = BuildCache(tmp_path / "cache")
        assert reopened._index.journal_entries == 0
        assert len(reopened) == 1
        (restored,) = reopened.all_specs()
        assert restored.dag_hash() == zlib.dag_hash()


class TestV1Migration:
    def v1_document(self, count=30):
        specs = {}
        for i in range(count):
            h, doc = fake_doc(i)
            specs[h] = doc
        return {
            "version": 1,
            "specs": specs,
            "build_specs": {},
            "external_prefixes": {},
        }

    def test_v1_reads_transparently(self, tmp_path):
        doc = self.v1_document()
        (tmp_path / "index.json").write_text(json.dumps(doc))
        index = ShardedIndex(tmp_path)
        assert index.spec_count() == 30
        for h, spec_doc in doc["specs"].items():
            assert index.get_spec(h) == spec_doc

    @requires_v2_writes
    def test_v1_migrates_to_sharded_on_save(self, tmp_path):
        (tmp_path / "index.json").write_text(json.dumps(self.v1_document()))
        index = ShardedIndex(tmp_path)
        index.save()
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert manifest["version"] == saved_version()
        assert (tmp_path / "index.d").is_dir()
        assert ShardedIndex(tmp_path).spec_count() == 30
        assert metrics.counter("buildcache.v1_migrations").value > 0

    def test_v1_external_prefixes_survive_migration(self, tmp_path):
        doc = self.v1_document(5)
        node_hash = "ab" + "0" * 30
        doc["external_prefixes"][node_hash] = "/opt/cray/pe/mpich"
        (tmp_path / "index.json").write_text(json.dumps(doc))
        index = ShardedIndex(tmp_path)
        index.save()
        assert (
            ShardedIndex(tmp_path).external_prefix(node_hash)
            == "/opt/cray/pe/mpich"
        )

    def test_unsupported_version_refused(self, tmp_path):
        (tmp_path / "index.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(BuildCacheError, match="version"):
            ShardedIndex(tmp_path)

    def test_write_v1_env_knob_round_trips(self, tmp_path, monkeypatch):
        """The CI migration leg: saves emit monolithic v1, reads migrate."""
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(7)
        index.record_push({h: doc}, {}, {})
        monkeypatch.setenv("REPRO_BUILDCACHE_WRITE_V1", "1")
        index.save()
        on_disk = json.loads((tmp_path / "index.json").read_text())
        assert on_disk["version"] == 1
        assert h in on_disk["specs"]
        monkeypatch.delenv("REPRO_BUILDCACHE_WRITE_V1")
        reopened = ShardedIndex(tmp_path)
        assert reopened.get_spec(h) == doc
        reopened.save()  # and back to the sharded format
        assert json.loads((tmp_path / "index.json").read_text())["version"] in (2, 3)


class TestBuildCacheIntegration:
    @requires_v2_writes
    def test_cache_open_does_not_parse_shards(self, zlib, tmp_path):
        src = tmp_path / "build" / "zlib"
        (src / "lib").mkdir(parents=True)
        (src / "lib" / "libzlib.so").write_text("payload")
        cache = BuildCache(tmp_path / "cache")
        cache.push(zlib, src)
        cache.save_index()

        obs.reset()
        reopened = BuildCache(tmp_path / "cache")
        assert "buildcache.shard_load" not in trace.phase_stats()
        assert zlib.dag_hash() in reopened
        assert trace.phase_stats()["buildcache.shard_load"]["count"] == 1


class TestContentDigest:
    """content_digest(): the ground cache's O(1) reuse-set key.

    Contract: equal spec sets give equal digests across save/reopen
    (and across directories), any content change gives a new digest,
    and the clean-manifest fast path never reads a shard.
    """

    def test_stable_across_save_and_reopen(self, tmp_path):
        populate(tmp_path, 20)
        saver = ShardedIndex(tmp_path)
        assert saver.content_digest() == ShardedIndex(tmp_path).content_digest()

    @requires_v3_writes
    def test_clean_manifest_path_is_o1(self, tmp_path):
        populate(tmp_path, 20)
        obs.reset()
        index = ShardedIndex(tmp_path)
        digest = index.content_digest()
        assert digest.startswith("manifest:")
        assert "buildcache.shard_load" not in trace.phase_stats()

    def test_same_content_same_digest_across_directories(self, tmp_path):
        populate(tmp_path / "a", 12)
        populate(tmp_path / "b", 12)
        assert (
            ShardedIndex(tmp_path / "a").content_digest()
            == ShardedIndex(tmp_path / "b").content_digest()
        )

    def test_push_changes_digest(self, tmp_path):
        populate(tmp_path, 12)
        index = ShardedIndex(tmp_path)
        before = index.content_digest()
        h, doc = fake_doc(99)
        index.record_push({h: doc}, {}, {})
        dirty = index.content_digest()
        assert dirty != before
        assert dirty.startswith("hashes:")  # unsaved overlay: exact fallback
        index.save()
        saved = index.content_digest()
        assert saved != before
        assert ShardedIndex(tmp_path).content_digest() == saved

    def test_digest_after_save_matches_fresh_open(self, tmp_path):
        index = ShardedIndex(tmp_path)
        for i in range(8):
            h, doc = fake_doc(i)
            index.record_push({h: doc}, {}, {})
        index.save()
        assert index.content_digest() == ShardedIndex(tmp_path).content_digest()

    def test_buildcache_delegates(self, zlib, tmp_path):
        src = tmp_path / "build" / "zlib"
        (src / "lib").mkdir(parents=True)
        (src / "lib" / "libzlib.so").write_text("payload")
        cache = BuildCache(tmp_path / "cache")
        before = cache.content_digest()
        cache.push(zlib, src)
        cache.save_index()
        after = cache.content_digest()
        assert after != before
        assert BuildCache(tmp_path / "cache").content_digest() == after
