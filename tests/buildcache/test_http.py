"""The networked cache pair: ``HTTPBackend`` against a live
``repro buildcache serve`` process.

Covers the wire protocol (ETag/304, ranges, read-only refusal, the
transient-fault taxonomy), the warm-refresh efficiency criterion (an
unchanged served mirror costs exactly one conditional GET per
``refresh()``), mirror-entry parsing, and end-to-end parity: installs
through ``http://`` mirrors must be byte-identical to local-cache
installs, including under concurrent clients and injected faults.
"""

import hashlib
import http.client
import json
import threading

import pytest

import repro.obs as obs
from repro.buildcache import (
    BuildCache,
    HTTPBackend,
    MissingBlobError,
    ReadOnlyBackendError,
    TransientBackendError,
    MirrorGroup,
)
from repro.buildcache.server import start_server
from repro.cli import CLIError, _parse_mirror, main
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics
from repro.repos.mock import make_mock_repo

from .test_mirrors import make_cache, tree_digest


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def spec(repo):
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


@pytest.fixture()
def served(repo, spec, tmp_path):
    """A populated buildcache directory behind a live HTTP server."""
    make_cache(repo, spec, tmp_path / "pub", "pub", tmp_path / "seed")
    server = start_server(tmp_path / "pub")
    yield server
    server.shutdown()
    server.server_close()


def raw_get(server, path, headers=None):
    """One plain-stdlib request, bypassing HTTPBackend entirely."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestParseMirror:
    def test_plain_path(self):
        assert _parse_mirror("/some/dir") == (None, "/some/dir", False)

    def test_labeled_path_read_only(self):
        assert _parse_mirror("pub=/some/dir:ro") == ("pub", "/some/dir", True)

    def test_url_with_query_is_not_split_on_equals(self):
        """The scheme-awareness regression: the '=' inside the query
        string must not become a label split."""
        assert _parse_mirror("http://h/p?a=b") == (None, "http://h/p?a=b", False)

    def test_url_keeps_its_port(self):
        assert _parse_mirror("http://h:8080/p") == (
            None, "http://h:8080/p", False,
        )

    def test_url_trailing_ro_with_port(self):
        assert _parse_mirror("http://h:8080/p:ro") == (
            None, "http://h:8080/p", True,
        )

    def test_labeled_url(self):
        assert _parse_mirror("pub=http://h/p:ro") == ("pub", "http://h/p", True)

    def test_empty_label_rejected(self):
        with pytest.raises(CLIError, match="empty label"):
            _parse_mirror("=/some/dir")

    def test_label_without_target_rejected(self):
        with pytest.raises(CLIError, match="no path or URL"):
            _parse_mirror("pub=")

    def test_cli_exit_2_on_empty_label(self, tmp_path, capsys):
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirror", f"={tmp_path / 'a'}",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: invalid mirror entry" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_cli_exit_2_on_label_without_target(self, tmp_path, capsys):
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirror", "pub=",
        ])
        assert rc == 2
        assert "error: invalid mirror entry" in capsys.readouterr().err

    def test_cli_exit_2_on_invalid_url(self, tmp_path, capsys):
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirror", "http://",
        ])
        assert rc == 2
        assert "error: invalid mirror URL" in capsys.readouterr().err


class TestServerProtocol:
    def test_index_etag_is_the_manifest_digest(self, served, tmp_path):
        digest = json.loads(
            (tmp_path / "pub" / "index.json").read_text()
        )["digest"]
        status, headers, _body = raw_get(served, "/index.json")
        assert status == 200
        assert headers["ETag"] == f'"{digest}"'

    def test_if_none_match_yields_304_with_empty_body(self, served):
        _status, headers, body = raw_get(served, "/index.json")
        status, _headers, body = raw_get(
            served, "/index.json", {"If-None-Match": headers["ETag"]}
        )
        assert status == 304
        assert body == b""

    def test_blob_etag_is_content_sha256(self, served, tmp_path):
        (tmp_path / "pub" / "blob.bin").write_bytes(b"payload")
        status, headers, _body = raw_get(served, "/blob.bin")
        assert status == 200
        assert headers["ETag"] == (
            f'"{hashlib.sha256(b"payload").hexdigest()}"'
        )

    def test_range_request_returns_206_with_content_range(
        self, served, tmp_path
    ):
        (tmp_path / "pub" / "blob.bin").write_bytes(b"0123456789")
        status, headers, body = raw_get(
            served, "/blob.bin", {"Range": "bytes=2-5"}
        )
        assert status == 206
        assert body == b"2345"
        assert headers["Content-Range"] == "bytes 2-5/10"
        assert metrics.counter(
            "buildcache.http_server_range_requests"
        ).value >= 1

    def test_suffix_range(self, served, tmp_path):
        (tmp_path / "pub" / "blob.bin").write_bytes(b"0123456789")
        status, _headers, body = raw_get(
            served, "/blob.bin", {"Range": "bytes=-3"}
        )
        assert status == 206
        assert body == b"789"

    def test_range_past_eof_is_416(self, served, tmp_path):
        (tmp_path / "pub" / "blob.bin").write_bytes(b"0123456789")
        status, headers, _body = raw_get(
            served, "/blob.bin", {"Range": "bytes=50-60"}
        )
        assert status == 416
        assert headers["Content-Range"] == "bytes */10"

    def test_read_only_server_maps_to_read_only_error(self, tmp_path):
        (tmp_path / "pub").mkdir()
        server = start_server(tmp_path / "pub", read_only=True)
        try:
            backend = HTTPBackend(server.url)
            with pytest.raises(ReadOnlyBackendError, match="read-only"):
                backend.put("k", b"v")
            with pytest.raises(ReadOnlyBackendError, match="read-only"):
                backend.publish_tree("t", {"f": b"v"})
        finally:
            server.shutdown()
            server.server_close()

    def test_5xx_maps_to_transient_error(self, served):
        backend = HTTPBackend(served.url)
        backend.put("k", b"v")
        served.fail_next(1)
        with pytest.raises(TransientBackendError):
            backend.get("k")
        assert backend.get("k") == b"v"  # fault exhausted: recovers

    def test_connection_refused_maps_to_transient_error(self, served):
        served.shutdown()
        served.server_close()
        backend = HTTPBackend(served.url)
        with pytest.raises(TransientBackendError):
            backend.get("index.json")

    def test_pool_reuses_connections(self, served):
        obs.reset()
        backend = HTTPBackend(served.url)
        backend.put("k", b"v")
        for _ in range(3):
            assert backend.get("k") == b"v"
        assert metrics.counter("buildcache.http_pool_reuse").value >= 3
        backend.close()


class TestWarmRefresh:
    def test_unchanged_mirror_costs_one_conditional_get(self, served, spec):
        """The acceptance criterion: after the cold open, every
        ``refresh()`` against an unchanged served mirror is exactly one
        request, and that request is a 304 — zero shard re-downloads."""
        cache = BuildCache(backend=HTTPBackend(served.url), name="http")
        assert spec.dag_hash() in cache  # cold: loads manifest + shard
        obs.reset()
        for round_no in range(3):
            before = len(served.request_log)
            assert cache.refresh_index() == 0
            new = served.request_log[before:]
            assert len(new) == 1, new
            method, path, status = new[0]
            assert (method, path, status) == ("GET", "/index.json", 304)
        assert metrics.counter("buildcache.http_304s").value == 3

    def test_changed_mirror_invalidates_and_refetches(
        self, served, repo, spec, tmp_path
    ):
        cache = BuildCache(backend=HTTPBackend(served.url), name="http")
        assert spec.dag_hash() in cache
        # another writer pushes a new spec into the served directory
        extra = Concretizer(repo).solve(["example@1.1.0 ^openmpi"]).roots[0]
        seed2 = Installer(tmp_path / "seed2", repo)
        seed2.install(extra)
        writer = BuildCache(tmp_path / "pub", name="writer")
        seed2.push_to_cache(writer, extra)
        writer.save_index()

        assert cache.refresh_index() > 0
        assert extra.dag_hash() in cache


class TestHTTPInstall:
    def test_install_byte_identical_to_local(self, served, repo, spec,
                                             tmp_path):
        # equal-length store names keep padding-relocation comparable
        local = Installer(tmp_path / "s1", repo,
                          caches=[BuildCache(tmp_path / "pub", name="L")])
        local.install(spec)
        http_cache = BuildCache(backend=HTTPBackend(served.url, name="H"),
                                name="H")
        remote = Installer(tmp_path / "s2", repo, caches=[http_cache])
        report = remote.install(spec)
        assert not report.built
        assert len(report.extracted) == 4
        assert tree_digest(tmp_path / "s1") == tree_digest(tmp_path / "s2")

    def test_cli_install_through_http_mirror(self, served, tmp_path, capsys):
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--mirror", f"{served.url}:ro",
        ])
        assert rc == 0
        assert "extracted=4" in capsys.readouterr().out

    def test_cli_mirrors_file_with_url_line(self, served, tmp_path, capsys):
        mirrors = tmp_path / "mirrors.txt"
        mirrors.write_text(
            "# the served public mirror\n"
            f"pub={served.url}:ro\n"
        )
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--cache", str(tmp_path / "scratch"),
            "--mirrors-file", str(mirrors),
        ])
        assert rc == 0
        assert "extracted=4" in capsys.readouterr().out

    def test_two_concurrent_clients_byte_identical(self, served, repo, spec,
                                                   tmp_path):
        """The serve process is threaded: two clients fetching the same
        payloads concurrently both install byte-identical trees."""
        local = Installer(tmp_path / "sx", repo,
                          caches=[BuildCache(tmp_path / "pub", name="L")])
        local.install(spec)

        failures = []

        def client(store):
            try:
                cache = BuildCache(
                    backend=HTTPBackend(served.url, name=store.name),
                    name=store.name,
                )
                Installer(store, repo, caches=[cache],
                          fetch_jobs=2).install(spec)
            except Exception as e:  # surfaces in the main thread
                failures.append(e)

        threads = [
            threading.Thread(target=client, args=(tmp_path / name,))
            for name in ("s1", "s2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        want = tree_digest(tmp_path / "sx")
        assert tree_digest(tmp_path / "s1") == want
        assert tree_digest(tmp_path / "s2") == want

    def test_push_through_http_round_trips(self, repo, spec, tmp_path):
        """The write path: pushing through HTTPBackend stages parts over
        the wire and commits atomically; the served directory is then a
        fully valid buildcache when opened locally."""
        source = Installer(tmp_path / "seed", repo)
        source.install(spec)
        (tmp_path / "pub").mkdir()
        server = start_server(tmp_path / "pub")
        try:
            cache = BuildCache(backend=HTTPBackend(server.url), name="http")
            source.push_to_cache(cache, spec)
            cache.save_index()
        finally:
            server.shutdown()
            server.server_close()
        reopened = BuildCache(tmp_path / "pub", name="pub")
        assert spec.dag_hash() in reopened
        assert reopened.has_payload(spec.dag_hash())
        target = Installer(tmp_path / "store", repo, caches=[reopened])
        report = target.install(spec)
        assert not report.built
        assert len(report.extracted) == 4


class TestRetries:
    def test_transient_http_faults_retry_on_fake_clock(
        self, served, repo, spec, tmp_path, monkeypatch
    ):
        """Injected 5xx faults during the pipelined fetch are retried
        with backoff — and the backoff runs on the injectable module
        clock, so the test never sleeps for real."""
        sleeps = []
        monkeypatch.setattr(
            "repro.buildcache.mirror._default_sleep", sleeps.append
        )
        scratch = BuildCache(tmp_path / "scratch", name="scratch")
        http_cache = BuildCache(backend=HTTPBackend(served.url, name="http"),
                                name="http")
        group = MirrorGroup([scratch, http_cache], retries=2)
        obs.reset()
        served.fail_next(2)
        target = Installer(tmp_path / "store", repo, caches=[group],
                           fetch_jobs=2)
        report = target.install(spec)
        assert not report.built
        assert len(report.extracted) == 4
        assert metrics.counter("buildcache.mirror_retries").value >= 1
        assert sleeps  # the delays went to the seam, not time.sleep
        assert all(delay > 0 for delay in sleeps)

    def test_cli_install_retries_through_module_seam(
        self, served, repo, tmp_path, monkeypatch, capsys
    ):
        """The CLI constructs its MirrorGroup internally: monkeypatching
        the module-level clock must still reach it."""
        sleeps = []
        monkeypatch.setattr(
            "repro.buildcache.mirror._default_sleep", sleeps.append
        )
        # scope the fault to payload reads: the cold index open the CLI
        # does while constructing the group is outside retry scope
        served.fail_next(1, path_contains="/blobs/")
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--cache", str(tmp_path / "scratch"),
            "--mirror", f"{served.url}:ro",
            "--fetch-jobs", "2",
        ])
        assert rc == 0
        assert "extracted=4" in capsys.readouterr().out
        assert sleeps
