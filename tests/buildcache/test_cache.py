"""BuildCache unit tests: layout, index persistence, signing/trust."""

import json

import pytest

from repro.binary.mockelf import MockBinary
from repro.buildcache import (
    BuildCache,
    BuildCacheError,
    SigningKey,
    TrustStore,
    greedy_concretize,
)
from repro.repos.mock import make_mock_repo
from repro.spec import parse_one


@pytest.fixture(scope="module")
def repo():
    return make_mock_repo()


@pytest.fixture()
def zlib(repo):
    return greedy_concretize(repo, "zlib", include_build_deps=False)


def fake_install(prefix, soname="libzlib.so"):
    """Lay out a minimal install tree: one mock binary that references
    its own prefix, plus an opaque text file."""
    (prefix / "lib").mkdir(parents=True)
    MockBinary(
        soname=soname,
        rpaths=[f"{prefix}/lib"],
        path_blob=[str(prefix)],
    ).write(prefix / "lib" / soname)
    (prefix / "README").write_text("not a binary\n")
    return prefix


class TestPushExtract:
    def test_round_trip_relocates_binaries(self, zlib, tmp_path):
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache")
        cache.push(zlib, src)
        h = zlib.dag_hash()
        assert h in cache
        assert cache.has_payload(h)

        dest = tmp_path / "store" / "zlib"
        cache.extract(h, dest)
        binary = MockBinary.read(dest / "lib" / "libzlib.so")
        assert binary.rpaths == [f"{dest}/lib"]
        assert not binary.references_prefix(str(src))
        # opaque files are copied verbatim
        assert (dest / "README").read_text() == "not a binary\n"

    def test_dep_prefixes_relocate_via_extra_map(self, zlib, tmp_path):
        src = tmp_path / "build" / "zlib"
        (src / "lib").mkdir(parents=True)
        MockBinary(
            soname="libzlib.so",
            rpaths=[f"{src}/lib", "/buildfarm/mpich/lib"],
        ).write(src / "lib" / "libzlib.so")
        cache = BuildCache(tmp_path / "cache")
        cache.push(zlib, src, dep_prefixes={"abc123": "/buildfarm/mpich"})
        assert cache.meta(zlib.dag_hash())["dep_prefixes"] == {
            "abc123": "/buildfarm/mpich"
        }

        dest = tmp_path / "store" / "zlib"
        cache.extract(
            zlib.dag_hash(), dest,
            extra_prefix_map={"/buildfarm/mpich": "/local/mpich"},
        )
        binary = MockBinary.read(dest / "lib" / "libzlib.so")
        assert binary.references_prefix("/local/mpich")
        assert not binary.references_prefix("/buildfarm/mpich")

    def test_push_rejects_abstract_spec(self, tmp_path):
        cache = BuildCache(tmp_path / "cache")
        with pytest.raises(BuildCacheError, match="abstract"):
            cache.push(parse_one("zlib"), tmp_path)

    def test_push_rejects_missing_prefix(self, zlib, tmp_path):
        cache = BuildCache(tmp_path / "cache")
        with pytest.raises(BuildCacheError, match="does not exist"):
            cache.push(zlib, tmp_path / "nowhere")

    def test_extract_unknown_hash_fails_loudly(self, tmp_path):
        cache = BuildCache(tmp_path / "cache")
        with pytest.raises(BuildCacheError, match="no metadata"):
            cache.extract("deadbeef", tmp_path / "out")


class TestIndexPersistence:
    def test_reopen_sees_pushed_specs(self, repo, zlib, tmp_path):
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache")
        cache.push(zlib, src)
        cache.save_index()

        reopened = BuildCache(tmp_path / "cache")
        assert len(reopened) == 1
        assert zlib.dag_hash() in reopened
        (restored,) = reopened.all_specs()
        assert restored.dag_hash() == zlib.dag_hash()
        assert restored.concrete

    def test_push_is_durable_without_save_index(self, zlib, tmp_path):
        """The journal closes the old durability gap: a push with no
        later save_index() survives reopen."""
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache")
        cache.push(zlib, src)  # no save_index()
        assert (tmp_path / "cache" / "journal.jsonl").exists()
        reopened = BuildCache(tmp_path / "cache")
        assert len(reopened) == 1
        assert zlib.dag_hash() in reopened
        (restored,) = reopened.all_specs()
        assert restored.dag_hash() == zlib.dag_hash()

    def test_corrupt_index_is_diagnosed(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "index.json").write_text("{not json")
        with pytest.raises(BuildCacheError, match="corrupt buildcache index"):
            BuildCache(root)

    def test_future_index_version_is_refused(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "index.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(BuildCacheError, match="version"):
            BuildCache(root)


class TestSigning:
    @pytest.fixture()
    def key(self):
        return SigningKey.generate("ci-publisher")

    def test_signed_round_trip(self, zlib, tmp_path, key):
        src = fake_install(tmp_path / "build" / "zlib")
        BuildCache(tmp_path / "cache", signing_key=key).push(zlib, src)

        trust = TrustStore()
        trust.trust(key)
        consumer = BuildCache(tmp_path / "cache", trust=trust)
        dest = consumer.extract(zlib.dag_hash(), tmp_path / "store" / "zlib")
        assert (dest / "lib" / "libzlib.so").exists()

    def test_tampered_payload_is_rejected(self, zlib, tmp_path, key):
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache", signing_key=key)
        cache.push(zlib, src)
        h = zlib.dag_hash()
        (cache.blobs / h / "files" / "README").write_text("evil payload")

        trust = TrustStore()
        trust.trust(key)
        consumer = BuildCache(tmp_path / "cache", trust=trust)
        with pytest.raises(BuildCacheError, match="tampered"):
            consumer.extract(h, tmp_path / "out")

    def test_extra_file_in_payload_is_rejected(self, zlib, tmp_path, key):
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache", signing_key=key)
        cache.push(zlib, src)
        h = zlib.dag_hash()
        (cache.blobs / h / "files" / "sneaky.so").write_text("injected")

        trust = TrustStore()
        trust.trust(key)
        with pytest.raises(BuildCacheError, match="unexpected file"):
            BuildCache(tmp_path / "cache", trust=trust).extract(h, tmp_path / "out")

    def test_unsigned_entry_rejected_by_trusting_consumer(self, zlib, tmp_path, key):
        src = fake_install(tmp_path / "build" / "zlib")
        BuildCache(tmp_path / "cache").push(zlib, src)  # unsigned push

        trust = TrustStore()
        trust.trust(key)
        with pytest.raises(BuildCacheError, match="unsigned"):
            BuildCache(tmp_path / "cache", trust=trust).extract(
                zlib.dag_hash(), tmp_path / "out"
            )

    def test_signature_from_untrusted_key_rejected(self, zlib, tmp_path, key):
        src = fake_install(tmp_path / "build" / "zlib")
        BuildCache(tmp_path / "cache", signing_key=key).push(zlib, src)

        trust = TrustStore()
        trust.trust(SigningKey.generate("someone-else"))
        with pytest.raises(BuildCacheError):
            BuildCache(tmp_path / "cache", trust=trust).extract(
                zlib.dag_hash(), tmp_path / "out"
            )

    def test_untrusting_consumer_ignores_signatures(self, zlib, tmp_path, key):
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache", signing_key=key)
        cache.push(zlib, src)
        h = zlib.dag_hash()
        (cache.blobs / h / "files" / "README").write_text("tampered")
        # no trust policy: extraction proceeds (local scratch mirror)
        dest = BuildCache(tmp_path / "cache").extract(h, tmp_path / "out")
        assert (dest / "README").read_text() == "tampered"


class TestCorruptEntries:
    def test_manifest_without_meta_is_a_cache_error(self, zlib, tmp_path):
        """An entry whose meta.json vanished must surface as a
        BuildCacheError, not a raw FileNotFoundError, on both the meta
        and the verify paths."""
        key = SigningKey.generate("publisher")
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache", signing_key=key)
        cache.push(zlib, src)
        h = zlib.dag_hash()
        (cache.blobs / h / "meta.json").unlink()

        with pytest.raises(BuildCacheError, match="no metadata"):
            cache.meta(h)

        trust = TrustStore()
        trust.trust(key)
        consumer = BuildCache(tmp_path / "cache", trust=trust)
        with pytest.raises(BuildCacheError, match="no metadata"):
            consumer._verify_files(h, {})

    def test_corrupt_meta_json_is_diagnosed(self, zlib, tmp_path):
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache")
        cache.push(zlib, src)
        h = zlib.dag_hash()
        (cache.blobs / h / "meta.json").write_text("{torn")
        with pytest.raises(BuildCacheError, match="corrupt metadata"):
            cache.meta(h)


class TestTornPush:
    def test_interrupted_repush_preserves_previous_entry(
        self, zlib, tmp_path, monkeypatch
    ):
        """The torn-push regression: a re-push dying mid-copy used to
        leave the old signed manifest over a partial new payload.  The
        entry now publishes atomically — after the fault the previous
        entry is intact and still extracts."""
        from repro.buildcache.backend import LocalFSBackend

        key = SigningKey.generate("publisher")
        src = fake_install(tmp_path / "build" / "zlib")
        cache = BuildCache(tmp_path / "cache", signing_key=key)
        cache.push(zlib, src)
        h = zlib.dag_hash()

        new_src = fake_install(tmp_path / "build2" / "zlib")
        (new_src / "EXTRA").write_text("second revision\n")

        real_stage = LocalFSBackend._stage_file
        calls = {"n": 0}

        def flaky_stage(self, path, data):
            calls["n"] += 1
            if calls["n"] == 3:  # die partway through the payload copy
                raise OSError("connection reset")
            real_stage(self, path, data)

        monkeypatch.setattr(LocalFSBackend, "_stage_file", flaky_stage)
        with pytest.raises(OSError, match="connection reset"):
            cache.push(zlib, new_src)
        monkeypatch.undo()

        # the old entry is byte-for-byte intact and still verifies
        trust = TrustStore()
        trust.trust(key)
        consumer = BuildCache(tmp_path / "cache", trust=trust)
        dest = consumer.extract(h, tmp_path / "out")
        assert (dest / "README").read_text() == "not a binary\n"
        assert not (dest / "EXTRA").exists()

        # and the re-push completes cleanly afterwards
        cache.push(zlib, new_src)
        dest2 = BuildCache(tmp_path / "cache", trust=trust).extract(
            h, tmp_path / "out2"
        )
        assert (dest2 / "EXTRA").read_text() == "second revision\n"
