"""Mirror-group tests: ordering, fallback, retries, and the install path."""

import shutil

import pytest

import repro.obs as obs
from repro.buildcache import (
    BuildCache,
    BuildCacheError,
    LocalFSBackend,
    MirrorGroup,
    SimulatedRemoteBackend,
)
from repro.cli import main
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def spec(repo):
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


def make_cache(repo, spec, root, name, seed_dir):
    """A populated buildcache holding ``spec``'s full stack."""
    source = Installer(seed_dir, repo)
    source.install(spec)
    cache = BuildCache(root, name=name)
    source.push_to_cache(cache, spec)
    cache.save_index()
    return cache


def sim_cache(root, name, **kwargs):
    """A cache over an existing directory wrapped as a flaky remote."""
    backend = SimulatedRemoteBackend(LocalFSBackend(root), name=name, **kwargs)
    return BuildCache(backend=backend, name=name), backend


def tree_digest(root) -> dict:
    digest = {}
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        text = path.read_text().replace(str(root), "@ROOT@")
        digest[str(path.relative_to(root))] = text
    return digest


class TestMirrorSemantics:
    def test_first_hit_wins_ordering(self, repo, spec, tmp_path):
        """Both mirrors hold the hash; the first one serves it."""
        first = make_cache(repo, spec, tmp_path / "first", "first",
                           tmp_path / "seed")
        shutil.copytree(tmp_path / "first", tmp_path / "second")
        second = BuildCache(tmp_path / "second", name="second")
        group = MirrorGroup([first, second], backoff=0)
        obs.reset()
        payload = group.fetch(spec.dag_hash())
        assert payload.source == "first"
        assert metrics.counter("buildcache.mirror_hits.first").value == 1
        assert metrics.counter("buildcache.mirror_hits.second").value == 0

    def test_index_hit_payload_missing_falls_through(self, repo, spec, tmp_path):
        """Mirror A indexes the spec but lost the blob (the stale-mirror
        pathology): the group degrades to B and bumps the fallback
        counter."""
        make_cache(repo, spec, tmp_path / "a", "a", tmp_path / "seed")
        shutil.copytree(tmp_path / "a", tmp_path / "b")
        shutil.rmtree(tmp_path / "a" / "blobs")
        a = BuildCache(tmp_path / "a", name="a")
        b = BuildCache(tmp_path / "b", name="b")
        group = MirrorGroup([a, b], backoff=0)
        h = spec.dag_hash()
        assert h in group  # the index still advertises it
        obs.reset()
        payload = group.fetch(h)
        assert payload.source == "b"
        assert metrics.counter("buildcache.mirror_fallbacks").value > 0
        assert metrics.counter("buildcache.mirror_fallbacks.a").value > 0
        assert metrics.counter("buildcache.mirror_hits.b").value == 1

    def test_read_only_mirror_rejects_push(self, repo, spec, tmp_path):
        primary = BuildCache(
            backend=LocalFSBackend(tmp_path / "ro", writable=False),
            name="ro",
        )
        group = MirrorGroup([primary], backoff=0)
        seed = Installer(tmp_path / "seed", repo)
        seed.install(spec)
        with pytest.raises(BuildCacheError, match="read-only"):
            group.push(spec, seed.database.prefix_of(spec))

    def test_all_specs_union_dedupes_preferring_first(self, repo, spec, tmp_path):
        """A hash in both mirrors appears once; hashes unique to either
        mirror all appear."""
        first = make_cache(repo, spec, tmp_path / "first", "first",
                           tmp_path / "seed1")
        shutil.copytree(tmp_path / "first", tmp_path / "second")
        second = BuildCache(tmp_path / "second", name="second")
        # give the second mirror one extra spec the first lacks
        extra = Concretizer(repo).solve(["example@1.1.0 ^openmpi"]).roots[0]
        seed2 = Installer(tmp_path / "seed2", repo)
        seed2.install(extra)
        seed2.push_to_cache(second, extra)
        second.save_index()

        group = MirrorGroup([first, second], backoff=0)
        specs = group.all_specs()
        hashes = [s.dag_hash() for s in specs]
        assert len(hashes) == len(set(hashes)), "duplicate hash in union"
        assert set(hashes) == (
            {n.dag_hash() for n in spec.traverse()}
            | {n.dag_hash() for n in extra.traverse()}
        )
        assert len(group) == len(hashes)

    def test_push_goes_to_primary_only(self, repo, spec, tmp_path):
        primary = BuildCache(tmp_path / "primary", name="primary")
        secondary = BuildCache(tmp_path / "secondary", name="secondary")
        group = MirrorGroup([primary, secondary], backoff=0)
        seed = Installer(tmp_path / "seed", repo)
        seed.install(spec)
        for node in spec.traverse(order="post"):
            group.push(node, seed.database.prefix_of(node))
        group.save_index()
        assert len(primary) == 4
        assert len(secondary) == 0

    def test_duplicate_labels_rejected(self, tmp_path):
        a = BuildCache(tmp_path / "x" / "cache", name="same")
        b = BuildCache(tmp_path / "y" / "cache", name="same")
        with pytest.raises(BuildCacheError, match="unique"):
            MirrorGroup([a, b])

    def test_empty_group_rejected(self):
        with pytest.raises(BuildCacheError, match="at least one"):
            MirrorGroup([])


class TestRetryAndDegrade:
    def test_transient_fault_is_retried_on_same_mirror(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "flaky")
        group = MirrorGroup([cache], retries=2, backoff=0)
        h = spec.dag_hash()
        backend.fail("get", times=1)  # first meta read times out
        obs.reset()
        payload = group.fetch(h)
        assert payload.source == "flaky"
        assert metrics.counter("buildcache.mirror_retries.flaky").value >= 1
        assert metrics.counter("buildcache.mirror_hits.flaky").value == 1

    def test_exhausted_retries_degrade_to_next_mirror(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        flaky, backend = sim_cache(tmp_path / "m", "flaky")
        shutil.copytree(tmp_path / "m", tmp_path / "good")
        good = BuildCache(tmp_path / "good", name="good")
        group = MirrorGroup([flaky, good], retries=1, backoff=0)
        backend.fail("get", times=50)  # more faults than retries
        obs.reset()
        payload = group.fetch(spec.dag_hash())
        assert payload.source == "good"
        assert metrics.counter("buildcache.mirror_fallbacks.flaky").value > 0

    def test_every_mirror_failing_raises(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "flaky")
        group = MirrorGroup([cache], retries=0, backoff=0)
        backend.fail("get", times=50)
        with pytest.raises(BuildCacheError, match="no mirror"):
            group.fetch(spec.dag_hash())

    def test_unknown_hash_raises_after_all_misses(self, repo, spec, tmp_path):
        cache = make_cache(repo, spec, tmp_path / "m", "m", tmp_path / "seed")
        group = MirrorGroup([cache], backoff=0)
        with pytest.raises(BuildCacheError, match="no mirror"):
            group.fetch("deadbeef" * 4)


class TestMirrorInstallPath:
    def test_install_through_flaky_two_mirror_group(self, repo, spec, tmp_path):
        """The CI mirror-smoke scenario: a primary missing its payloads
        plus a flaky-but-complete secondary still installs everything,
        through the pipelined fetch path."""
        make_cache(repo, spec, tmp_path / "full", "full", tmp_path / "seed")
        shutil.copytree(tmp_path / "full", tmp_path / "empty")
        shutil.rmtree(tmp_path / "empty" / "blobs")
        primary = BuildCache(tmp_path / "empty", name="primary")
        secondary, backend = sim_cache(tmp_path / "full", "secondary")
        backend.fail("get", times=1)  # one transient timeout mid-run
        group = MirrorGroup([primary, secondary], retries=2, backoff=0)
        obs.reset()
        target = Installer(tmp_path / "store", repo, caches=[group],
                           fetch_jobs=2)
        report = target.install(spec)
        assert not report.built
        assert len(report.extracted) == 4
        assert metrics.counter("buildcache.mirror_fallbacks").value > 0
        assert metrics.counter("buildcache.mirror_hits.secondary").value == 4

    def test_byte_identical_to_single_cache_install(self, repo, spec, tmp_path):
        """The acceptance criterion: payload only in mirror B installs a
        byte-identical tree to the single-cache path."""
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        shutil.copytree(tmp_path / "B", tmp_path / "A")
        shutil.rmtree(tmp_path / "A" / "blobs")
        a = BuildCache(tmp_path / "A", name="A")
        b = BuildCache(tmp_path / "B", name="B")
        group = MirrorGroup([a, b], backoff=0)

        # equal-length store names keep padding-relocation comparable
        single = Installer(tmp_path / "s1", repo,
                           caches=[BuildCache(tmp_path / "B", name="B1")])
        single.install(spec)
        obs.reset()
        mirrored = Installer(tmp_path / "s2", repo, caches=[group],
                             fetch_jobs=2)
        mirrored.install(spec)
        assert tree_digest(tmp_path / "s1") == tree_digest(tmp_path / "s2")
        assert metrics.counter("buildcache.mirror_fallbacks").value > 0

    def test_concretizer_reuses_from_union(self, repo, spec, tmp_path):
        """Specs only indexed by the secondary mirror still count as
        reusable for concretization."""
        cache = make_cache(repo, spec, tmp_path / "full", "full",
                           tmp_path / "seed")
        empty = BuildCache(tmp_path / "empty", name="empty")
        group = MirrorGroup([empty, cache], backoff=0)
        result = Concretizer(
            repo, reusable_specs=group.all_specs()
        ).solve(["example@1.1.0 ^mpich@3.4.3"])
        assert result.roots[0].dag_hash() == spec.dag_hash()


class TestMirrorCLI:
    def test_install_with_mirror_flags(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        shutil.copytree(tmp_path / "B", tmp_path / "A")
        shutil.rmtree(tmp_path / "A" / "blobs")
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--mirror", str(tmp_path / "A"),
            "--mirror", str(tmp_path / "B"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "extracted=4" in out

    def test_mirrors_file(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        mirrors = tmp_path / "mirrors.txt"
        mirrors.write_text(
            "# the public mirror, read-only\n"
            f"pub={tmp_path / 'B'}:ro\n"
        )
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--cache", str(tmp_path / "scratch"),
            "--mirrors-file", str(mirrors),
        ])
        assert rc == 0
        assert "extracted=4" in capsys.readouterr().out

    def test_profile_shows_mirror_counters(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        shutil.copytree(tmp_path / "B", tmp_path / "A")
        shutil.rmtree(tmp_path / "A" / "blobs")
        obs.reset()
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--mirror", str(tmp_path / "A"),
            "--mirror", str(tmp_path / "B"),
            "--profile",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "buildcache.mirror_fallbacks" in out
        assert "buildcache.mirror_hits.B" in out
