"""Mirror-group tests: ordering, fallback, retries, the merged union
view, and the install path."""

import hashlib
import os
import shutil

import pytest

import repro.obs as obs
from repro.buildcache import (
    BuildCache,
    BuildCacheError,
    LocalFSBackend,
    MirrorGroup,
    SimulatedRemoteBackend,
    TransientBackendError,
)
from repro.cli import main
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.obs import metrics
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def spec(repo):
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


def make_cache(repo, spec, root, name, seed_dir):
    """A populated buildcache holding ``spec``'s full stack."""
    source = Installer(seed_dir, repo)
    source.install(spec)
    cache = BuildCache(root, name=name)
    source.push_to_cache(cache, spec)
    cache.save_index()
    return cache


def sim_cache(root, name, **kwargs):
    """A cache over an existing directory wrapped as a flaky remote."""
    backend = SimulatedRemoteBackend(LocalFSBackend(root), name=name, **kwargs)
    return BuildCache(backend=backend, name=name), backend


def tree_digest(root) -> dict:
    digest = {}
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        text = path.read_text().replace(str(root), "@ROOT@")
        digest[str(path.relative_to(root))] = text
    return digest


class TestMirrorSemantics:
    def test_first_hit_wins_ordering(self, repo, spec, tmp_path):
        """Both mirrors hold the hash; the first one serves it."""
        first = make_cache(repo, spec, tmp_path / "first", "first",
                           tmp_path / "seed")
        shutil.copytree(tmp_path / "first", tmp_path / "second")
        second = BuildCache(tmp_path / "second", name="second")
        group = MirrorGroup([first, second], backoff=0)
        obs.reset()
        payload = group.fetch(spec.dag_hash())
        assert payload.source == "first"
        assert metrics.counter("buildcache.mirror_hits.first").value == 1
        assert metrics.counter("buildcache.mirror_hits.second").value == 0

    def test_index_hit_payload_missing_falls_through(self, repo, spec, tmp_path):
        """Mirror A indexes the spec but lost the blob (the stale-mirror
        pathology): the group degrades to B and bumps the fallback
        counter."""
        make_cache(repo, spec, tmp_path / "a", "a", tmp_path / "seed")
        shutil.copytree(tmp_path / "a", tmp_path / "b")
        shutil.rmtree(tmp_path / "a" / "blobs")
        a = BuildCache(tmp_path / "a", name="a")
        b = BuildCache(tmp_path / "b", name="b")
        group = MirrorGroup([a, b], backoff=0)
        h = spec.dag_hash()
        assert h in group  # the index still advertises it
        obs.reset()
        payload = group.fetch(h)
        assert payload.source == "b"
        assert metrics.counter("buildcache.mirror_fallbacks").value > 0
        assert metrics.counter("buildcache.mirror_fallbacks.a").value > 0
        assert metrics.counter("buildcache.mirror_hits.b").value == 1

    def test_read_only_mirror_rejects_push(self, repo, spec, tmp_path):
        primary = BuildCache(
            backend=LocalFSBackend(tmp_path / "ro", writable=False),
            name="ro",
        )
        group = MirrorGroup([primary], backoff=0)
        seed = Installer(tmp_path / "seed", repo)
        seed.install(spec)
        with pytest.raises(BuildCacheError, match="read-only"):
            group.push(spec, seed.database.prefix_of(spec))

    def test_all_specs_union_dedupes_preferring_first(self, repo, spec, tmp_path):
        """A hash in both mirrors appears once; hashes unique to either
        mirror all appear."""
        first = make_cache(repo, spec, tmp_path / "first", "first",
                           tmp_path / "seed1")
        shutil.copytree(tmp_path / "first", tmp_path / "second")
        second = BuildCache(tmp_path / "second", name="second")
        # give the second mirror one extra spec the first lacks
        extra = Concretizer(repo).solve(["example@1.1.0 ^openmpi"]).roots[0]
        seed2 = Installer(tmp_path / "seed2", repo)
        seed2.install(extra)
        seed2.push_to_cache(second, extra)
        second.save_index()

        group = MirrorGroup([first, second], backoff=0)
        specs = group.all_specs()
        hashes = [s.dag_hash() for s in specs]
        assert len(hashes) == len(set(hashes)), "duplicate hash in union"
        assert set(hashes) == (
            {n.dag_hash() for n in spec.traverse()}
            | {n.dag_hash() for n in extra.traverse()}
        )
        assert len(group) == len(hashes)

    def test_push_goes_to_primary_only(self, repo, spec, tmp_path):
        primary = BuildCache(tmp_path / "primary", name="primary")
        secondary = BuildCache(tmp_path / "secondary", name="secondary")
        group = MirrorGroup([primary, secondary], backoff=0)
        seed = Installer(tmp_path / "seed", repo)
        seed.install(spec)
        for node in spec.traverse(order="post"):
            group.push(node, seed.database.prefix_of(node))
        group.save_index()
        assert len(primary) == 4
        assert len(secondary) == 0

    def test_duplicate_labels_rejected(self, tmp_path):
        a = BuildCache(tmp_path / "x" / "cache", name="same")
        b = BuildCache(tmp_path / "y" / "cache", name="same")
        with pytest.raises(BuildCacheError, match="unique"):
            MirrorGroup([a, b])

    def test_empty_group_rejected(self):
        with pytest.raises(BuildCacheError, match="at least one"):
            MirrorGroup([])


requires_v3_writes = pytest.mark.skipif(
    os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1"
    or os.environ.get("REPRO_BUILDCACHE_WRITE_V2") == "1",
    reason="asserts v3 summary-sidecar behaviour",
)

requires_sharded_writes = pytest.mark.skipif(
    os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1",
    reason="v1 monoliths have no manifest for refresh() to diff",
)


def absent_hash(i: int) -> str:
    return hashlib.sha256(f"nowhere-{i}".encode()).hexdigest()[:32]


class TestMergedView:
    @requires_v3_writes
    def test_cold_union_reads_no_shards(self, repo, spec, tmp_path):
        """The 741 ms fix, observed at the op level: a cold group's
        union comes from one summary-sidecar read per mirror — no
        shard documents, no spec documents."""
        make_cache(repo, spec, tmp_path / "m", "m", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "remote")
        group = MirrorGroup([cache], backoff=0)
        baseline = dict(backend.op_counts)
        assert len(group) == 4
        delta = backend.op_counts.get("get", 0) - baseline.get("get", 0)
        assert delta <= 2, f"union cost {delta} reads (expected sidecar only)"

    def test_negative_lookups_cost_zero_remote_ops(self, repo, spec, tmp_path):
        """Acceptance criterion: once the view is warm, misses (and
        hits) against the union are pure set lookups."""
        make_cache(repo, spec, tmp_path / "m", "m", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "remote")
        group = MirrorGroup([cache], backoff=0)
        assert len(group) == 4  # warm the view
        snapshot = dict(backend.op_counts)
        for i in range(100):
            assert absent_hash(i) not in group
        assert spec.dag_hash() in group
        assert len(group) == 4
        assert list(group) == sorted(group.spec_hash_set())
        assert backend.op_counts == snapshot, "membership hit the backend"

    def test_unchanged_mirror_never_rewalked(self, repo, spec, tmp_path):
        """A push to the primary moves only the primary's token: the
        secondary's hash set is reused without a single backend op."""
        make_cache(repo, spec, tmp_path / "pub", "pub", tmp_path / "seed")
        remote, backend = sim_cache(tmp_path / "pub", "remote")
        primary = BuildCache(tmp_path / "scratch", name="scratch")
        group = MirrorGroup([primary, remote], backoff=0)
        assert len(group) == 4  # warm
        snapshot = dict(backend.op_counts)

        extra = Concretizer(repo).solve(["example@1.1.0 ^openmpi"]).roots[0]
        seed = Installer(tmp_path / "seed2", repo)
        seed.install(extra)
        for node in extra.traverse(order="post"):
            group.push(node, seed.database.prefix_of(node))
        expected = (
            {n.dag_hash() for n in spec.traverse()}
            | {n.dag_hash() for n in extra.traverse()}
        )
        assert set(group) == expected
        assert backend.op_counts == snapshot, "secondary was re-walked"

    def test_len_correct_after_push_without_save_index(self, repo, spec, tmp_path):
        """The satellite regression: a push that has not been
        ``save_index``-ed must already show up in ``len(group)`` —
        the journal overlay is part of the primary's state token."""
        full = make_cache(repo, spec, tmp_path / "full", "full",
                          tmp_path / "seed")
        primary = BuildCache(tmp_path / "primary", name="primary")
        group = MirrorGroup([primary, full], backoff=0)
        assert len(group) == 4

        extra = Concretizer(repo).solve(["example@1.1.0 ^openmpi"]).roots[0]
        seed = Installer(tmp_path / "seed2", repo)
        seed.install(extra)
        for node in extra.traverse(order="post"):
            group.push(node, seed.database.prefix_of(node))
        expected = (
            {n.dag_hash() for n in spec.traverse()}
            | {n.dag_hash() for n in extra.traverse()}
        )
        # no save_index yet: the union must already be exact
        assert len(group) == len(expected)
        assert set(group) == expected
        group.save_index()
        assert len(group) == len(expected)

    @requires_sharded_writes
    def test_refresh_picks_up_another_writers_save(self, repo, spec, tmp_path):
        """A foreign process saves into a mirror: ``group.refresh()``
        delta-reloads it and the union catches up without a reopen."""
        make_cache(repo, spec, tmp_path / "m", "m", tmp_path / "seed")
        reader = BuildCache(tmp_path / "m", name="m")
        group = MirrorGroup([reader], backoff=0)
        assert len(group) == 4

        writer = BuildCache(tmp_path / "m", name="writer")
        extra = Concretizer(repo).solve(["example@1.1.0 ^openmpi"]).roots[0]
        seed = Installer(tmp_path / "seed2", repo)
        seed.install(extra)
        seed.push_to_cache(writer, extra)
        writer.save_index()

        assert len(group) == 4  # stale until asked to refresh
        group.refresh()
        expected = (
            {n.dag_hash() for n in spec.traverse()}
            | {n.dag_hash() for n in extra.traverse()}
        )
        assert set(group) == expected

    @requires_sharded_writes  # a v1 monolith is fully parsed at open
    def test_degraded_mirror_recovers_on_next_view(self, repo, spec, tmp_path):
        """Enumeration failure leaves the mirror out of the view (the
        union degrades, never lies); once the backend heals, the next
        lookup re-attempts and the union is whole again."""
        make_cache(repo, spec, tmp_path / "m", "m", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "flaky")
        group = MirrorGroup([cache], retries=0, backoff=0)
        backend.fail("get", times=50)
        obs.reset()
        assert absent_hash(0) not in group  # degraded, not an error
        assert metrics.counter("buildcache.mirror_fallbacks.flaky").value > 0
        backend._faults.clear()  # the remote heals
        assert len(group) == 4
        assert spec.dag_hash() in group


class TestRetryBackoffClock:
    """The ``_with_retries`` audit, pinned with a fake clock."""

    def _group(self, tmp_path, retries):
        sleeps = []
        cache = BuildCache(tmp_path / "m", name="m")
        group = MirrorGroup(
            [cache], retries=retries, backoff=0.05, sleep=sleeps.append
        )
        return group, cache, sleeps

    def test_backoff_doubles_between_attempts(self, tmp_path):
        group, cache, sleeps = self._group(tmp_path, retries=3)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) <= 2:
                raise TransientBackendError("timeout")
            return "ok"

        obs.reset()
        assert group._with_retries(cache, flaky) == "ok"
        assert sleeps == [0.05, 0.1]
        assert metrics.counter("buildcache.mirror_retries.m").value == 2

    def test_exhaustion_sleeps_and_counts_retries_not_attempts(self, tmp_path):
        """No sleep after the final failed attempt, and the retry
        counter counts *retries* (2), not attempts (3) — exhaustion is
        accounted by the caller's fallback counter, not double-counted
        here."""
        group, cache, sleeps = self._group(tmp_path, retries=2)
        calls = []

        def down():
            calls.append(1)
            raise TransientBackendError("down")

        obs.reset()
        with pytest.raises(TransientBackendError):
            group._with_retries(cache, down)
        assert len(calls) == 3  # retries + 1 attempts, bounded
        assert sleeps == [0.05, 0.1], "slept after the final failure"
        assert metrics.counter("buildcache.mirror_retries.m").value == 2
        assert metrics.counter("buildcache.mirror_retries").value == 2

    def test_zero_retries_fails_fast_without_sleeping(self, tmp_path):
        group, cache, sleeps = self._group(tmp_path, retries=0)
        obs.reset()
        with pytest.raises(TransientBackendError):
            group._with_retries(
                cache, lambda: (_ for _ in ()).throw(TransientBackendError("x"))
            )
        assert sleeps == []
        assert metrics.counter("buildcache.mirror_retries.m").value == 0

    def test_fetch_exhaustion_counts_fallback_once(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "flaky")
        group = MirrorGroup([cache], retries=1, backoff=0)
        group._merged_view()  # warm the view before injecting faults
        backend.fail("get", times=50)
        obs.reset()
        with pytest.raises(BuildCacheError, match="no mirror"):
            group.fetch(spec.dag_hash())
        assert metrics.counter("buildcache.mirror_fallbacks.flaky").value == 1
        assert metrics.counter("buildcache.mirror_retries.flaky").value == 1


class TestRetryAndDegrade:
    def test_transient_fault_is_retried_on_same_mirror(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "flaky")
        group = MirrorGroup([cache], retries=2, backoff=0)
        h = spec.dag_hash()
        backend.fail("get", times=1)  # first meta read times out
        obs.reset()
        payload = group.fetch(h)
        assert payload.source == "flaky"
        assert metrics.counter("buildcache.mirror_retries.flaky").value >= 1
        assert metrics.counter("buildcache.mirror_hits.flaky").value == 1

    def test_exhausted_retries_degrade_to_next_mirror(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        flaky, backend = sim_cache(tmp_path / "m", "flaky")
        shutil.copytree(tmp_path / "m", tmp_path / "good")
        good = BuildCache(tmp_path / "good", name="good")
        group = MirrorGroup([flaky, good], retries=1, backoff=0)
        backend.fail("get", times=50)  # more faults than retries
        obs.reset()
        payload = group.fetch(spec.dag_hash())
        assert payload.source == "good"
        assert metrics.counter("buildcache.mirror_fallbacks.flaky").value > 0

    def test_every_mirror_failing_raises(self, repo, spec, tmp_path):
        make_cache(repo, spec, tmp_path / "m", "seedcache", tmp_path / "seed")
        cache, backend = sim_cache(tmp_path / "m", "flaky")
        group = MirrorGroup([cache], retries=0, backoff=0)
        backend.fail("get", times=50)
        with pytest.raises(BuildCacheError, match="no mirror"):
            group.fetch(spec.dag_hash())

    def test_unknown_hash_raises_after_all_misses(self, repo, spec, tmp_path):
        cache = make_cache(repo, spec, tmp_path / "m", "m", tmp_path / "seed")
        group = MirrorGroup([cache], backoff=0)
        with pytest.raises(BuildCacheError, match="no mirror"):
            group.fetch("deadbeef" * 4)


class TestMirrorInstallPath:
    def test_install_through_flaky_two_mirror_group(self, repo, spec, tmp_path):
        """The CI mirror-smoke scenario: a primary missing its payloads
        plus a flaky-but-complete secondary still installs everything,
        through the pipelined fetch path."""
        make_cache(repo, spec, tmp_path / "full", "full", tmp_path / "seed")
        shutil.copytree(tmp_path / "full", tmp_path / "empty")
        shutil.rmtree(tmp_path / "empty" / "blobs")
        primary = BuildCache(tmp_path / "empty", name="primary")
        secondary, backend = sim_cache(tmp_path / "full", "secondary")
        backend.fail("get", times=1)  # one transient timeout mid-run
        group = MirrorGroup([primary, secondary], retries=2, backoff=0)
        obs.reset()
        target = Installer(tmp_path / "store", repo, caches=[group],
                           fetch_jobs=2)
        report = target.install(spec)
        assert not report.built
        assert len(report.extracted) == 4
        assert metrics.counter("buildcache.mirror_fallbacks").value > 0
        assert metrics.counter("buildcache.mirror_hits.secondary").value == 4

    def test_byte_identical_to_single_cache_install(self, repo, spec, tmp_path):
        """The acceptance criterion: payload only in mirror B installs a
        byte-identical tree to the single-cache path."""
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        shutil.copytree(tmp_path / "B", tmp_path / "A")
        shutil.rmtree(tmp_path / "A" / "blobs")
        a = BuildCache(tmp_path / "A", name="A")
        b = BuildCache(tmp_path / "B", name="B")
        group = MirrorGroup([a, b], backoff=0)

        # equal-length store names keep padding-relocation comparable
        single = Installer(tmp_path / "s1", repo,
                           caches=[BuildCache(tmp_path / "B", name="B1")])
        single.install(spec)
        obs.reset()
        mirrored = Installer(tmp_path / "s2", repo, caches=[group],
                             fetch_jobs=2)
        mirrored.install(spec)
        assert tree_digest(tmp_path / "s1") == tree_digest(tmp_path / "s2")
        assert metrics.counter("buildcache.mirror_fallbacks").value > 0

    @requires_v3_writes
    def test_install_identical_with_summaries_vs_write_v2(
        self, repo, spec, tmp_path, monkeypatch
    ):
        """Format parity: a two-mirror install through v3 summaries and
        through digest-less v2 indexes produces byte-identical trees —
        the summary layer changes lookup cost, never results."""
        def build_group(tag):
            make_cache(repo, spec, tmp_path / f"B{tag}", "B",
                       tmp_path / f"seed{tag}")
            shutil.copytree(tmp_path / f"B{tag}", tmp_path / f"A{tag}")
            shutil.rmtree(tmp_path / f"A{tag}" / "blobs")
            a = BuildCache(tmp_path / f"A{tag}", name="A")
            b = BuildCache(tmp_path / f"B{tag}", name="B")
            return MirrorGroup([a, b], backoff=0)

        group3 = build_group("3")
        Installer(tmp_path / "s3", repo, caches=[group3], fetch_jobs=2
                  ).install(spec)

        monkeypatch.setenv("REPRO_BUILDCACHE_WRITE_V2", "1")
        group2 = build_group("2")
        assert not (tmp_path / "B2" / "index.sum.json").exists()
        Installer(tmp_path / "s2", repo, caches=[group2], fetch_jobs=2
                  ).install(spec)

        assert tree_digest(tmp_path / "s3") == tree_digest(tmp_path / "s2")

    def test_concretizer_reuses_from_union(self, repo, spec, tmp_path):
        """Specs only indexed by the secondary mirror still count as
        reusable for concretization."""
        cache = make_cache(repo, spec, tmp_path / "full", "full",
                           tmp_path / "seed")
        empty = BuildCache(tmp_path / "empty", name="empty")
        group = MirrorGroup([empty, cache], backoff=0)
        result = Concretizer(
            repo, reusable_specs=group.all_specs()
        ).solve(["example@1.1.0 ^mpich@3.4.3"])
        assert result.roots[0].dag_hash() == spec.dag_hash()


class TestMirrorCLI:
    def test_install_with_mirror_flags(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        shutil.copytree(tmp_path / "B", tmp_path / "A")
        shutil.rmtree(tmp_path / "A" / "blobs")
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--mirror", str(tmp_path / "A"),
            "--mirror", str(tmp_path / "B"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "extracted=4" in out

    def test_mirrors_file(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        mirrors = tmp_path / "mirrors.txt"
        mirrors.write_text(
            "# the public mirror, read-only\n"
            f"pub={tmp_path / 'B'}:ro\n"
        )
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--cache", str(tmp_path / "scratch"),
            "--mirrors-file", str(mirrors),
        ])
        assert rc == 0
        assert "extracted=4" in capsys.readouterr().out

    def test_missing_mirrors_file_exits_2(self, tmp_path, capsys):
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirrors-file", str(tmp_path / "does-not-exist.txt"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: cannot read mirrors file" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_unreadable_mirrors_file_exits_2(self, tmp_path, capsys):
        unreadable = tmp_path / "mirrors.txt"
        unreadable.write_text("pub=/somewhere\n")
        unreadable.chmod(0)
        if os.access(unreadable, os.R_OK):
            pytest.skip("running as a user that ignores file modes")
        try:
            rc = main([
                "--repo", "mock", "install", "example",
                "--store", str(tmp_path / "store"),
                "--mirrors-file", str(unreadable),
            ])
        finally:
            unreadable.chmod(0o644)
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: cannot read mirrors file" in err
        assert "Traceback" not in err

    def test_duplicate_explicit_labels_exit_2(self, tmp_path, capsys):
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirror", f"pub={tmp_path / 'a'}",
            "--mirror", f"pub={tmp_path / 'b'}",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: duplicate mirror label 'pub'" in err
        assert "Traceback" not in err

    def test_duplicate_labels_in_mirrors_file_exit_2(self, tmp_path, capsys):
        mirrors = tmp_path / "mirrors.txt"
        mirrors.write_text(
            f"pub={tmp_path / 'a'}\n"
            f"pub={tmp_path / 'b'}:ro\n"
        )
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirrors-file", str(mirrors),
        ])
        assert rc == 2
        assert "duplicate mirror label 'pub'" in capsys.readouterr().err

    def test_derived_basename_collision_is_uniquified_not_fatal(
        self, repo, spec, tmp_path
    ):
        """Two mirrors whose *directories* are both named ``cache`` are
        legitimate — only explicit NAME= duplicates are user error."""
        make_cache(repo, spec, tmp_path / "x" / "cache", "m", tmp_path / "seed")
        shutil.copytree(tmp_path / "x", tmp_path / "y")
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--mirror", str(tmp_path / "x" / "cache"),
            "--mirror", str(tmp_path / "y" / "cache"),
        ])
        assert rc == 0

    def test_corrupt_index_manifest_exits_2(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()
        (corrupt / "index.json").write_text("{not json")
        rc = main([
            "--repo", "mock", "install", "example",
            "--store", str(tmp_path / "store"),
            "--mirror", f"bad={corrupt}",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: cannot open mirror bad" in err
        assert "corrupt buildcache index" in err
        assert "Traceback" not in err

    def test_profile_shows_mirror_counters(self, repo, spec, tmp_path, capsys):
        make_cache(repo, spec, tmp_path / "B", "B", tmp_path / "seed")
        shutil.copytree(tmp_path / "B", tmp_path / "A")
        shutil.rmtree(tmp_path / "A" / "blobs")
        obs.reset()
        rc = main([
            "--repo", "mock", "install", "example@1.1.0 ^mpich@3.4.3",
            "--store", str(tmp_path / "store"),
            "--mirror", str(tmp_path / "A"),
            "--mirror", str(tmp_path / "B"),
            "--profile",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "buildcache.mirror_fallbacks" in out
        assert "buildcache.mirror_hits.B" in out
