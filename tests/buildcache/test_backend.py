"""Storage-backend tests: durable writes, atomic publish, fault simulation."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.buildcache import (
    BackendError,
    LocalFSBackend,
    MissingBlobError,
    ReadOnlyBackendError,
    SimulatedRemoteBackend,
    TransientBackendError,
)
from repro.buildcache.backend import fsync_write


class TestLocalFSBackend:
    def test_put_get_round_trip(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        backend.put("index.d/ab.json", b"{}")
        assert backend.get("index.d/ab.json") == b"{}"
        assert backend.exists("index.d/ab.json")
        assert not backend.exists("index.d/cd.json")

    def test_get_missing_raises_missing_blob(self, tmp_path):
        with pytest.raises(MissingBlobError, match="no blob"):
            LocalFSBackend(tmp_path).get("nope.json")

    def test_put_leaves_no_tmp_droppings(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        backend.put("meta.json", b"one")
        backend.put("meta.json", b"two")
        assert backend.get("meta.json") == b"two"
        assert [p.name for p in tmp_path.iterdir()] == ["meta.json"]

    def test_key_escape_is_rejected(self, tmp_path):
        backend = LocalFSBackend(tmp_path / "cache")
        with pytest.raises(BackendError, match="escapes"):
            backend.get("../outside.txt")

    def test_delete_is_idempotent(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        backend.put("journal.jsonl", b"line\n")
        backend.delete("journal.jsonl")
        backend.delete("journal.jsonl")  # missing key: not an error
        assert not backend.exists("journal.jsonl")

    def test_append_line_accumulates(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        backend.append_line("journal.jsonl", b"one\n")
        backend.append_line("journal.jsonl", b"two\n")
        assert backend.get("journal.jsonl") == b"one\ntwo\n"

    def test_list_tree_includes_empty_dirs(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        backend.publish_tree(
            "blobs/abc",
            {"files/lib/libz.so": b"elf", "meta.json": b"{}"},
            dirs=["files", "files/lib", "files/include"],
        )
        files, dirs = backend.list_tree("blobs/abc")
        assert files == ["files/lib/libz.so", "meta.json"]
        assert "files/include" in dirs

    def test_list_tree_missing_prefix(self, tmp_path):
        with pytest.raises(MissingBlobError, match="no tree"):
            LocalFSBackend(tmp_path).list_tree("blobs/nope")

    def test_read_only_rejects_writes(self, tmp_path):
        backend = LocalFSBackend(tmp_path, writable=False)
        for op in (
            lambda: backend.put("k", b"v"),
            lambda: backend.delete("k"),
            lambda: backend.append_line("k", b"v\n"),
            lambda: backend.publish_tree("t", {"f": b"v"}),
        ):
            with pytest.raises(ReadOnlyBackendError, match="read-only"):
                op()

    def test_fsync_write_replaces_atomically(self, tmp_path):
        target = tmp_path / "shard.json"
        fsync_write(target, b"old")
        fsync_write(target, b"new")
        assert target.read_bytes() == b"new"
        assert not target.with_name("shard.json.tmp").exists()


class TestPublishTree:
    def test_replaces_previous_tree_completely(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        backend.publish_tree("blobs/h", {"files/a": b"1", "stale.json": b"x"})
        backend.publish_tree("blobs/h", {"files/b": b"2"})
        files, _ = backend.list_tree("blobs/h")
        # nothing from the first publish survives (no stale signatures)
        assert files == ["files/b"]

    def test_fault_mid_publish_preserves_old_tree(self, tmp_path, monkeypatch):
        """The torn-push regression: a copy dying mid-publish must leave
        the previous tree fully intact — old-entry-or-new-entry."""
        backend = LocalFSBackend(tmp_path)
        backend.publish_tree("blobs/h", {"files/a": b"old", "meta.json": b"m1"})

        real_stage = LocalFSBackend._stage_file
        calls = {"n": 0}

        def flaky_stage(self, path, data):
            calls["n"] += 1
            if calls["n"] == 2:  # die after the first staged file
                raise OSError("disk full")
            real_stage(self, path, data)

        monkeypatch.setattr(LocalFSBackend, "_stage_file", flaky_stage)
        with pytest.raises(OSError, match="disk full"):
            backend.publish_tree(
                "blobs/h", {"files/a": b"new", "meta.json": b"m2"}
            )
        monkeypatch.undo()

        files, _ = backend.list_tree("blobs/h")
        assert sorted(files) == ["files/a", "meta.json"]
        assert backend.get("blobs/h/files/a") == b"old"
        assert backend.get("blobs/h/meta.json") == b"m1"
        # no staging droppings left behind
        leftovers = [p.name for p in (tmp_path / "blobs").iterdir()]
        assert leftovers == ["h"]

        # and the re-push goes through cleanly
        backend.publish_tree("blobs/h", {"files/a": b"new", "meta.json": b"m2"})
        assert backend.get("blobs/h/files/a") == b"new"

    def test_crash_between_rename_and_swap_heals_on_reentry(self, tmp_path):
        """Simulate the one crash window of the swap: the old tree was
        moved aside but the new one never landed."""
        backend = LocalFSBackend(tmp_path)
        backend.publish_tree("blobs/h", {"files/a": b"old"})
        (tmp_path / "blobs" / "h").rename(tmp_path / "blobs" / "h.publish.old")
        # reader-visible state is "entry missing"; the next publish heals
        backend.publish_tree("blobs/h", {"files/a": b"new"})
        assert backend.get("blobs/h/files/a") == b"new"
        assert not (tmp_path / "blobs" / "h.publish.old").exists()


class TestSimulatedRemoteBackend:
    def make(self, tmp_path, **kwargs):
        inner = LocalFSBackend(tmp_path, name="inner")
        return SimulatedRemoteBackend(inner, name="sim", **kwargs)

    def test_delegates_and_counts_ops(self, tmp_path):
        sim = self.make(tmp_path)
        sim.put("k", b"v")
        assert sim.get("k") == b"v"
        assert sim.op_counts == {"put": 1, "get": 1}

    def test_fail_queue_raises_then_recovers(self, tmp_path):
        sim = self.make(tmp_path)
        sim.put("k", b"v")
        sim.fail("get", times=2)
        for _ in range(2):
            with pytest.raises(TransientBackendError, match="timeout"):
                sim.get("k")
        assert sim.get("k") == b"v"  # faults exhausted

    def test_fail_accepts_error_class(self, tmp_path):
        sim = self.make(tmp_path)
        sim.fail("get", error=MissingBlobError)
        with pytest.raises(MissingBlobError):
            sim.get("k")

    def test_drop_hides_present_blobs(self, tmp_path):
        sim = self.make(tmp_path)
        sim.put("blobs/h/files/a", b"v")
        sim.drop("blobs/h")
        assert not sim.exists("blobs/h/files/a")
        assert not sim.tree_exists("blobs/h/files")
        with pytest.raises(MissingBlobError):
            sim.get("blobs/h/files/a")

    def test_read_only_mode(self, tmp_path):
        sim = self.make(tmp_path, read_only=True)
        assert not sim.writable
        with pytest.raises(ReadOnlyBackendError, match="read-only"):
            sim.put("k", b"v")

    def test_latency_is_applied(self, tmp_path):
        import time

        sim = self.make(tmp_path, latency_per_op={"get": 0.01})
        sim.put("k", b"v")
        start = time.monotonic()
        sim.get("k")
        assert time.monotonic() - start >= 0.01


class TestAppendDurability:
    def test_first_append_survives_hard_process_kill(self, tmp_path):
        """The journal-creation durability gap: ``append_line`` fsyncs
        the file, but when the append *creates* the journal the parent
        directory's entry table must be fsynced too — otherwise a crash
        right after the first push can lose the whole file.  Kill the
        appending process with ``os._exit`` (no atexit, no interpreter
        shutdown, nothing) and the line must still be there."""
        script = f"""
import os
from repro.buildcache import LocalFSBackend

backend = LocalFSBackend({str(tmp_path / "cache")!r})
backend.append_line("journal.jsonl", b'{{"op": "push"}}\\n')
os._exit(9)  # die immediately after the *creating* append
"""
        env = dict(os.environ)
        src_dir = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src_dir}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 9, proc.stderr
        journal = tmp_path / "cache" / "journal.jsonl"
        assert journal.exists()
        assert journal.read_bytes() == b'{"op": "push"}\n'
        # and the reopened backend reads it back through the contract
        assert LocalFSBackend(tmp_path / "cache").get("journal.jsonl") == (
            b'{"op": "push"}\n'
        )
