"""Summary tests: the no-false-negative contract, v3 on-disk shape,
digest gating, delta refresh, and the v2 compat knob."""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.buildcache import (
    BloomSummary,
    BuildCache,
    ShardedIndex,
    SortedHashSummary,
    build_summary,
    summary_from_document,
)
from repro.buildcache.index import SUMMARY_NAME
from repro.obs import metrics, trace

requires_v3_writes = pytest.mark.skipif(
    os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1"
    or os.environ.get("REPRO_BUILDCACHE_WRITE_V2") == "1",
    reason="asserts the v3 digest/summary on-disk layout",
)

requires_sharded_writes = pytest.mark.skipif(
    os.environ.get("REPRO_BUILDCACHE_WRITE_V1") == "1",
    reason="the v1 compat leg saves monoliths, not sharded manifests",
)


def fake_hash(i, population="s") -> str:
    return hashlib.sha256(f"{population}-{i}".encode()).hexdigest()[:32]


def fake_doc(i: int, population="s"):
    h = fake_hash(i, population)
    return h, {"root": h, "nodes": [{"name": f"pkg{i}", "hash": h}]}


def populate(root, count, population="s"):
    index = ShardedIndex(root)
    docs = {}
    for i in range(count):
        h, doc = fake_doc(i, population)
        docs[h] = doc
    index.record_push(docs, {}, {})
    index.save()
    return docs


hex_hashes = st.text(alphabet="0123456789abcdef", min_size=4, max_size=32)


class TestSummaryStructures:
    """The structural contract, hammered: a summary may claim an absent
    hash is maybe-present (false positive), but it must NEVER claim a
    present hash is absent — that would hide cached specs."""

    @settings(max_examples=200, deadline=None)
    @given(
        members=st.sets(hex_hashes, max_size=60),
        probes=st.lists(hex_hashes, max_size=30),
        kind=st.sampled_from(["sorted", "bloom"]),
        bits=st.integers(min_value=1, max_value=24),
        num_hashes=st.integers(min_value=1, max_value=8),
        prefix_len=st.integers(min_value=0, max_value=8),
    )
    def test_never_a_false_negative(
        self, members, probes, kind, bits, num_hashes, prefix_len
    ):
        if kind == "bloom":
            summary = BloomSummary(
                members, bits_per_key=bits, num_hashes=num_hashes
            )
        else:
            summary = SortedHashSummary(members, prefix_len=prefix_len)
        # round-trip through the on-disk document as well: the summary
        # a *different process* reads answers identically
        restored = summary_from_document(
            json.loads(json.dumps(summary.to_document()))
        )
        for h in members:
            assert summary.contains(h), "false negative (in-memory)"
            assert restored.contains(h), "false negative (round-tripped)"
        for h in probes:
            assert summary.contains(h) == restored.contains(h)
            if not summary.contains(h):
                assert h not in members

    def test_sorted_full_is_exact_and_enumerable(self):
        members = {fake_hash(i) for i in range(50)}
        summary = SortedHashSummary(members)
        assert summary.enumerable
        assert set(summary.hashes()) == members
        assert not summary.contains(fake_hash(10_000))

    def test_truncated_sorted_is_not_enumerable(self):
        summary = SortedHashSummary({fake_hash(1)}, prefix_len=4)
        assert not summary.enumerable
        with pytest.raises(Exception, match="cannot enumerate"):
            summary.hashes()

    def test_unknown_document_key_is_rejected(self):
        # a corrupted key name (e.g. one flipped byte in "prefix_len")
        # must not silently fall back to a default that may equal the
        # real value — the mutation property in test_storage_audit
        # found exactly that gap
        doc = SortedHashSummary({fake_hash(1)}).to_document()
        doc[" refix_len"] = doc.pop("prefix_len")
        with pytest.raises(Exception, match="unknown key"):
            summary_from_document(doc)
        bloom = BloomSummary({fake_hash(1)}).to_document()
        bloom["coun t"] = bloom.pop("count")
        with pytest.raises(Exception, match="unknown key"):
            summary_from_document(bloom)

    def test_bloom_env_knobs_are_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY", "bloom")
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY_BITS", "16")
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY_HASHES", "6")
        summary = build_summary([fake_hash(i) for i in range(100)])
        assert isinstance(summary, BloomSummary)
        assert summary.m == 16 * 100
        assert summary.num_hashes == 6


class TestV3OnDisk:
    @requires_v3_writes
    def test_manifest_carries_digests_and_sidecar_matches(self, tmp_path):
        populate(tmp_path, 80)
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert manifest["version"] == 3
        assert manifest["digest"]
        for entry in manifest["shards"].values():
            assert entry["digest"]
        sidecar = json.loads((tmp_path / SUMMARY_NAME).read_text())
        assert sidecar["digest"] == manifest["digest"]
        assert set(sidecar["shards"]) == set(manifest["shards"])

    @requires_v3_writes
    def test_negative_lookup_reads_no_shard(self, tmp_path):
        docs = populate(tmp_path, 200)
        # probe an absent hash whose shard provably exists on disk —
        # otherwise the manifest alone answers and no summary is needed
        probe = next(iter(docs))[:2] + "f" * 30
        assert probe not in docs
        obs.reset()
        index = ShardedIndex(tmp_path)
        assert not index.has_spec(probe)
        assert "buildcache.shard_load" not in trace.phase_stats()
        assert metrics.counter("buildcache.summary_hits").value == 1

    @requires_v3_writes
    def test_bloom_false_positive_falls_through(self, tmp_path, monkeypatch):
        """A 1-bit-per-key bloom is mostly false positives: every probe
        must still come back correct via the authoritative shard read."""
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY", "bloom")
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY_BITS", "1")
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY_HASHES", "1")
        docs = populate(tmp_path, 400)
        obs.reset()
        index = ShardedIndex(tmp_path)
        # probe absent hashes into shards that exist on disk, before
        # loading anything — each answer comes from summary or shard
        # read, never from an already-parsed shard
        for i, h in enumerate(list(docs)[:200]):
            probe = h[:2] + "e" * 28 + f"{i:02x}"
            assert probe not in docs
            assert not index.has_spec(probe)
        counters = metrics.snapshot()["counters"]
        fp = counters.get("buildcache.summary_false_positives", 0)
        assert fp > 0, "a 1-bit 1-hash bloom with zero false positives is broken"
        assert counters.get("buildcache.summary_hits", 0) > 0
        # and no false negatives: every cached spec is still found
        for h in docs:
            assert index.has_spec(h)

    @requires_v3_writes
    def test_enumeration_reads_no_shard(self, tmp_path):
        docs = populate(tmp_path, 150)
        obs.reset()
        index = ShardedIndex(tmp_path)
        assert sorted(index.spec_hashes()) == sorted(docs)
        assert "buildcache.shard_load" not in trace.phase_stats()

    @requires_v3_writes
    def test_stale_sidecar_is_ignored(self, tmp_path):
        """A sidecar whose digest does not match the manifest (crash
        between the two writes, foreign writer) must not answer."""
        docs = populate(tmp_path, 40)
        sidecar = json.loads((tmp_path / SUMMARY_NAME).read_text())
        sidecar["digest"] = "0" * 64
        (tmp_path / SUMMARY_NAME).write_text(json.dumps(sidecar))
        obs.reset()
        index = ShardedIndex(tmp_path)
        for h in docs:
            assert index.has_spec(h)
        assert not index.has_spec(fake_hash(0, "absent"))
        assert metrics.counter("buildcache.summary_stale").value == 1
        assert metrics.counter("buildcache.summary_hits").value == 0

    @requires_v3_writes
    def test_corrupt_sidecar_degrades_not_crashes(self, tmp_path):
        docs = populate(tmp_path, 20)
        (tmp_path / SUMMARY_NAME).write_text("{torn")
        obs.reset()
        index = ShardedIndex(tmp_path)
        for h in docs:
            assert index.has_spec(h)
        assert metrics.counter("buildcache.summary_corrupt").value >= 1

    @requires_v3_writes
    def test_summary_off_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUILDCACHE_SUMMARY", "off")
        docs = populate(tmp_path, 30)
        assert not (tmp_path / SUMMARY_NAME).exists()
        index = ShardedIndex(tmp_path)
        assert index.spec_hash_set() is None  # nothing to prove it with
        for h in docs:
            assert index.has_spec(h)
        # ...until the lookups above parsed every shard
        assert index.spec_hash_set() == frozenset(docs)

    @requires_v3_writes
    def test_incremental_save_reuses_clean_summaries(self, tmp_path):
        """A one-shard push folds + summarizes one shard; the other
        shards' sidecar entries are reused without loading them."""
        populate(tmp_path, 200)
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(100000)
        obs.reset()
        index.record_push({h: doc}, {}, {})
        index.save()
        stats = trace.phase_stats()
        assert stats["buildcache.shard_save"]["count"] == 1
        # only the dirty shard was ever parsed during the save
        assert stats.get("buildcache.shard_load", {}).get("count", 0) <= 1
        sidecar = json.loads((tmp_path / SUMMARY_NAME).read_text())
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert sidecar["digest"] == manifest["digest"]
        reopened = ShardedIndex(tmp_path)
        hashes = reopened.spec_hash_set()
        assert hashes is not None and h in hashes


class TestStateTokenAndRefresh:
    def test_push_without_save_moves_the_token(self, tmp_path):
        populate(tmp_path, 10)
        index = ShardedIndex(tmp_path)
        before = index.state_token()
        h, doc = fake_doc(999)
        index.record_push({h: doc}, {}, {})
        assert index.state_token() != before

    @requires_v3_writes
    def test_refresh_is_noop_when_digest_unchanged(self, tmp_path):
        populate(tmp_path, 50)
        index = ShardedIndex(tmp_path)
        token = index.state_token()
        obs.reset()
        assert index.refresh() == 0
        assert index.state_token() == token
        assert "buildcache.shard_load" not in trace.phase_stats()

    @requires_v3_writes
    def test_refresh_invalidates_only_changed_shards(self, tmp_path):
        docs = populate(tmp_path, 200)
        reader = ShardedIndex(tmp_path)
        reader.load_all()  # a fully warmed reader
        # another writer lands one new spec and saves
        writer = ShardedIndex(tmp_path)
        h, doc = fake_doc(100001)
        writer.record_push({h: doc}, {}, {})
        writer.save()

        obs.reset()
        changed = reader.refresh()
        assert changed == 1  # exactly the shard the new hash lives in
        assert reader.get_spec(h) == doc
        assert reader.spec_count() == len(docs) + 1
        # only the invalidated shard was re-read
        assert trace.phase_stats()["buildcache.shard_load"]["count"] == 1

    @requires_v3_writes
    def test_refresh_keeps_journal_overlay(self, tmp_path):
        """A refresh must not lose this process's own unflushed pushes."""
        populate(tmp_path, 20)
        index = ShardedIndex(tmp_path)
        mine, mine_doc = fake_doc(500, "mine")
        index.record_push({mine: mine_doc}, {}, {})
        writer = ShardedIndex(tmp_path)
        theirs, theirs_doc = fake_doc(600, "theirs")
        writer.record_push({theirs: theirs_doc}, {}, {})
        writer.save()
        index.refresh()
        assert index.get_spec(mine) == mine_doc
        assert index.get_spec(theirs) == theirs_doc


class TestV2Compat:
    @requires_sharded_writes
    def test_write_v2_knob_round_trips(self, tmp_path, monkeypatch):
        """The CI v2-compat leg: saves emit digest-less v2 (no sidecar);
        reads work and the next default save migrates to v3."""
        monkeypatch.setenv("REPRO_BUILDCACHE_WRITE_V2", "1")
        docs = populate(tmp_path, 60)
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert manifest["version"] == 2
        assert "digest" not in manifest
        assert not (tmp_path / SUMMARY_NAME).exists()
        reopened = ShardedIndex(tmp_path)
        for h in docs:
            assert reopened.has_spec(h)
        assert not reopened.has_spec(fake_hash(3, "absent"))
        monkeypatch.delenv("REPRO_BUILDCACHE_WRITE_V2")
        reopened.save()  # migrate on save
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert manifest["version"] == 3
        assert manifest["digest"]
        sidecar = json.loads((tmp_path / SUMMARY_NAME).read_text())
        assert sidecar["digest"] == manifest["digest"]
        migrated = ShardedIndex(tmp_path)
        assert migrated.spec_hash_set() == frozenset(docs)

    @requires_sharded_writes
    def test_v2_cache_reads_v3_state_transparently(self, tmp_path, monkeypatch):
        """Indexes round-trip across the knob in both directions."""
        docs = populate(tmp_path, 30)  # whatever the env default emits
        monkeypatch.setenv("REPRO_BUILDCACHE_WRITE_V2", "1")
        index = ShardedIndex(tmp_path)
        h, doc = fake_doc(31)
        index.record_push({h: doc}, {}, {})
        index.save()
        reopened = ShardedIndex(tmp_path)
        assert reopened.spec_count() == len(docs) + 1
        assert not (tmp_path / SUMMARY_NAME).exists()


class TestBuildCacheSummaryIntegration:
    @requires_v3_writes
    def test_cache_negative_contains_reads_no_shard(self, tmp_path):
        index = ShardedIndex(tmp_path)
        docs = {}
        for i in range(50):
            h, doc = fake_doc(i)
            docs[h] = doc
        index.record_push(docs, {}, {})
        index.save()
        obs.reset()
        cache = BuildCache(tmp_path, name="c")
        assert fake_hash(1, "absent") not in cache
        assert "buildcache.shard_load" not in trace.phase_stats()
        assert cache.manifest_digest
        assert cache.spec_hash_set() == frozenset(docs)
