"""Cache-population tests: greedy concretization and spec generation."""

import pytest

from repro.buildcache import (
    BuildCacheError,
    external_spec,
    generate_cache_specs,
    greedy_concretize,
    vary_configurations,
)
from repro.repos.radiuss import RADIUSS_ROOTS, make_radiuss_repo


@pytest.fixture(scope="module")
def repo():
    return make_radiuss_repo()


PROVIDERS = [
    {"mpi": "mpich"},
    {"mpi": "mpich"},
    {"mpi": "openmpi"},
    {"mpi": "mvapich2"},
]


class TestGreedyConcretize:
    def test_result_is_concrete(self, repo):
        spec = greedy_concretize(repo, "hypre")
        assert spec.concrete
        for node in spec.traverse():
            assert node.concrete

    def test_version_override_is_honored(self, repo):
        spec = greedy_concretize(repo, "hypre", versions={"mpich": "3.4.3"})
        assert str(spec["mpich"].version) == "3.4.3"

    def test_hard_constraint_beats_soft_override(self, repo):
        """Overrides are soft: an override that violates a depends_on
        constraint is dropped, not an error."""
        pinned = greedy_concretize(repo, "hypre ^mpich@3.4.3")
        overridden = greedy_concretize(
            repo, "hypre ^mpich@3.4.3", versions={"mpich": "4.1"}
        )
        assert str(overridden["mpich"].version) == str(pinned["mpich"].version)

    def test_unknown_package_is_diagnosed(self, repo):
        with pytest.raises(Exception, match="no-such-package"):
            greedy_concretize(repo, "no-such-package")


class TestExternalSpec:
    def test_external_is_concrete_with_prefix(self, repo):
        cray = external_spec(repo, "cray-mpich", "/opt/cray/pe/mpich")
        assert cray.concrete
        assert cray.external
        assert cray.external_prefix == "/opt/cray/pe/mpich"

    @pytest.mark.parametrize("bad", ["", "   ", None])
    def test_empty_prefix_fails_at_creation(self, repo, bad):
        with pytest.raises(BuildCacheError, match="prefix"):
            external_spec(repo, "cray-mpich", bad)


class TestGenerateCacheSpecs:
    def test_all_roots_covered(self, repo):
        specs = generate_cache_specs(repo, RADIUSS_ROOTS)
        assert {s.name for s in specs} == {
            str(r).split("@")[0].split()[0] for r in RADIUSS_ROOTS
        }

    def test_consistent_overrides_shared_across_roots(self, repo):
        specs = generate_cache_specs(
            repo, RADIUSS_ROOTS, versions={"mpich": "3.4.3"}
        )
        mpich_hashes = {
            s["mpich"].dag_hash() for s in specs if "mpich" in [
                n.name for n in s.traverse()
            ]
        }
        assert len(mpich_hashes) == 1, "one consistent mpich across the stack"

    def test_deduplicates_by_dag_hash(self, repo):
        specs = generate_cache_specs(repo, ["hypre", "hypre"])
        assert len(specs) == 1


class TestVaryConfigurations:
    def test_same_seed_same_specs(self, repo):
        first = vary_configurations(
            repo, RADIUSS_ROOTS, count=12, seed=7, providers=PROVIDERS
        )
        second = vary_configurations(
            repo, RADIUSS_ROOTS, count=12, seed=7, providers=PROVIDERS
        )
        assert [s.dag_hash() for s in first] == [s.dag_hash() for s in second]

    def test_different_seeds_diverge(self, repo):
        a = vary_configurations(repo, RADIUSS_ROOTS, count=12, seed=1)
        b = vary_configurations(repo, RADIUSS_ROOTS, count=12, seed=2)
        assert [s.dag_hash() for s in a] != [s.dag_hash() for s in b]

    @pytest.mark.parametrize("count", [1, 10, 40])
    def test_exact_count_all_distinct(self, repo, count):
        specs = vary_configurations(
            repo, RADIUSS_ROOTS, count=count, seed=0, providers=PROVIDERS
        )
        hashes = [s.dag_hash() for s in specs]
        assert len(hashes) == count
        assert len(set(hashes)) == count

    def test_smaller_count_is_prefix_scaled(self, repo):
        """Growing the count only appends configurations; the shared
        prefix is stable (benchmarks vary scale without reshuffling)."""
        small = vary_configurations(repo, RADIUSS_ROOTS, count=5, seed=3)
        large = vary_configurations(repo, RADIUSS_ROOTS, count=20, seed=3)
        assert [s.dag_hash() for s in small] == [
            s.dag_hash() for s in large[:5]
        ]

    def test_negative_count_rejected(self, repo):
        with pytest.raises(BuildCacheError):
            vary_configurations(repo, RADIUSS_ROOTS, count=-1)

    def test_zero_roots_rejected(self, repo):
        with pytest.raises(BuildCacheError, match="zero roots"):
            vary_configurations(repo, [], count=3)
