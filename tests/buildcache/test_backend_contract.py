"""The storage-backend contract, enforced across every implementation.

One parameterized suite runs the byte-level contract — round trips,
error taxonomy, escape guard, read-only refusal, durable append,
atomic publish — against ``LocalFSBackend``, ``SimulatedRemoteBackend``
and ``HTTPBackend`` talking to a live ``buildcache serve`` process, so
a backend can't drift from the semantics MirrorGroup and BuildCache
were tested against.
"""

import pytest

from repro.buildcache import (
    BackendError,
    HTTPBackend,
    LocalFSBackend,
    MissingBlobError,
    ReadOnlyBackendError,
    SimulatedRemoteBackend,
)
from repro.buildcache.server import start_server


class Harness:
    """One backend implementation under test: builds writable and
    read-only handles over the *same* underlying storage, and knows how
    to make the next publish die mid-stage."""

    def __init__(self, kind, tmp_path):
        self.kind = kind
        self.root = tmp_path / "store"
        self.root.mkdir()
        self.server = None
        if kind == "http":
            self.server = start_server(self.root)

    def close(self):
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()

    def make(self, writable=True):
        if self.kind == "local":
            return LocalFSBackend(self.root, name="local", writable=writable)
        if self.kind == "sim":
            return SimulatedRemoteBackend(
                LocalFSBackend(self.root, name="inner"),
                name="sim",
                read_only=not writable,
            )
        return HTTPBackend(self.server.url, name="http", writable=writable)

    def break_mid_publish(self, backend, monkeypatch):
        """Arrange for the next publish_tree to die after staging one
        file, using each implementation's own staging seam."""
        calls = {"n": 0}
        if self.kind == "http":
            real = HTTPBackend._stage_part

            def flaky(self, prefix, txn, rel, data):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise OSError("wire cut")
                real(self, prefix, txn, rel, data)

            monkeypatch.setattr(HTTPBackend, "_stage_part", flaky)
        else:
            real = LocalFSBackend._stage_file

            def flaky(self, path, data):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise OSError("disk full")
                real(self, path, data)

            monkeypatch.setattr(LocalFSBackend, "_stage_file", flaky)


@pytest.fixture(params=["local", "sim", "http"])
def harness(request, tmp_path):
    h = Harness(request.param, tmp_path)
    yield h
    h.close()


@pytest.fixture()
def backend(harness):
    return harness.make()


class TestByteContract:
    def test_put_get_round_trip(self, backend):
        backend.put("index.d/ab.json", b"{}")
        assert backend.get("index.d/ab.json") == b"{}"
        assert backend.exists("index.d/ab.json")
        assert not backend.exists("index.d/cd.json")

    def test_get_missing_raises_missing_blob(self, backend):
        with pytest.raises(MissingBlobError, match="no blob"):
            backend.get("nope.json")

    def test_get_range_matches_local_slice(self, backend):
        data = bytes(range(256)) * 4
        backend.put("blob.bin", data)
        for start, length in [(0, 16), (100, 33), (1000, 64), (1023, 1)]:
            assert backend.get_range("blob.bin", start, length) == (
                data[start:start + length]
            )

    def test_get_range_past_eof_is_empty(self, backend):
        backend.put("blob.bin", b"short")
        assert backend.get_range("blob.bin", 100, 10) == b""

    def test_get_range_missing_raises_missing_blob(self, backend):
        with pytest.raises(MissingBlobError):
            backend.get_range("nope.bin", 0, 10)

    def test_key_escape_is_rejected(self, backend):
        with pytest.raises(BackendError, match="escapes"):
            backend.get("../outside.txt")

    def test_read_only_rejects_every_mutation(self, harness):
        ro = harness.make(writable=False)
        for op in (
            lambda: ro.put("k", b"v"),
            lambda: ro.delete("k"),
            lambda: ro.append_line("k", b"v\n"),
            lambda: ro.publish_tree("t", {"f": b"v"}),
        ):
            with pytest.raises(ReadOnlyBackendError, match="read-only"):
                op()

    def test_delete_is_idempotent(self, backend):
        backend.put("journal.jsonl", b"line\n")
        backend.delete("journal.jsonl")
        backend.delete("journal.jsonl")  # missing key: not an error
        assert not backend.exists("journal.jsonl")

    def test_append_line_accumulates(self, backend):
        backend.append_line("journal.jsonl", b"one\n")
        backend.append_line("journal.jsonl", b"two\n")
        assert backend.get("journal.jsonl") == b"one\ntwo\n"


class TestTreeContract:
    def test_list_tree_includes_empty_dirs(self, backend):
        backend.publish_tree(
            "blobs/abc",
            {"files/lib/libz.so": b"elf", "meta.json": b"{}"},
            dirs=["files", "files/lib", "files/include"],
        )
        files, dirs = backend.list_tree("blobs/abc")
        assert files == ["files/lib/libz.so", "meta.json"]
        assert "files/include" in dirs

    def test_list_tree_missing_prefix(self, backend):
        with pytest.raises(MissingBlobError, match="no tree"):
            backend.list_tree("blobs/nope")

    def test_tree_exists(self, backend):
        assert not backend.tree_exists("blobs/h/files")
        backend.publish_tree("blobs/h", {"files/a": b"1"})
        assert backend.tree_exists("blobs/h/files")

    def test_publish_replaces_previous_tree_completely(self, backend):
        backend.publish_tree("blobs/h", {"files/a": b"1", "stale.json": b"x"})
        backend.publish_tree("blobs/h", {"files/b": b"2"})
        files, _ = backend.list_tree("blobs/h")
        assert files == ["files/b"]

    def test_fault_mid_publish_preserves_old_tree(
        self, harness, backend, monkeypatch
    ):
        """old-entry-or-new-entry, over every transport: a publish dying
        after one staged file must leave the previous tree fully
        readable, and the retry must go through."""
        backend.publish_tree(
            "blobs/h", {"files/a": b"old", "meta.json": b"m1"}
        )
        harness.break_mid_publish(backend, monkeypatch)
        with pytest.raises(OSError):
            backend.publish_tree(
                "blobs/h", {"files/a": b"new", "meta.json": b"m2"}
            )
        monkeypatch.undo()

        files, _ = backend.list_tree("blobs/h")
        assert sorted(files) == ["files/a", "meta.json"]
        assert backend.get("blobs/h/files/a") == b"old"
        assert backend.get("blobs/h/meta.json") == b"m1"
        # no staging droppings visible under the published prefix
        leftovers = [p.name for p in (harness.root / "blobs").iterdir()]
        assert leftovers == ["h"]

        backend.publish_tree("blobs/h", {"files/a": b"new", "meta.json": b"m2"})
        assert backend.get("blobs/h/files/a") == b"new"
