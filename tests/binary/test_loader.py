"""Dynamic-loader simulation tests."""

import pytest

from repro.binary.loader import LoadError, Loader
from repro.binary.mockelf import MockBinary


@pytest.fixture()
def store(tmp_path):
    """Two prefixes: app depends on libz via RPATH."""
    z_lib = tmp_path / "zlib" / "lib"
    app_lib = tmp_path / "app" / "lib"
    z_lib.mkdir(parents=True)
    app_lib.mkdir(parents=True)
    MockBinary(
        soname="libz.so", defined_symbols=["deflate", "inflate"]
    ).write(z_lib / "libz.so")
    MockBinary(
        soname="libapp.so",
        needed=["libz.so"],
        rpaths=[str(z_lib)],
        defined_symbols=["app_main"],
        undefined_symbols=["deflate"],
    ).write(app_lib / "libapp.so")
    return tmp_path


class TestResolution:
    def test_successful_load(self, store):
        result = Loader().load(str(store / "app" / "lib" / "libapp.so"))
        assert result.ok
        assert set(result.resolved) == {"libapp.so", "libz.so"}

    def test_missing_library(self, store):
        (store / "zlib" / "lib" / "libz.so").unlink()
        result = Loader().load(str(store / "app" / "lib" / "libapp.so"))
        assert not result.ok
        assert "libz.so" in result.missing_libraries

    def test_missing_rpath_directory(self, tmp_path):
        lib = tmp_path / "lib"
        lib.mkdir()
        MockBinary(
            soname="libapp.so", needed=["libz.so"], rpaths=[str(tmp_path / "gone")]
        ).write(lib / "libapp.so")
        result = Loader().load(str(lib / "libapp.so"))
        assert not result.ok

    def test_rpath_order_first_wins(self, tmp_path):
        first = tmp_path / "first"
        second = tmp_path / "second"
        for d in (first, second):
            d.mkdir()
            MockBinary(soname="libz.so").write(d / "libz.so")
        lib = tmp_path / "lib"
        lib.mkdir()
        MockBinary(
            soname="libapp.so",
            needed=["libz.so"],
            rpaths=[str(first), str(second)],
        ).write(lib / "libapp.so")
        result = Loader().load(str(lib / "libapp.so"))
        assert result.resolved["libz.so"].startswith(str(first))

    def test_padded_rpath_resolves(self, store):
        """/x/./. style padded paths (from relocation) still resolve."""
        app = store / "app" / "lib" / "libapp.so"
        binary = MockBinary.read(app)
        binary.rpaths = [binary.rpaths[0] + "/./."]
        binary.write(app)
        assert Loader().load(str(app)).ok

    def test_transitive_needed_closure(self, tmp_path):
        a = tmp_path / "a"
        a.mkdir()
        MockBinary(soname="libc1.so", defined_symbols=["f"]).write(a / "libc1.so")
        MockBinary(
            soname="libb1.so", needed=["libc1.so"], rpaths=[str(a)]
        ).write(a / "libb1.so")
        MockBinary(
            soname="liba1.so", needed=["libb1.so"], rpaths=[str(a)]
        ).write(a / "liba1.so")
        result = Loader().load(str(a / "liba1.so"))
        assert set(result.resolved) == {"liba1.so", "libb1.so", "libc1.so"}


class TestSymbolsAndLayouts:
    def test_unresolved_symbol(self, store):
        app = store / "app" / "lib" / "libapp.so"
        binary = MockBinary.read(app)
        binary.undefined_symbols.append("missing_sym")
        binary.write(app)
        result = Loader().load(str(app))
        assert not result.ok
        assert any("missing_sym" in s for s in result.unresolved_symbols)

    def test_layout_conflict_detected(self, store):
        z = store / "zlib" / "lib" / "libz.so"
        binary = MockBinary.read(z)
        binary.type_layouts["MPI_Comm"] = "ptr-struct"
        binary.write(z)
        app = store / "app" / "lib" / "libapp.so"
        app_binary = MockBinary.read(app)
        app_binary.type_layouts["MPI_Comm"] = "int32"
        app_binary.write(app)
        result = Loader().load(str(app))
        assert not result.ok
        assert result.layout_conflicts

    def test_load_or_raise(self, store):
        (store / "zlib" / "lib" / "libz.so").unlink()
        with pytest.raises(LoadError):
            Loader().load_or_raise(str(store / "app" / "lib" / "libapp.so"))

    def test_nonexistent_file(self, tmp_path):
        result = Loader().load(str(tmp_path / "nope.so"))
        assert not result.ok
