"""MockBinary container format tests."""

import pytest

from repro.binary.mockelf import MAGIC, BinaryFormatError, MockBinary


@pytest.fixture()
def binary():
    return MockBinary(
        soname="libhdf5.so",
        needed=["libz.so", "libmpich.so"],
        rpaths=["/store/zlib-1.2/lib", "/store/mpich-3.4/lib"],
        defined_symbols=["H5Fopen", "H5Fclose"],
        undefined_symbols=["deflate", "MPI_Init"],
        type_layouts={"MPI_Comm": "int32"},
        path_blob=["/store/hdf5-1.14"],
        built_from="abc123",
    )


class TestSerialization:
    def test_round_trip(self, binary):
        again = MockBinary.from_bytes(binary.to_bytes())
        assert again.soname == binary.soname
        assert again.needed == binary.needed
        assert again.rpaths == binary.rpaths
        assert again.type_layouts == binary.type_layouts
        assert again.built_from == "abc123"

    def test_magic_header(self, binary):
        assert binary.to_bytes().startswith(MAGIC)

    def test_bad_magic_rejected(self):
        with pytest.raises(BinaryFormatError):
            MockBinary.from_bytes(b"\x7fELF this is not ours")

    def test_corrupt_payload_rejected(self):
        with pytest.raises(BinaryFormatError):
            MockBinary.from_bytes(MAGIC + b"{not json")

    def test_file_round_trip(self, binary, tmp_path):
        path = tmp_path / "libhdf5.so"
        binary.write(path)
        assert MockBinary.read(path).soname == "libhdf5.so"


class TestQueries:
    def test_references_prefix(self, binary):
        assert binary.references_prefix("/store/zlib-1.2")
        assert binary.references_prefix("/store/hdf5-1.14")
        assert not binary.references_prefix("/opt/other")

    def test_copy_independent(self, binary):
        clone = binary.copy()
        clone.needed.append("libextra.so")
        clone.type_layouts["X"] = "y"
        assert "libextra.so" not in binary.needed
        assert "X" not in binary.type_layouts

    def test_defaults(self):
        b = MockBinary(soname="a.out")
        assert b.needed == [] and b.rpaths == []
