"""Single-pass relocation vs. the legacy per-prefix loop, byte for byte.

The production path compiles every prefix map into one longest-first
alternation regex (:class:`PrefixRewriter`); the legacy reference —
one ``_replace_prefix`` pass per prefix, longest first — survives in
:mod:`repro.binary.relocate` precisely so these tests can pin the new
semantics to the old ones.

The two implementations agree whenever the passes do not *interact*:
no replacement value contains another old prefix (chained rewriting),
and no replacement creates an occurrence of another old prefix across
a seam with the surrounding text.  Interacting maps were
order-dependent under the legacy loop (a pathology, not a feature), so
the property tests filter them the same way the existing relocation
property tests filter nested prefixes.
"""

from hypothesis import assume, given, strategies as st

from repro.binary.mockelf import MockBinary
from repro.binary.relocate import (
    PrefixRewriter,
    _replace_prefix,
    pad_prefix,
    relocate_binary,
    relocate_text,
)

path_segments = st.lists(
    st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True), min_size=1, max_size=3
)
prefixes = path_segments.map(lambda parts: "/" + "/".join(parts))

#: filler may contain path-ish characters, including boundary makers
fillers = st.text(alphabet="abxy019/:._- \n", max_size=12)


def legacy_rewrite(text: str, prefix_map: dict) -> str:
    """The pre-single-pass implementation: one scan per prefix,
    longest first (ties broken lexicographically for determinism)."""
    for old in sorted(prefix_map, key=lambda o: (-len(o), o)):
        text, _ = _replace_prefix(text, old, prefix_map[old])
    return text


def maps_interact(prefix_map: dict) -> bool:
    """True when sequential passes could feed each other.

    Interaction modes: a replacement value contains another old prefix
    outright, or a replacement's edge combines with adjacent text to
    spell an old prefix across the seam.  For such maps the legacy
    loop's output depended on pass order; they are excluded from the
    equivalence property (and were never produced by the installer,
    whose maps translate between disjoint store roots).
    """
    olds = list(prefix_map)
    for old in olds:
        for other, new in prefix_map.items():
            if old != other and old in new:
                return True
            # seam on the right: a proper head of `old` ends `new`
            if any(new.endswith(old[:k]) for k in range(1, len(old))):
                return True
            # seam on the left: a proper tail of `old` starts `new`
            if any(new.startswith(old[k:]) for k in range(1, len(old))):
                return True
    return False


@st.composite
def map_and_text(draw):
    n = draw(st.integers(1, 3))
    olds = draw(
        st.lists(prefixes, min_size=n, max_size=n, unique=True)
    )
    news = draw(st.lists(prefixes, min_size=n, max_size=n))
    mapping = dict(zip(olds, news))
    assume(not maps_interact(mapping))
    parts = draw(
        st.lists(st.one_of(st.sampled_from(olds), fillers), max_size=8)
    )
    return mapping, "".join(parts)


class TestPropertyEquivalence:
    @given(map_and_text())
    def test_single_pass_matches_legacy_loop(self, case):
        mapping, text = case
        assert relocate_text(text, mapping) == legacy_rewrite(text, mapping)

    @given(map_and_text())
    def test_padded_single_pass_matches_padded_legacy(self, case):
        mapping, text = case
        padded = {
            old: pad_prefix(new, len(old)) if len(new) < len(old) else new
            for old, new in mapping.items()
        }
        assume(not maps_interact(padded))
        rewritten, _ = PrefixRewriter(mapping, pad=True).rewrite(text)
        assert rewritten == legacy_rewrite(text, padded)

    @given(map_and_text())
    def test_hit_counts_match_legacy_counts(self, case):
        mapping, text = case
        _, hits = PrefixRewriter(mapping).rewrite(text)
        # replay the legacy loop, collecting its per-prefix counts
        legacy_hits = {}
        scratch = text
        for old in sorted(mapping, key=lambda o: (-len(o), o)):
            scratch, count = _replace_prefix(scratch, old, mapping[old])
            if count:
                legacy_hits[old] = count
        assert hits == legacy_hits


class TestOverlappingPrefixes:
    MAP = {"/store": "/new", "/store/pkg": "/other"}

    def test_longest_prefix_wins_at_shared_position(self):
        text = "/store/pkg/lib:/store/bin"
        expected = "/other/lib:/new/bin"
        assert relocate_text(text, self.MAP) == expected
        assert legacy_rewrite(text, self.MAP) == expected

    def test_shorter_prefix_inside_longer_occurrence_not_double_hit(self):
        _, hits = PrefixRewriter(self.MAP).rewrite("/store/pkg")
        assert hits == {"/store/pkg": 1}

    def test_three_level_nesting(self):
        mapping = {"/s": "/1", "/s/t": "/2", "/s/t/u": "/3"}
        # the last token: /s/t/u fails its boundary ('v' continues the
        # component), so the next-longest nested prefix /s/t wins there
        text = "/s /s/t /s/t/u /s/t/uv /s/tv"
        expected = "/1 /2 /3 /2/uv /1/tv"
        assert relocate_text(text, mapping) == expected
        assert legacy_rewrite(text, mapping) == expected


class TestBoundarySemantics:
    """The negative lookahead must reproduce ``_PATH_COMPONENT_CHARS``."""

    def test_component_continuation_is_not_a_match(self):
        for tail in ("x", "9", ".", "_", "-"):
            text = f"/store{tail}"
            assert relocate_text(text, {"/store": "/new"}) == text
            assert legacy_rewrite(text, {"/store": "/new"}) == text

    def test_separators_and_end_are_boundaries(self):
        for tail in ("", "/lib", ":", " ", "\n", "="):
            text = f"/store{tail}"
            expected = f"/new{tail}"
            assert relocate_text(text, {"/store": "/new"}) == expected
            assert legacy_rewrite(text, {"/store": "/new"}) == expected

    def test_no_left_boundary_check(self):
        # neither implementation requires a boundary *before* the match
        text = "ROOT=/store/lib"
        assert relocate_text(text, {"/store": "/new"}) == "ROOT=/new/lib"


class TestBinaryEquivalence:
    def test_relocate_binary_matches_legacy_per_string(self):
        mapping = {"/opt/storeroot/zlib": "/srv/z", "/opt/other": "/srv/much/longer"}
        binary = MockBinary(
            soname="libz.so",
            rpaths=["/opt/storeroot/zlib/lib", "/opt/other/lib", "/usr/lib"],
            path_blob=["/opt/storeroot/zlib", "/opt/other/share:/opt/storeroot/zlib"],
        )
        result = relocate_binary(binary, mapping, pad=True)
        padded = {
            old: pad_prefix(new, len(old)) if len(new) < len(old) else new
            for old, new in mapping.items()
        }
        for before, after in zip(
            binary.rpaths + binary.path_blob,
            result.binary.rpaths + result.binary.path_blob,
        ):
            assert after == legacy_rewrite(before, padded)
        # shorter replacement padded, longer lengthened, each string with
        # a hit counted once per prefix (legacy counter semantics)
        assert result.padded == 3
        assert result.lengthened == 2
        assert result.replacements == 5

    def test_rewriter_is_cached_per_map(self):
        from repro.binary.relocate import _rewriter_for

        mapping = {"/a/b": "/c/d"}
        assert _rewriter_for(mapping, True) is _rewriter_for(dict(mapping), True)
        assert _rewriter_for(mapping, True) is not _rewriter_for(mapping, False)

    def test_empty_map_is_identity(self):
        text = "/store/lib"
        assert relocate_text(text, {}) == text
        binary = MockBinary(soname="a", rpaths=["/store/lib"])
        result = relocate_binary(binary, {}, pad=True)
        assert result.binary.rpaths == binary.rpaths
        assert result.replacements == 0
