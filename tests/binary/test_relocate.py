"""Relocation tests: prefix rewriting, padding, patchelf-style lengthening."""

import pytest

from repro.binary.mockelf import MockBinary
from repro.binary.relocate import pad_prefix, relocate_binary, relocate_text


class TestPadPrefix:
    def test_pads_to_exact_length(self):
        padded = pad_prefix("/new", 12)
        assert len(padded) == 12

    def test_padded_path_is_same_directory(self):
        import os.path

        padded = pad_prefix("/a/b", 10)
        assert os.path.normpath(padded) == os.path.normpath("/a/b")

    def test_equal_length_unchanged(self):
        assert pad_prefix("/abc", 4) == "/abc"

    def test_longer_prefix_rejected(self):
        with pytest.raises(ValueError):
            pad_prefix("/very/long/prefix", 5)


class TestRelocateText:
    def test_simple_replacement(self):
        assert relocate_text("path=/old/lib", {"/old": "/new"}) == "path=/new/lib"

    def test_longest_prefix_first(self):
        out = relocate_text(
            "/store/pkg/lib", {"/store": "/B", "/store/pkg": "/A"}
        )
        assert out == "/A/lib"

    def test_multiple_occurrences(self):
        out = relocate_text("/old:/old/lib", {"/old": "/new"})
        assert out == "/new:/new/lib"


class TestRelocateBinary:
    def _binary(self):
        return MockBinary(
            soname="libapp.so",
            rpaths=["/build/zlib-1.2/lib", "/build/mpich-3.4/lib"],
            path_blob=["/build/app-1.0", "/build/zlib-1.2/lib"],
        )

    def test_rpaths_rewritten(self):
        result = relocate_binary(
            self._binary(),
            {"/build/zlib-1.2": "/deploy/zlib-1.2", "/build/mpich-3.4": "/deploy/mpich-3.4"},
            pad=False,
        )
        assert result.binary.rpaths == [
            "/deploy/zlib-1.2/lib",
            "/deploy/mpich-3.4/lib",
        ]
        assert result.replacements >= 2

    def test_original_untouched(self):
        binary = self._binary()
        relocate_binary(binary, {"/build": "/deploy-much-longer"}, pad=False)
        assert binary.rpaths[0].startswith("/build")

    def test_shorter_prefix_padded(self):
        result = relocate_binary(self._binary(), {"/build": "/b"}, pad=True)
        assert result.padded > 0
        assert result.lengthened == 0
        # padded paths keep the original string length (binary patching)
        assert len(result.binary.rpaths[0]) == len("/build/zlib-1.2/lib")

    def test_longer_prefix_counts_lengthened(self):
        result = relocate_binary(
            self._binary(), {"/build": "/considerably/longer/deploy"}, pad=True
        )
        assert result.lengthened > 0

    def test_irrelevant_prefix_noop(self):
        result = relocate_binary(self._binary(), {"/nothing": "/x"})
        assert result.replacements == 0
        assert result.binary.rpaths == self._binary().rpaths

    def test_roundtrip_relocation(self):
        """relocating A→B then B→A restores the original paths."""
        binary = self._binary()
        there = relocate_binary(binary, {"/build": "/deploy"}, pad=False).binary
        back = relocate_binary(there, {"/deploy": "/build"}, pad=False).binary
        assert back.rpaths == binary.rpaths
        assert back.path_blob == binary.path_blob
