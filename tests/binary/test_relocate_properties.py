"""Property-based relocation invariants."""

import os.path

from hypothesis import given, strategies as st

from repro.binary.mockelf import MockBinary
from repro.binary.relocate import pad_prefix, relocate_binary, relocate_text

path_segments = st.lists(
    st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True), min_size=1, max_size=4
)
prefixes = path_segments.map(lambda parts: "/" + "/".join(parts))


@given(prefixes, st.integers(0, 20))
def test_padded_prefix_names_same_directory(prefix, extra):
    target_length = len(prefix) + extra
    padded = pad_prefix(prefix, target_length)
    assert len(padded) == target_length
    assert os.path.normpath(padded) == os.path.normpath(prefix)


@given(prefixes, prefixes)
def test_relocate_then_back_is_identity(old, new):
    if old in new or new in old:
        return  # nested prefixes are not invertible in general
    unrelated = "/0unrelated0/lib"  # digits keep it collision-free
    if old in unrelated or new in unrelated:
        return  # substring collisions are the known hazard of prefix
        # patching; real stores use long hashed prefixes to avoid them
    binary = MockBinary(
        soname="libx.so",
        rpaths=[f"{old}/lib", unrelated],
        path_blob=[old, f"{old}/share"],
    )
    there = relocate_binary(binary, {old: new}, pad=False).binary
    back = relocate_binary(there, {new: old}, pad=False).binary
    assert back.rpaths == binary.rpaths
    assert back.path_blob == binary.path_blob


@given(prefixes, prefixes)
def test_relocation_removes_all_old_references(old, new):
    if old in new:
        return
    binary = MockBinary(
        soname="libx.so",
        rpaths=[f"{old}/lib"],
        path_blob=[old, f"{old}/bin/tool"],
    )
    relocated = relocate_binary(binary, {old: new}, pad=False).binary
    assert not relocated.references_prefix(old)
    assert relocated.references_prefix(new)


@given(prefixes, prefixes, st.text("abcxyz/", min_size=0, max_size=20))
def test_relocate_text_unrelated_content_untouched(old, new, filler):
    if old in filler or old in new:
        return
    assert relocate_text(filler, {old: new}) == filler


@given(prefixes)
def test_self_relocation_is_identity(prefix):
    binary = MockBinary(soname="a", rpaths=[f"{prefix}/lib"])
    result = relocate_binary(binary, {prefix: prefix}, pad=True)
    assert result.binary.rpaths == binary.rpaths
