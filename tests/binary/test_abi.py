"""ABI compatibility model tests (Section 2.1)."""

from repro.binary.abi import abi_compatible, check_abi_compatibility
from repro.binary.mockelf import MockBinary


def lib(symbols, layouts=None, soname="libx.so"):
    return MockBinary(
        soname=soname,
        defined_symbols=list(symbols),
        type_layouts=dict(layouts or {}),
    )


MPICH = lib(
    ["MPI_Init", "MPI_Send", "MPI_Recv"], {"MPI_Comm": "int32"}, "libmpich.so"
)
OPENMPI = lib(
    ["MPI_Init", "MPI_Send", "MPI_Recv"], {"MPI_Comm": "ptr-struct"}, "libopenmpi.so"
)
MVAPICH = lib(
    ["MPI_Init", "MPI_Send", "MPI_Recv", "MPIX_Extra"],
    {"MPI_Comm": "int32"},
    "libmvapich.so",
)


class TestSymbolChecks:
    def test_identical_compatible(self):
        assert abi_compatible(lib(["f", "g"]), lib(["f", "g"]))

    def test_superset_compatible(self):
        # replacement may export MORE (API superset, Section 2.1)
        assert abi_compatible(lib(["f", "g", "h"]), lib(["f", "g"]))

    def test_missing_symbol_incompatible(self):
        report = check_abi_compatibility(lib(["f"]), lib(["f", "g"]))
        assert not report.compatible
        assert report.missing_symbols == ["g"]

    def test_subset_direction_matters(self):
        big, small = lib(["f", "g"]), lib(["f"])
        assert abi_compatible(big, small)
        assert not abi_compatible(small, big)


class TestLayoutChecks:
    def test_mpich_mvapich_compatible(self):
        """The paper's positive case: MVAPICH follows the MPICH ABI."""
        assert abi_compatible(MVAPICH, MPICH)

    def test_mpich_openmpi_incompatible(self):
        """The paper's negative case: MPI_Comm int32 vs struct pointer."""
        report = check_abi_compatibility(OPENMPI, MPICH)
        assert not report.compatible
        assert report.layout_mismatches == {"MPI_Comm": ("int32", "ptr-struct")}

    def test_symmetric_incompatibility(self):
        assert not abi_compatible(MPICH, OPENMPI)

    def test_disjoint_types_compatible(self):
        a = lib(["f"], {"TypeA": "x"})
        b = lib(["f"], {"TypeB": "y"})
        assert abi_compatible(a, b)

    def test_replacement_extra_types_ok(self):
        replacement = lib(["f"], {"T": "x", "Extra": "z"})
        original = lib(["f"], {"T": "x"})
        assert abi_compatible(replacement, original)


class TestReport:
    def test_explain_compatible(self):
        assert check_abi_compatibility(MVAPICH, MPICH).explain() == "ABI compatible"

    def test_explain_lists_all_problems(self):
        text = check_abi_compatibility(
            lib(["f"], {"T": "a"}), lib(["f", "g"], {"T": "b"})
        ).explain()
        assert "g" in text and "T" in text
