"""Automatic ABI discovery (future-work extension)."""

import pytest

from repro.binary.discovery import (
    SpliceSuggestion,
    apply_suggestions,
    discover_binary_splices,
    discover_provider_splices,
)
from repro.binary.mockelf import MockBinary
from repro.concretize import Concretizer
from repro.repos.radiuss import make_radiuss_repo


@pytest.fixture()
def repo():
    return make_radiuss_repo()


class TestProviderDiscovery:
    def test_finds_mpich_abi_family(self, repo):
        suggestions = discover_provider_splices(
            repo, "mpi", include_existing=True
        )
        pairs = {(s.splicer, s.target.split("@")[0]) for s in suggestions}
        assert ("mvapich2", "mpich") in pairs
        assert ("cray-mpich", "mpich") in pairs
        assert ("mpiabi", "mpich") in pairs

    def test_never_suggests_openmpi_for_mpich(self, repo):
        suggestions = discover_provider_splices(
            repo, "mpi", include_existing=True
        )
        for s in suggestions:
            assert not (
                s.splicer == "openmpi" and s.target.startswith("mpich")
            ), "incompatible MPI_Comm layouts must block the suggestion"
            assert not (
                s.splicer == "mpich" and s.target.startswith("openmpi")
            )

    def test_existing_declarations_skipped_by_default(self, repo):
        suggestions = discover_provider_splices(repo, "mpi")
        # mvapich2 already declares can_splice("mpich@3.4.3") in the repo
        assert not any(
            s.splicer == "mvapich2" and s.target == "mpich@3.4.3"
            for s in suggestions
        )

    def test_directive_source_rendering(self):
        s = SpliceSuggestion("mvapich2", "mpich@3.4.3", None, "r")
        assert s.directive_source() == 'can_splice("mpich@3.4.3")'
        s2 = SpliceSuggestion("zlib", "zlib@1.2", "@1.3", "r")
        assert s2.directive_source() == 'can_splice("zlib@1.2", when="@1.3")'


class TestBinaryDiscovery:
    def _binaries(self):
        mpi_symbols = ["MPI_Init", "MPI_Send", "MPI_Recv"]
        return {
            "mpich@3.4.3": MockBinary(
                "libmpich.so",
                defined_symbols=mpi_symbols,
                type_layouts={"MPI_Comm": "int32"},
            ),
            "newmpi@1.0": MockBinary(
                "libnewmpi.so",
                defined_symbols=mpi_symbols + ["MPIX_Extra"],
                type_layouts={"MPI_Comm": "int32"},
            ),
            "openmpi@4.1": MockBinary(
                "libopenmpi.so",
                defined_symbols=mpi_symbols,
                type_layouts={"MPI_Comm": "ptr-struct"},
            ),
        }

    def test_superset_direction(self):
        suggestions = discover_binary_splices(self._binaries())
        pairs = {(s.splicer, s.target) for s in suggestions}
        assert ("newmpi", "mpich@3.4.3") in pairs
        # mpich lacks MPIX_Extra → cannot replace newmpi
        assert ("mpich", "newmpi@1.0") not in pairs

    def test_layout_conflicts_block(self):
        suggestions = discover_binary_splices(self._binaries())
        for s in suggestions:
            assert "openmpi" not in (s.splicer,) or "mpich" not in s.target

    def test_when_spec_pins_splicer_version(self):
        suggestions = discover_binary_splices(self._binaries())
        newmpi = [s for s in suggestions if s.splicer == "newmpi"][0]
        assert newmpi.when == "@1.0"


class TestApplySuggestions:
    def test_applied_suggestions_enable_solver_splices(self, repo):
        """The full future-work loop: discover → apply → the solver can
        now synthesize a splice nobody wrote by hand."""
        # strip mvapich2's hand-written declaration to simulate a
        # maintainer who never wrote one
        mvapich = repo.get("mvapich2")
        mvapich.can_splice_decls = []

        cached = Concretizer(repo).solve(["hypre ^mpich@3.4.3"]).roots[0]
        before = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = before.solve(["hypre ^mvapich2"])
        assert "hypre" in {s.name for s in result.built}, "no directive yet"

        suggestions = discover_provider_splices(repo, "mpi")
        applied = apply_suggestions(repo, suggestions)
        assert applied > 0

        after = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = after.solve(["hypre ^mvapich2"])
        assert {s.name for s in result.spliced} == {"hypre"}

    def test_apply_idempotent(self, repo):
        suggestions = discover_provider_splices(repo, "mpi")
        first = apply_suggestions(repo, suggestions)
        second = apply_suggestions(repo, suggestions)
        assert second == 0 and first >= 0
