"""Rewiring tests (Section 4.2): relocation generalized to splices."""

import pytest

from repro.binary.abi import check_abi_compatibility
from repro.binary.mockelf import MockBinary
from repro.binary.rewire import RewireError, plan_rewire, rewire_binary
from repro.spec import DEPTYPE_LINK_RUN, parse_one


def concrete(text, deps=()):
    spec = parse_one(text + " arch=centos8-skylake")
    for dep in deps:
        spec.add_dependency(dep, (DEPTYPE_LINK_RUN,))
    spec._mark_concrete()
    return spec


@pytest.fixture()
def spliced_pair():
    mpich = concrete("mpich@=3.4.3")
    mpiabi = concrete("mpiabi@=1.0")
    app = concrete("app@=1.0", deps=[mpich])
    spliced = app.splice(mpiabi, transitive=True, replace="mpich")
    return app, spliced, mpich, mpiabi


PREFIXES = {
    "mpich": "/store/mpich-3.4.3",
    "mpiabi": "/store/mpiabi-1.0",
    "app": "/store/app-1.0",
    "zlib": "/store/zlib-1.2",
}


def prefix_of(spec):
    return PREFIXES[spec.name]


class TestPlanRewire:
    def test_cross_package_replacement_detected(self, spliced_pair):
        app, spliced, mpich, mpiabi = spliced_pair
        plan = plan_rewire(spliced, prefix_of)
        assert [(o.name, n.name) for o, n in plan.replaced] == [("mpich", "mpiabi")]
        assert plan.prefix_map == {"/store/mpich-3.4.3": "/store/mpiabi-1.0"}
        assert plan.soname_map == {"libmpich.so": "libmpiabi.so"}

    def test_same_name_replacement(self):
        z_old = concrete("zlib@=1.2")
        z_new = concrete("zlib@=1.3")
        app = concrete("app@=1.0", deps=[z_old])
        spliced = app.splice(z_new, transitive=True)
        prefixes = {"zlib": "/s/zlib"}  # same name → need hash-aware map
        plan = plan_rewire(
            spliced,
            prefix_of=lambda s: f"/s/zlib-{s.version}" if s.name == "zlib" else "/s/app",
        )
        assert plan.prefix_map == {"/s/zlib-1.2": "/s/zlib-1.3"}
        assert plan.soname_map == {}, "same package keeps its soname"

    def test_not_spliced_rejected(self):
        app = concrete("app@=1.0", deps=[concrete("zlib@=1.2")])
        with pytest.raises(RewireError):
            plan_rewire(app, prefix_of)

    def test_old_prefix_resolver_used_for_replaced(self, spliced_pair):
        app, spliced, mpich, mpiabi = spliced_pair
        plan = plan_rewire(
            spliced,
            prefix_of,
            old_prefix_of=lambda s: f"/build-machine/{s.name}",
        )
        assert plan.prefix_map == {"/build-machine/mpich": "/store/mpiabi-1.0"}

    def test_unreplaced_shared_dep_relocated(self):
        z = concrete("zlib@=1.2")
        mpich = concrete("mpich@=3.4.3")
        mpiabi = concrete("mpiabi@=1.0")
        app = concrete("app@=1.0", deps=[mpich, z])
        spliced = app.splice(mpiabi, transitive=True, replace="mpich")
        plan = plan_rewire(
            spliced,
            prefix_of,
            old_prefix_of=lambda s: f"/build/{s.name}",
        )
        # zlib did not change, but its location did (build → local)
        assert plan.prefix_map["/build/zlib"] == "/store/zlib-1.2"


class TestRewireBinary:
    def _app_binary(self):
        return MockBinary(
            soname="libapp.so",
            needed=["libmpich.so"],
            rpaths=["/store/mpich-3.4.3/lib"],
            undefined_symbols=["MPI_Init"],
            type_layouts={"MPI_Comm": "int32"},
        )

    def test_needed_and_rpaths_patched(self, spliced_pair):
        _, spliced, *_ = spliced_pair
        plan = plan_rewire(spliced, prefix_of)
        patched = rewire_binary(self._app_binary(), plan)
        assert patched.needed == ["libmpiabi.so"]
        assert any("mpiabi" in p for p in patched.rpaths)

    def test_abi_check_blocks_incompatible(self, spliced_pair):
        _, spliced, *_ = spliced_pair
        plan = plan_rewire(spliced, prefix_of)

        def check(old, new):
            return check_abi_compatibility(
                MockBinary(soname="x", type_layouts={"MPI_Comm": "ptr-struct"}),
                MockBinary(soname="y", type_layouts={"MPI_Comm": "int32"}),
            )

        with pytest.raises(RewireError):
            rewire_binary(self._app_binary(), plan, check_abi=check)

    def test_abi_check_passes_compatible(self, spliced_pair):
        _, spliced, *_ = spliced_pair
        plan = plan_rewire(spliced, prefix_of)

        def check(old, new):
            return check_abi_compatibility(
                MockBinary(soname="x", defined_symbols=["MPI_Init"]),
                MockBinary(soname="y", defined_symbols=["MPI_Init"]),
            )

        patched = rewire_binary(self._app_binary(), plan, check_abi=check)
        assert patched.needed == ["libmpiabi.so"]
