"""The diagnostics data model: ordering, rendering, JSON schema."""

import json

from repro.analysis import Diagnostic, Report, Severity, REPORT_SCHEMA_VERSION


def diag(code, severity, message="boom", **kw):
    return Diagnostic(code, severity, message, **kw)


class TestSeverity:
    def test_rank_order(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.NOTE.rank

    def test_str(self):
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_location_with_directive(self):
        d = diag("SPL001", Severity.ERROR, package="zlib",
                 directive="can_splice[2]")
        assert d.location == "zlib.can_splice[2]"

    def test_location_package_only(self):
        assert diag("PKG001", Severity.ERROR, package="zlib").location == "zlib"

    def test_location_program_level(self):
        assert diag("ASP002", Severity.WARNING).location == "-"

    def test_family_strips_numeric_suffix(self):
        assert diag("SPL001", Severity.ERROR).family == "SPL"
        assert diag("CACHE003", Severity.WARNING).family == "CACHE"
        assert diag("ABI004", Severity.ERROR).family == "ABI"

    def test_to_dict_round_trips_through_json(self):
        d = diag("DEP001", Severity.ERROR, package="app",
                 directive="depends_on[0]", checker="directives.dependencies")
        loaded = json.loads(json.dumps(d.to_dict()))
        assert loaded["code"] == "DEP001"
        assert loaded["family"] == "DEP"
        assert loaded["severity"] == "error"
        assert loaded["location"] == "app.depends_on[0]"
        assert loaded["checker"] == "directives.dependencies"


class TestReport:
    def test_finalize_sorts_by_family_code_location(self):
        # schema 2: deterministic (family, code, location) order — a
        # diff of two reports lines up family-by-family regardless of
        # severity interleaving
        report = Report(diagnostics=[
            diag("ZZZ001", Severity.NOTE),
            diag("MMM003", Severity.ERROR, package="b"),
            diag("MMM003", Severity.ERROR, package="a"),
            diag("AAA002", Severity.WARNING),
        ])
        report.finalize()
        assert [(d.code, d.location) for d in report.diagnostics] == [
            ("AAA002", "-"), ("MMM003", "a"), ("MMM003", "b"), ("ZZZ001", "-")
        ]

    def test_counts_and_flags(self):
        report = Report(diagnostics=[
            diag("A001", Severity.ERROR), diag("B001", Severity.WARNING)
        ])
        assert report.counts() == {"error": 1, "warning": 1, "note": 0}
        assert report.has_errors
        assert not report.clean

    def test_clean_report(self):
        report = Report(checkers_run=["directives.versions"])
        assert report.clean
        assert not report.has_errors
        assert "clean" in report.render()

    def test_render_contains_table_and_summary(self):
        report = Report(diagnostics=[
            diag("SPL001", Severity.ERROR, package="x", directive="can_splice[0]")
        ], checkers_run=["a", "b"]).finalize()
        text = report.render()
        assert "SEVERITY" in text and "SPL001" in text
        assert "x.can_splice[0]" in text
        assert "1 error" in text and "2 checkers run" in text

    def test_json_document_shape(self):
        report = Report(diagnostics=[diag("A001", Severity.WARNING)],
                        checkers_run=["x"], checkers_skipped=["y"])
        doc = json.loads(report.finalize().to_json())
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert doc["clean"] is False
        assert doc["summary"] == {"error": 0, "warning": 1, "note": 0}
        assert doc["codes"] == ["A001"]
        assert doc["checkers_run"] == ["x"]
        assert doc["checkers_skipped"] == ["y"]
        assert doc["diagnostics"][0]["code"] == "A001"
