"""Regression: the shipped repositories are audit-clean, and audits are
observable through the standard obs substrate."""

import pytest

from repro.analysis import Analyzer, AuditContext, all_checkers, audit_repository
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo


class TestBuiltinReposClean:
    """The tentpole guarantee: zero diagnostics of ANY severity on the
    repos we ship.  If a change to mock.py/radiuss.py (or to a checker)
    trips this, either the repo or the checker is wrong — fix it, do
    not relax this test."""

    def test_mock_repo_is_clean(self):
        report = audit_repository(make_mock_repo())
        assert report.clean, report.render()

    def test_radiuss_repo_is_clean(self):
        report = audit_repository(make_radiuss_repo())
        assert report.clean, report.render()

    def test_repo_level_audit_runs_all_applicable_checkers(self):
        report = audit_repository(make_mock_repo())
        ran = set(report.checkers_run)
        assert {c.name for c in all_checkers() if c.requires == ("repo",)} <= ran
        assert {c.name for c in all_checkers() if c.requires == ("program",)} <= ran
        # DAG/store/reuse checkers wait for their inputs
        assert "dag.provenance" in report.checkers_skipped
        assert "encoding.splice_reach" in report.checkers_skipped


class TestObservability:
    def test_per_checker_spans_recorded(self):
        audit_repository(make_mock_repo())
        stats = trace.phase_stats()
        assert "analysis.audit" in stats
        assert "analysis.assemble_program" in stats
        assert "analysis.directives.can_splice" in stats
        assert "analysis.encoding.dataflow" in stats

    def test_diagnostic_counters_by_severity(self):
        from repro.package.package import Package
        from repro.package.repository import Repository
        from repro.package.directives import version, can_splice

        class Bad(Package):
            version("1.0")
            can_splice("ghost@1")

        repo = Repository("counted")
        repo.add(Bad)
        def counter(name):
            return metrics.snapshot()["counters"].get(name, 0)

        before = counter("analysis.diagnostics.error")
        report = audit_repository(repo, checks=["directives.can_splice"])
        assert report.has_errors
        after = counter("analysis.diagnostics.error")
        assert after == before + len(report.errors)

    def test_checkers_run_counter(self):
        def counter(name):
            return metrics.snapshot()["counters"].get(name, 0)

        before = counter("analysis.checkers_run")
        report = audit_repository(make_mock_repo(), checks=["directives"])
        after = counter("analysis.checkers_run")
        assert after == before + len(report.checkers_run)
