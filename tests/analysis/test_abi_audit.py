"""The ABI splice-soundness family: ABI001–ABI004.

These tests exercise the paper's central trust gap: ``can_splice``
declarations are taken at face value by the solver, so the auditor must
cross-check them against the artifacts a cache/store actually holds —
the seeded ``MPI_Comm`` int-vs-struct mismatch between mpich and
openmpi is the canonical unsound case.
"""

import pytest

from repro.analysis import Analyzer, AuditContext, audit_cache
from repro.buildcache import BuildCache
from repro.concretize import Concretizer
from repro.installer import Installer
from repro.package.directives import CanSpliceDecl
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo
from repro.spec import parse_one


@pytest.fixture()
def repo():
    return make_mock_repo()


def cached_stacks(repo, tmp_path, roots):
    """Install each root stack and push it to a fresh buildcache."""
    installer = Installer(tmp_path / "seed", repo)
    cache = BuildCache(tmp_path / "cache")
    for root in roots:
        spec = Concretizer(repo).solve([root]).roots[0]
        installer.install(spec)
        installer.push_to_cache(cache, spec)
    cache.save_index()
    return cache


def seed_unsound_declaration(repo):
    """Declare openmpi splice-compatible with mpich@3.4.3 — unsound:
    their MPI_Comm layouts differ (int32 vs ptr-struct)."""
    openmpi = repo.get("openmpi")
    openmpi.can_splice_decls = openmpi.can_splice_decls + [
        CanSpliceDecl(target=parse_one("mpich@3.4.3"))
    ]


class TestDeclarations:
    def test_unsound_declaration_fires_abi001(self, repo, tmp_path):
        seed_unsound_declaration(repo)
        cache = cached_stacks(
            repo,
            tmp_path,
            ["example@1.1.0 ^mpich@3.4.3", "example ^openmpi"],
        )
        report = audit_cache(cache, repo=repo, checks=["abi.declarations"])
        errors = [d for d in report.diagnostics if d.code == "ABI001"]
        assert len(errors) == 1
        (err,) = errors
        assert "MPI_Comm" in err.message
        assert err.package == "openmpi"
        assert err.directive == "can_splice[0]"
        assert "unsound" in err.message

    def test_sound_declaration_is_silent(self, repo, tmp_path):
        # mpiabi's declared splice over mpich@3.4.3 is sound (both int32)
        cache = cached_stacks(
            repo,
            tmp_path,
            ["example@1.1.0 ^mpich@3.4.3", "example@1.1.0 ^mpiabi"],
        )
        report = audit_cache(cache, repo=repo, checks=["abi.declarations"])
        assert not [d for d in report.diagnostics if d.code == "ABI001"]

    def test_radiuss_declarations_are_sound(self, tmp_path):
        repo = make_radiuss_repo()
        cache = cached_stacks(
            repo,
            tmp_path,
            ["mfem ^mpich@3.4.3", "mfem ^openmpi", "mpiabi", "mvapich2"],
        )
        report = audit_cache(cache, repo=repo)
        assert not [d for d in report.diagnostics if d.code == "ABI001"], (
            report.render()
        )

    def test_dead_declaration_warns_abi002(self, repo, tmp_path):
        # nothing in the cache matches zlib@1.2 (the seed stacks carry a
        # newer zlib), so zlib's own declaration is dead weight
        cache = cached_stacks(repo, tmp_path, ["example@1.1.0 ^mpich@3.4.3"])
        report = audit_cache(cache, repo=repo, checks=["abi.declarations"])
        warned = [d for d in report.diagnostics if d.code == "ABI002"]
        assert any(d.package == "zlib" for d in warned)
        assert all(d.severity.value == "warning" for d in warned)

    def test_verdict_uses_real_artifacts_from_cache(self, repo, tmp_path):
        """The checker reads the pushed binaries, not just class data."""
        seed_unsound_declaration(repo)
        cache = cached_stacks(
            repo,
            tmp_path,
            ["example@1.1.0 ^mpich@3.4.3", "example ^openmpi"],
        )
        ctx = AuditContext(repo=repo, cache=cache)
        Analyzer(["abi.declarations"]).run(ctx)
        sources = {src for _, src in ctx.artifact_memo.values() if src}
        assert "cache" in sources


class TestOpportunities:
    def test_undeclared_compatible_pair_noted(self, repo, tmp_path):
        # mpich and mpiabi share symbols and layouts; mpich declares no
        # splice over mpiabi, so the auditor surfaces the opportunity
        cache = cached_stacks(
            repo,
            tmp_path,
            ["example@1.1.0 ^mpich@3.4.3", "example@1.1.0 ^mpiabi"],
        )
        report = audit_cache(cache, repo=repo, checks=["abi.opportunities"])
        notes = [d for d in report.diagnostics if d.code == "ABI003"]
        assert any(
            d.package == "mpich" and "mpiabi" in d.message for d in notes
        )
        assert all(d.severity.value == "note" for d in notes)

    def test_declared_pairs_not_renoted(self, repo, tmp_path):
        cache = cached_stacks(
            repo,
            tmp_path,
            ["example@1.1.0 ^mpich@3.4.3", "example@1.1.0 ^mpiabi"],
        )
        report = audit_cache(cache, repo=repo, checks=["abi.opportunities"])
        # mpiabi -> mpich@3.4.3 is already declared; no note repeats it
        assert not [
            d
            for d in report.diagnostics
            if d.code == "ABI003"
            and d.package == "mpiabi"
            and "mpich@3.4.3" in d.message
        ]


class TestSpliceLinks:
    def _spliced_store(self, repo, tmp_path, verify_abi=True, unsafe=False):
        spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        source = Installer(tmp_path / "seed", repo)
        source.install(spec)
        cache = BuildCache(tmp_path / "cache")
        source.push_to_cache(cache, spec)
        cache.save_index()
        if unsafe:
            openmpi = Concretizer(repo).solve(["openmpi"]).roots[0]
            spliced = spec.splice(openmpi, transitive=True, replace="mpich")
        else:
            c = Concretizer(
                repo, reusable_specs=cache.all_specs(), splicing=True
            )
            spliced = c.solve(["example@1.1.0 ^mpiabi"]).roots[0]
        target = Installer(
            tmp_path / "store", repo, caches=[cache], verify_abi=verify_abi
        )
        target.install(spliced)
        return target.database, spliced

    def test_clean_splice_has_no_findings(self, repo, tmp_path):
        database, _ = self._spliced_store(repo, tmp_path)
        report = Analyzer(["abi.splice_links"]).run(
            AuditContext(database=database)
        )
        assert report.clean, report.render()

    def test_broken_rewire_fires_abi004(self, repo, tmp_path):
        database, spliced = self._spliced_store(repo, tmp_path)
        # sabotage: delete the spliced-in dependency's library so the
        # rewired NEEDED entry no longer resolves anywhere
        import shutil
        from pathlib import Path

        dep = [d for d in spliced.traverse() if d.name == "mpiabi"][0]
        dep_prefix = Path(database.get(dep.dag_hash()).prefix)
        shutil.rmtree(dep_prefix / "lib")
        report = Analyzer(["abi.splice_links"]).run(
            AuditContext(database=database)
        )
        errors = [d for d in report.diagnostics if d.code == "ABI004"]
        assert errors and "libmpiabi.so" in errors[0].message

    def test_unspliced_store_is_skipped_cheaply(self, repo, tmp_path):
        spec = Concretizer(repo).solve(["zlib"]).roots[0]
        installer = Installer(tmp_path / "store", repo)
        installer.install(spec)
        report = Analyzer(["abi.splice_links"]).run(
            AuditContext(database=installer.database)
        )
        assert report.clean
