"""The cache/store integrity families: CACHE001–CACHE007, STORE001–003.

Every checker is exercised twice: once against a pristine surface
(must be silent) and once against a seeded corruption (must fire).
The hypothesis property at the bottom is the satellite guarantee: any
single-byte corruption of a published cache entry is caught by at
least one ``CACHE`` checker.
"""

import json
import shutil
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Analyzer, AuditContext, audit_cache
from repro.buildcache import BuildCache, SigningKey, TrustStore
from repro.concretize import Concretizer, GroundProgramCache
from repro.installer import Installer
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


def build_cache(repo, tmp_path, signing_key=None, save=True):
    installer = Installer(tmp_path / "seed", repo)
    cache = BuildCache(tmp_path / "cache", signing_key=signing_key)
    spec = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
    installer.install(spec)
    installer.push_to_cache(cache, spec)
    if save:
        cache.save_index()
    return cache


def run_cache_checks(cache, trust=None, checks=("cache",)):
    return Analyzer(list(checks)).run(AuditContext(cache=cache, trust=trust))


def flip_byte(path: Path, offset: int = -2) -> None:
    data = bytearray(path.read_bytes())
    data[offset] = data[offset] ^ 0x01
    path.write_bytes(bytes(data))


class TestCleanCache:
    def test_saved_cache_is_clean(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        report = run_cache_checks(cache)
        assert report.clean, report.render()

    def test_signed_cache_with_trust_is_clean(self, repo, tmp_path):
        key = SigningKey.generate("publisher")
        cache = build_cache(repo, tmp_path, signing_key=key)
        trust = TrustStore([key])
        report = run_cache_checks(cache, trust=trust)
        assert report.clean, report.render()


class TestShards:
    def test_flipped_shard_byte_fires_cache001(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        shard = sorted((tmp_path / "cache" / "index.d").glob("*.json"))[0]
        flip_byte(shard)
        report = run_cache_checks(cache, checks=["cache.shards"])
        assert "CACHE001" in report.codes()
        assert "CACHE002" not in report.codes()

    def test_tampered_manifest_digest_fires_cache001_and_002(
        self, repo, tmp_path
    ):
        cache = build_cache(repo, tmp_path)
        index = tmp_path / "cache" / "index.json"
        doc = json.loads(index.read_text())
        prefix = sorted(doc["shards"])[0]
        doc["shards"][prefix]["digest"] = "0" * 64
        index.write_text(json.dumps(doc))
        report = run_cache_checks(cache, checks=["cache.shards"])
        assert {"CACHE001", "CACHE002"} <= set(report.codes())

    def test_unparseable_manifest_fires_cache002(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        (tmp_path / "cache" / "index.json").write_text("{ torn")
        report = run_cache_checks(cache, checks=["cache.shards"])
        assert report.codes() == ["CACHE002"]

    def test_wrong_spec_count_fires_cache001(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        index = tmp_path / "cache" / "index.json"
        doc = json.loads(index.read_text())
        prefix = sorted(doc["shards"])[0]
        doc["shards"][prefix]["specs"] += 7
        index.write_text(json.dumps(doc))
        report = run_cache_checks(cache, checks=["cache.shards"])
        # the count lie also changes nothing digest-wise, so only the
        # count cross-check catches it
        assert any(
            "spec(s) for shard" in d.message for d in report.diagnostics
        )


class TestSummary:
    def test_stale_sidecar_is_a_warning(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        sidecar = tmp_path / "cache" / "index.sum.json"
        doc = json.loads(sidecar.read_text())
        doc["digest"] = "0" * 64
        sidecar.write_text(json.dumps(doc))
        report = run_cache_checks(cache, checks=["cache.summary"])
        assert report.codes() == ["CACHE003"]
        assert not report.has_errors and report.warnings

    def test_false_negative_is_an_error(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        sidecar = tmp_path / "cache" / "index.sum.json"
        doc = json.loads(sidecar.read_text())
        prefix = sorted(
            p for p in doc["shards"] if doc["shards"][p]["hashes"]
        )[0]
        doc["shards"][prefix]["hashes"] = doc["shards"][prefix]["hashes"][1:]
        sidecar.write_text(json.dumps(doc))
        report = run_cache_checks(cache, checks=["cache.summary"])
        assert report.has_errors
        assert any("false negative" in d.message for d in report.errors)

    def test_phantom_entry_is_an_error(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        sidecar = tmp_path / "cache" / "index.sum.json"
        doc = json.loads(sidecar.read_text())
        prefix = sorted(doc["shards"])[0]
        doc["shards"][prefix]["hashes"].append(prefix + "f" * 30)
        doc["shards"][prefix]["hashes"].sort()
        sidecar.write_text(json.dumps(doc))
        report = run_cache_checks(cache, checks=["cache.summary"])
        assert report.has_errors
        assert any("phantom" in d.message for d in report.errors)

    def test_unreadable_sidecar_is_a_warning(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        (tmp_path / "cache" / "index.sum.json").write_text("not json")
        report = run_cache_checks(cache, checks=["cache.summary"])
        assert report.codes() == ["CACHE003"]
        assert not report.has_errors


class TestJournal:
    def _cache_with_unfolded_push(self, repo, tmp_path):
        # push_to_cache always folds; a bare cache.push does not
        cache = build_cache(repo, tmp_path)
        installer = Installer(tmp_path / "seed2", repo)
        zlib = Concretizer(repo).solve(["zlib"]).roots[0]
        installer.install(zlib)
        cache.push(zlib, installer.database.prefix_of(zlib))
        return cache

    def test_unfolded_entries_are_noted(self, repo, tmp_path):
        cache = self._cache_with_unfolded_push(repo, tmp_path)
        report = run_cache_checks(cache, checks=["cache.journal"])
        notes = [d for d in report.diagnostics if d.code == "CACHE004"]
        assert notes and "await a save_index fold" in notes[0].message

    def test_garbage_line_is_a_warning(self, repo, tmp_path):
        cache = self._cache_with_unfolded_push(repo, tmp_path)
        journal = tmp_path / "cache" / "journal.jsonl"
        with journal.open("a") as fh:
            fh.write("{ torn line\n")
        report = run_cache_checks(cache, checks=["cache.journal"])
        assert any(
            "unparseable" in d.message and d.severity.value == "warning"
            for d in report.diagnostics
        )


class TestEntries:
    def test_torn_blob_fires_cache005(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        payload = sorted((tmp_path / "cache" / "blobs").glob("*/files/lib/*"))[0]
        flip_byte(payload)
        report = run_cache_checks(cache, checks=["cache.entries"])
        assert any(
            "torn or tampered" in d.message for d in report.errors
        ), report.render()

    def test_missing_meta_fires_cache005(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        meta = sorted((tmp_path / "cache" / "blobs").glob("*/meta.json"))[0]
        meta.unlink()
        report = run_cache_checks(cache, checks=["cache.entries"])
        assert any("no meta.json" in d.message for d in report.errors)

    def test_file_missing_from_payload_fires_cache005(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        payload = sorted((tmp_path / "cache" / "blobs").glob("*/files/lib/*"))[0]
        payload.unlink()
        report = run_cache_checks(cache, checks=["cache.entries"])
        assert any(
            "payload does not contain it" in d.message for d in report.errors
        )

    def test_orphaned_blob_fires_cache006(self, repo, tmp_path):
        cache = build_cache(repo, tmp_path)
        entry = sorted((tmp_path / "cache" / "blobs").iterdir())[0]
        shutil.copytree(entry, entry.parent / ("f" * len(entry.name)))
        report = run_cache_checks(cache, checks=["cache.entries"])
        assert "CACHE006" in report.codes()
        assert any("orphaned payload" in d.message for d in report.warnings)

    def test_flipped_signature_fires_cache007(self, repo, tmp_path):
        key = SigningKey.generate("publisher")
        cache = build_cache(repo, tmp_path, signing_key=key)
        sig = sorted((tmp_path / "cache" / "blobs").glob("*/manifest.sig"))[0]
        doc = json.loads(sig.read_text())
        doc["signature"] = ("0" if doc["signature"][0] != "0" else "1") + doc[
            "signature"
        ][1:]
        sig.write_text(json.dumps(doc))
        report = run_cache_checks(
            cache, trust=TrustStore([key]), checks=["cache.entries"]
        )
        assert any(
            d.code == "CACHE007" and d.severity.value == "error"
            for d in report.diagnostics
        )

    def test_tampered_algorithm_fires_cache007(self, repo, tmp_path):
        """TrustStore.verify never reads the algorithm field, so the
        checker must cross-check it — HMAC alone lets it drift."""
        key = SigningKey.generate("publisher")
        cache = build_cache(repo, tmp_path, signing_key=key)
        sig = sorted((tmp_path / "cache" / "blobs").glob("*/manifest.sig"))[0]
        doc = json.loads(sig.read_text())
        doc["algorithm"] = " mac-sha256"
        sig.write_text(json.dumps(doc))
        report = run_cache_checks(
            cache, trust=TrustStore([key]), checks=["cache.entries"]
        )
        assert any(
            d.code == "CACHE007" and "unknown algorithm" in d.message
            for d in report.errors
        ), report.render()

    def test_missing_signature_warns_under_trust(self, repo, tmp_path):
        key = SigningKey.generate("publisher")
        cache = build_cache(repo, tmp_path, signing_key=key)
        for sig in (tmp_path / "cache" / "blobs").glob("*/manifest.sig"):
            sig.unlink()
        report = run_cache_checks(
            cache, trust=TrustStore([key]), checks=["cache.entries"]
        )
        assert all(d.code == "CACHE007" for d in report.diagnostics)
        assert report.warnings and not report.has_errors

    def test_malformed_signature_errors_without_trust(self, repo, tmp_path):
        key = SigningKey.generate("publisher")
        cache = build_cache(repo, tmp_path, signing_key=key)
        sig = sorted((tmp_path / "cache" / "blobs").glob("*/manifest.sig"))[0]
        sig.write_text('{"key_id": "x"}')
        report = run_cache_checks(cache, checks=["cache.entries"])
        assert any(
            d.code == "CACHE007" and "malformed" in d.message
            for d in report.errors
        )


class TestGroundCache:
    def _solved_ground_cache(self, repo, tmp_path):
        directory = tmp_path / "ground"
        directory.mkdir()
        Concretizer(repo, ground_cache=GroundProgramCache(directory)).solve(
            ["zlib"]
        )
        assert list(directory.glob("ground-*.pkl"))
        return directory

    def test_clean_ground_cache(self, repo, tmp_path):
        directory = self._solved_ground_cache(repo, tmp_path)
        report = Analyzer(["store.groundcache"]).run(
            AuditContext(ground_cache_dir=directory)
        )
        assert report.clean, report.render()

    def test_payload_digest_mismatch_fires_store001(self, repo, tmp_path):
        directory = self._solved_ground_cache(repo, tmp_path)
        flip_byte(sorted(directory.glob("ground-*.pkl"))[0])
        report = Analyzer(["store.groundcache"]).run(
            AuditContext(ground_cache_dir=directory)
        )
        assert any(
            "do not match the sidecar" in d.message for d in report.errors
        )

    def test_incomplete_pair_fires_store001(self, repo, tmp_path):
        directory = self._solved_ground_cache(repo, tmp_path)
        sorted(directory.glob("ground-*.json"))[0].unlink()
        report = Analyzer(["store.groundcache"]).run(
            AuditContext(ground_cache_dir=directory)
        )
        assert any("incomplete pair" in d.message for d in report.errors)


class TestStoreTree:
    def _store(self, repo, tmp_path):
        installer = Installer(tmp_path / "store", repo)
        spec = Concretizer(repo).solve(["zlib"]).roots[0]
        installer.install(spec)
        return installer.database, tmp_path / "store"

    def test_clean_store(self, repo, tmp_path):
        database, store = self._store(repo, tmp_path)
        report = Analyzer(["store.tree", "store.relocation"]).run(
            AuditContext(database=database, store=store)
        )
        assert report.clean, report.render()

    def test_orphaned_prefix_fires_store002(self, repo, tmp_path):
        database, store = self._store(repo, tmp_path)
        (store / ("ghost-9.9-" + "0" * 16)).mkdir()
        report = Analyzer(["store.tree"]).run(
            AuditContext(database=database, store=store)
        )
        assert any("orphaned install" in d.message for d in report.warnings)

    def test_leftover_staging_fires_store002(self, repo, tmp_path):
        database, store = self._store(repo, tmp_path)
        staging = store / ".staging" / "half-done"
        staging.mkdir(parents=True)
        report = Analyzer(["store.tree"]).run(
            AuditContext(database=database, store=store)
        )
        assert any("staging" in d.message for d in report.warnings)

    def test_unrelocated_prefix_fires_store003(self, repo, tmp_path):
        from repro.binary.mockelf import MockBinary

        database, store = self._store(repo, tmp_path)
        record = next(iter(database))
        lib = sorted((Path(record.prefix) / "lib").iterdir())[0]
        binary = MockBinary.read(lib)
        binary.rpaths = list(binary.rpaths) + ["/build-machine/deps/lib"]
        binary.write(lib)
        report = Analyzer(["store.relocation"]).run(
            AuditContext(database=database, store=store)
        )
        assert any(
            "/build-machine/deps/lib" in d.message for d in report.errors
        )


# ---------------------------------------------------------------------------
# the mutation property: any single-byte corruption is detected
# ---------------------------------------------------------------------------
_WHITESPACE = b" \t\n\r"


def _mutation_targets(root: Path):
    """Every file of a published cache entry, with the byte positions a
    corruption may land on.  Digest/signature-covered files accept any
    position; the unsigned JSON control files (index.json, sidecar)
    exclude whitespace bytes, which carry no meaning for any reader."""
    targets = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        data = path.read_bytes()
        if not data:
            continue
        rel = path.relative_to(root).as_posix()
        if rel in ("index.json", "index.sum.json") or rel.endswith(
            "manifest.sig"
        ):
            positions = [
                i for i, b in enumerate(data) if bytes([b]) not in _WHITESPACE
            ]
        else:
            positions = list(range(len(data)))
        if positions:
            targets.append((path, positions))
    return targets


@pytest.fixture(scope="module")
def pristine_cache(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("mutation")
    repo = make_mock_repo()
    key = SigningKey.generate("publisher")
    cache = build_cache(repo, tmp_path, signing_key=key)
    trust = TrustStore([key])
    baseline = run_cache_checks(cache, trust=trust)
    assert baseline.clean, baseline.render()
    return cache, trust, Path(cache.root)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_any_single_byte_corruption_is_detected(pristine_cache, data):
    cache, trust, root = pristine_cache
    targets = _mutation_targets(root)
    path, positions = data.draw(st.sampled_from(targets))
    position = data.draw(st.sampled_from(positions))
    original = path.read_bytes()
    new_byte = data.draw(
        st.integers(0, 255).filter(lambda b: b != original[position])
    )
    corrupted = bytearray(original)
    corrupted[position] = new_byte
    path.write_bytes(bytes(corrupted))
    try:
        report = run_cache_checks(cache, trust=trust)
        assert report.diagnostics, (
            f"corruption of {path.relative_to(root)} at byte {position} "
            f"({original[position]:#x} -> {new_byte:#x}) went undetected"
        )
        assert any(d.code.startswith("CACHE") for d in report.diagnostics)
    finally:
        path.write_bytes(original)
