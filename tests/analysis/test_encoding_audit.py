"""Encoding audits: unsafe variables, dataflow, splice reachability."""

import pytest

from repro.analysis import (
    AuditContext,
    Analyzer,
    Severity,
    audit_program,
    audit_repository,
    build_audit_program,
)
from repro.analysis.encoding import SOLVER_INPUTS, SOLVER_OUTPUTS
from repro.asp.syntax import (
    Atom,
    ChoiceElement,
    ChoiceHead,
    Comparison,
    Integer,
    Literal,
    Program,
    Rule,
    String,
    Variable,
)
from repro.buildcache.generate import greedy_concretize
from repro.package.directives import can_splice, depends_on, version
from repro.package.package import Package
from repro.package.repository import Repository
from repro.repos.mock import make_mock_repo


def atom(pred, *args):
    return Atom(pred, args)


def find(report, code):
    return [d for d in report.diagnostics if d.code == code]


class TestSafety:
    def test_unsafe_head_variable(self):
        # p(X) :- q("a").   X never bound
        program = Program()
        program.add_rule(
            Rule(atom("p", Variable("X")), [Literal(atom("q", String("a")))])
        )
        program.add_rule(Rule(None, [Literal(atom("p", String("a")))]))
        program.add_fact(atom("q", String("a")))
        report = audit_program(program)
        (d,) = find(report, "ASP001")
        assert d.severity is Severity.ERROR
        assert "X" in d.message

    def test_unsafe_negative_literal_variable(self):
        # :- not q(X).   X only occurs under negation
        program = Program()
        program.add_rule(
            Rule(None, [Literal(atom("q", Variable("X")), positive=False)])
        )
        program.add_rule(Rule(atom("q", String("a")), [Literal(atom("q", String("a")))]))
        report = audit_program(program)
        assert find(report, "ASP001")

    def test_assignment_comparison_binds(self):
        # p(Y) :- q(X), Y = X.   safe via assignment
        program = Program()
        program.add_rule(
            Rule(
                atom("p", Variable("Y")),
                [
                    Literal(atom("q", Variable("X"))),
                    Comparison("=", Variable("Y"), Variable("X")),
                ],
            )
        )
        program.add_rule(Rule(None, [Literal(atom("p", Variable("Z")))]))
        program.add_fact(atom("q", String("a")))
        report = audit_program(program)
        assert not find(report, "ASP001")

    def test_unsafe_choice_element_variable(self):
        # { p(X, Z) : q(X) } :- r("a").   Z unbound
        program = Program()
        head = ChoiceHead(
            [
                ChoiceElement(
                    atom("p", Variable("X"), Variable("Z")),
                    [Literal(atom("q", Variable("X")))],
                )
            ]
        )
        program.add_rule(Rule(head, [Literal(atom("r", String("a")))]))
        program.add_rule(Rule(None, [Literal(atom("p", Variable("A"), Variable("B")))]))
        program.add_fact(atom("q", String("a")))
        program.add_fact(atom("r", String("a")))
        report = audit_program(program)
        (d,) = find(report, "ASP001")
        assert "['Z']" in d.message  # X is safely bound by the condition


class TestDataflow:
    def test_asp002_derived_never_consumed(self):
        program = Program()
        program.add_fact(atom("orphan", String("x")))
        report = audit_program(program)
        (d,) = find(report, "ASP002")
        assert "orphan" in d.message
        assert d.severity is Severity.WARNING

    def test_asp003_consumed_never_derived(self):
        # a typo'd predicate name in a body
        program = Program()
        program.add_rule(
            Rule(atom("attr", String("node")), [Literal(atom("pkg_factt", Variable("P")))])
        )
        report = audit_program(program)
        (d,) = find(report, "ASP003")
        assert "pkg_factt" in d.message

    def test_solver_io_whitelists_are_disjoint_from_findings(self):
        program = Program()
        # consuming a known input and deriving the known output is clean
        program.add_rule(
            Rule(
                atom("attr", String("node"), Variable("P")),
                [Literal(atom("pkg", Variable("P")))],
            )
        )
        report = audit_program(program)
        assert not find(report, "ASP002") and not find(report, "ASP003")
        assert "pkg" in SOLVER_INPUTS and "attr" in SOLVER_OUTPUTS


class TestAssembledBuiltinProgram:
    def test_mock_program_is_safe_and_flow_clean(self):
        report = audit_repository(make_mock_repo(), checks=["encoding"])
        assert report.clean, report.render()

    def test_assembly_is_fault_tolerant(self):
        class Ok(Package):
            version("1.0")

        class Broken(Package):
            version("1.0")
            depends_on("ghost")  # encoder raises EncodingError

        repo = Repository("partial")
        repo.add(Ok)
        repo.add(Broken)
        program, notes = build_audit_program(repo)
        assert program.rules, "healthy packages still encoded"
        assert [n.code for n in notes] == ["ENC001"]
        assert notes[0].package == "broken"

    def test_enc001_surfaces_in_full_report(self):
        class Broken(Package):
            version("1.0")
            depends_on("ghost")

        repo = Repository("partial")
        repo.add(Broken)
        report = audit_repository(repo)
        assert find(report, "ENC001")
        # and the root cause is reported by the directive lints
        assert find(report, "DEP001")


class TestSpliceReach:
    def _repo(self):
        class Zlib(Package):
            version("1.3")
            version("1.2")
            can_splice("zlib@1.2", when="@1.3")

        class App(Package):
            version("1.0")
            depends_on("zlib")

        repo = Repository("reach")
        repo.add(Zlib)
        repo.add(App)
        return repo

    def test_asp004_fires_without_matching_install(self):
        repo = self._repo()
        new = greedy_concretize(repo, "app")  # depends on zlib@1.3
        context = AuditContext(repo=repo, reusable_specs=[new])
        report = Analyzer(["encoding.splice_reach"]).run(context)
        (d,) = find(report, "ASP004")
        assert d.package == "zlib"

    def test_asp004_silent_with_matching_install(self):
        repo = self._repo()
        old = greedy_concretize(repo, "app", versions={"zlib": "1.2"})
        context = AuditContext(repo=repo, reusable_specs=[old])
        report = Analyzer(["encoding.splice_reach"]).run(context)
        assert not find(report, "ASP004")

    def test_skipped_without_reusable_specs(self):
        report = audit_repository(self._repo())
        assert "encoding.splice_reach" in report.checkers_skipped
