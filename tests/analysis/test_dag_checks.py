"""Concrete-DAG invariant checks: seeded corruption for every code."""

import pytest

from repro.analysis import AuditContext, Analyzer, Severity, audit_specs, audit_store
from repro.buildcache.generate import greedy_concretize
from repro.installer.database import Database
from repro.package.directives import depends_on, variant, version
from repro.package.package import Package
from repro.package.repository import Repository
from repro.repos.mock import make_mock_repo
from repro.spec import parse_one


def find(report, code):
    return [d for d in report.diagnostics if d.code == code]


def mock_dag(root="app", **kw):
    return greedy_concretize(make_mock_repo(), root, **kw)


class TestProvenance:
    def test_healthy_splice_is_clean(self):
        repo = make_mock_repo()
        original = greedy_concretize(repo, "app", versions={"zlib": "1.2.11"})
        replacement = greedy_concretize(repo, "zlib")
        spliced = original.splice(replacement, transitive=False)
        report = audit_specs([spliced])
        assert report.clean, report.render()

    def test_dag001_non_concrete_build_spec(self):
        spec = mock_dag()
        spec.build_spec = parse_one("app@2.0")  # abstract
        (d,) = find(audit_specs([spec]), "DAG001")
        assert "non-concrete" in d.message

    def test_dag001_name_mismatch(self):
        spec = mock_dag()
        spec.build_spec = mock_dag("tool")
        report = audit_specs([spec])
        assert any("different package" in d.message for d in find(report, "DAG001"))

    def test_dag001_chained_provenance(self):
        spec = mock_dag()
        middle = mock_dag("app", versions={"zlib": "1.2.11"})
        middle.build_spec = mock_dag("app", versions={"zlib": "1.2"})
        spec.build_spec = middle
        report = audit_specs([spec])
        assert any("rooted" in d.message for d in find(report, "DAG001"))

    def test_dag001_identical_hash(self):
        spec = mock_dag()
        spec.dag_hash()  # cache the provenance-free hash...
        spec.build_spec = spec.copy()  # ...then bolt on provenance
        report = audit_specs([spec])
        assert any("identically" in d.message for d in find(report, "DAG001"))


class TestBuildEdges:
    def test_dag002_spliced_node_keeps_build_edge(self):
        spec = mock_dag(include_build_deps=True)  # app has a cmake build dep
        assert any(
            "link-run" not in e.deptypes for e in spec.edges()
        ), "precondition: greedy DAG carries a build-only edge"
        spec.build_spec = mock_dag(include_build_deps=True).copy()
        (d,) = find(audit_specs([spec]), "DAG002")
        assert "cmake" in d.message

    def test_real_splice_output_is_clean(self):
        spec = mock_dag(include_build_deps=False)  # runtime DAG only
        spec.build_spec = mock_dag(include_build_deps=True)
        assert not find(audit_specs([spec]), "DAG002")


class TestHashes:
    def test_dag003_stale_hash_cache(self):
        spec = mock_dag()
        spec.dag_hash()  # cache
        spec._hash = "deadbeef" * 4  # simulate a tampered/stale cache
        (d,) = find(audit_specs([spec]), "DAG003")
        assert d.severity is Severity.ERROR

    def test_fresh_dag_is_clean(self):
        assert not find(audit_specs([mock_dag()]), "DAG003")


class TestRepoConsistency:
    def _drifted_repo(self):
        class Zlib(Package):
            version("9.0")  # 1.x withdrawn

        repo = Repository("drifted")
        repo.add(Zlib)
        return repo

    def test_dag004_version_no_longer_declared(self):
        spec = greedy_concretize(make_mock_repo(), "zlib")  # zlib@1.3
        context = AuditContext(repo=self._drifted_repo(), concrete_specs=[spec])
        report = Analyzer(["dag.repo_consistency"]).run(context)
        found = find(report, "DAG004")
        assert all(d.severity is Severity.WARNING for d in found)
        assert any("no longer declares" in d.message for d in found)

    def test_dag004_unknown_package(self):
        spec = greedy_concretize(make_mock_repo(), "tool")
        context = AuditContext(repo=self._drifted_repo(), concrete_specs=[spec])
        report = Analyzer(["dag.repo_consistency"]).run(context)
        assert any("not in the" in d.message for d in find(report, "DAG004"))

    def test_dag004_undeclared_variant(self):
        class Example(Package):
            version("1.1.0")

        repo = Repository("novariant")
        repo.add(Example)
        spec = parse_one("example@1.1.0+bzip")
        spec.os, spec.target = "centos8", "skylake"
        spec._mark_concrete()
        context = AuditContext(repo=repo, concrete_specs=[spec])
        report = Analyzer(["dag.repo_consistency"]).run(context)
        assert any("variant" in d.message for d in find(report, "DAG004"))

    def test_matching_repo_is_clean(self):
        spec = mock_dag()
        context = AuditContext(repo=make_mock_repo(), concrete_specs=[spec])
        report = Analyzer(["dag.repo_consistency"]).run(context)
        assert report.clean, report.render()


class TestStore:
    def test_dag005_missing_prefix(self, tmp_path):
        db = Database(tmp_path / "store")
        db.add(mock_dag("zlib"), str(tmp_path / "store" / "zlib-nope"))
        (d,) = find(audit_store(db), "DAG005")
        assert "missing" in d.message

    def test_dag005_prefix_outside_store(self, tmp_path):
        db = Database(tmp_path / "store")
        rogue = tmp_path / "elsewhere" / "zlib"
        rogue.mkdir(parents=True)
        db.add(mock_dag("zlib"), str(rogue))
        (d,) = find(audit_store(db), "DAG005")
        assert "outside the store" in d.message

    def test_external_prefix_outside_store_is_fine(self, tmp_path):
        db = Database(tmp_path / "store")
        vendor = tmp_path / "opt" / "cray"
        vendor.mkdir(parents=True)
        spec = mock_dag("zlib")
        spec.external = True
        db.add(spec, str(vendor))
        assert not find(audit_store(db), "DAG005")

    def test_healthy_store_is_clean(self, tmp_path):
        store = tmp_path / "store"
        prefix = store / "zlib-1.3"
        prefix.mkdir(parents=True)
        db = Database(store)
        db.add(mock_dag("zlib"), str(prefix))
        report = audit_store(db, repo=make_mock_repo())
        assert report.clean, report.render()


class TestConcreteness:
    def test_dag006_missing_os_and_target(self):
        spec = parse_one("zlib@1.3")
        spec._mark_concrete()
        report = audit_specs([spec])
        messages = [d.message for d in find(report, "DAG006")]
        assert any("os" in m for m in messages)
        assert any("target" in m for m in messages)

    def test_dag006_not_marked_concrete(self):
        spec = parse_one("zlib@1.3")
        spec.os, spec.target = "centos8", "skylake"
        report = audit_specs([spec])
        assert any(
            "not marked concrete" in d.message for d in find(report, "DAG006")
        )
