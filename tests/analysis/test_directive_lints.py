"""Seeded-bug corpus for the directive lints: every code fires."""

import pytest

from repro.analysis import Severity, audit_repository
from repro.package.directives import (
    CanSpliceDecl,
    VariantDecl,
    can_splice,
    conflicts,
    depends_on,
    provides,
    variant,
    version,
)
from repro.package.package import Package
from repro.package.repository import Repository
from repro.spec import parse_one


def repo_with(*classes, preferences=None):
    repo = Repository("seeded")
    for cls in classes:
        repo.add(cls)
    if preferences:
        repo.provider_preferences.update(preferences)
    return repo


def codes(report, severity=None):
    return {
        d.code
        for d in report.diagnostics
        if severity is None or d.severity is severity
    }


def find(report, code):
    return [d for d in report.diagnostics if d.code == code]


class TestVersionLints:
    def test_pkg001_no_versions(self):
        class Empty(Package):
            pass

        report = audit_repository(repo_with(Empty), checks=["directives"])
        (d,) = find(report, "PKG001")
        assert d.severity is Severity.ERROR
        assert d.package == "empty"

    def test_pkg002_all_deprecated(self):
        class Old(Package):
            version("1.0", deprecated=True)
            version("0.9", deprecated=True)

        report = audit_repository(repo_with(Old), checks=["directives"])
        assert codes(report) == {"PKG002"}

    def test_ver001_duplicate_version(self):
        class Dup(Package):
            version("1.0")
            version("1.0")

        report = audit_repository(repo_with(Dup), checks=["directives"])
        (d,) = find(report, "VER001")
        assert d.directive == "version[1]"


class TestVariantLints:
    def test_var001_default_not_allowed(self):
        class Bad(Package):
            version("1.0")

        # the variant() directive validates eagerly, so inject the decl
        Bad.variant_decls = [VariantDecl("mode", "fast", ("safe", "slow"))]
        report = audit_repository(repo_with(Bad), checks=["directives"])
        (d,) = find(report, "VAR001")
        assert d.severity is Severity.ERROR
        assert d.directive == "variant[0]"

    def test_var002_duplicate_variant(self):
        class Dup(Package):
            version("1.0")
            variant("shared", default=True)
            variant("shared", default=False)

        report = audit_repository(repo_with(Dup), checks=["directives"])
        (d,) = find(report, "VAR002")
        assert d.directive == "variant[1]"


class TestDependencyLints:
    def test_dep001_dangling_dependency(self):
        class App(Package):
            version("1.0")
            depends_on("ghost")

        report = audit_repository(repo_with(App), checks=["directives"])
        (d,) = find(report, "DEP001")
        assert d.severity is Severity.ERROR
        assert "ghost" in d.message

    def test_dep002_unsatisfiable_version_range(self):
        class Lib(Package):
            version("2.0")

        class App(Package):
            version("1.0")
            depends_on("lib@3:")

        report = audit_repository(repo_with(Lib, App), checks=["directives"])
        (d,) = find(report, "DEP002")
        assert d.package == "app"

    def test_dep003_undeclared_variant(self):
        class Lib(Package):
            version("2.0")

        class App(Package):
            version("1.0")
            depends_on("lib+shared")

        report = audit_repository(repo_with(Lib, App), checks=["directives"])
        assert find(report, "DEP003")

    def test_dep004_constrained_virtual(self):
        class Mpich(Package):
            version("3.4")
            provides("mpi")

        class App(Package):
            version("1.0")
            depends_on("mpi@3:")

        report = audit_repository(repo_with(Mpich, App), checks=["directives"])
        assert find(report, "DEP004")


class TestWhenLints:
    def test_whn001_when_names_other_package(self):
        class Lib(Package):
            version("1.0")

        class App(Package):
            version("1.0")
            depends_on("lib", when=parse_one("lib@1.0"))

        report = audit_repository(repo_with(Lib, App), checks=["directives"])
        (d,) = find(report, "WHN001")
        assert d.severity is Severity.ERROR

    def test_whn002_unsatisfiable_when_version(self):
        class App(Package):
            version("2.0")
            variant("shared", default=True)
            depends_on("app", when="@1.0")  # no 1.x declared

        report = audit_repository(repo_with(App), checks=["directives"])
        (d,) = find(report, "WHN002")
        assert "never apply" in d.message

    def test_whn003_when_undeclared_variant(self):
        class App(Package):
            version("1.0")
            conflicts("@1.0", when="+turbo")

        report = audit_repository(repo_with(App), checks=["directives"])
        assert find(report, "WHN003")

    def test_whn004_when_dep_unknown(self):
        class App(Package):
            version("1.0")
            conflicts("@1.0", when="@1.0 ^ghost@2")

        report = audit_repository(repo_with(App), checks=["directives"])
        assert find(report, "WHN004")


class TestConflictLints:
    def test_con001_conflict_covers_everything(self):
        class App(Package):
            version("1.0")
            version("2.0")
            conflicts("@1:2")

        report = audit_repository(repo_with(App), checks=["directives"])
        (d,) = find(report, "CON001")
        assert d.severity is Severity.ERROR

    def test_partial_conflict_is_fine(self):
        class App(Package):
            version("1.0")
            version("2.0")
            conflicts("@1.0")

        report = audit_repository(repo_with(App), checks=["directives"])
        assert not find(report, "CON001")


class TestVirtualLints:
    def test_vir001_virtual_shadows_package(self):
        class Mpi(Package):
            version("1.0")

        class Mpich(Package):
            version("3.4")
            provides("mpi")

        report = audit_repository(repo_with(Mpi, Mpich), checks=["directives"])
        (d,) = find(report, "VIR001")
        assert d.package == "mpich"

    def test_vir002_preference_for_non_provider(self):
        class Mpich(Package):
            version("3.4")
            provides("mpi")

        repo = repo_with(Mpich, preferences={"mpi": ["openmpi"]})
        report = audit_repository(repo, checks=["directives"])
        assert find(report, "VIR002")

    def test_vir002_preference_for_unprovided_virtual(self):
        class Zlib(Package):
            version("1.3")

        repo = repo_with(Zlib, preferences={"blas": ["openblas"]})
        report = audit_repository(repo, checks=["directives"])
        assert find(report, "VIR002")


class TestCanSpliceLints:
    def test_spl001_unknown_target(self):
        class Zlib(Package):
            version("1.3")
            can_splice("zlibb@1.2")  # typo'd target

        report = audit_repository(repo_with(Zlib), checks=["directives"])
        (d,) = find(report, "SPL001")
        assert d.severity is Severity.ERROR
        assert d.directive == "can_splice[0]"

    def test_spl001_anonymous_target(self):
        class Zlib(Package):
            version("1.3")

        Zlib.can_splice_decls = [CanSpliceDecl(parse_one("@1.2"))]
        report = audit_repository(repo_with(Zlib), checks=["directives"])
        assert find(report, "SPL001")

    def test_spl002_target_version_never_declared(self):
        class Zlib(Package):
            version("1.3")
            version("1.2.11")
            can_splice("zlib@0.9")

        report = audit_repository(repo_with(Zlib), checks=["directives"])
        (d,) = find(report, "SPL002")
        assert "never" in d.message

    def test_spl003_duplicate_and_shadowed(self):
        class Zlib(Package):
            version("1.3")
            version("1.2")
            can_splice("zlib@1.2")
            can_splice("zlib@1.2")              # exact duplicate
            can_splice("zlib@1.2", when="@1.3")  # shadowed by [0]

        report = audit_repository(repo_with(Zlib), checks=["directives"])
        found = find(report, "SPL003")
        assert {d.directive for d in found} == {
            "can_splice[1]", "can_splice[2]"
        }


class TestCleanRepoStaysClean:
    def test_well_formed_repo_no_directive_findings(self):
        class Zlib(Package):
            version("1.3")
            version("1.2")
            can_splice("zlib@1.2", when="@1.3")

        class App(Package):
            version("1.0")
            variant("shared", default=True)
            depends_on("zlib@1.2:")

        report = audit_repository(repo_with(Zlib, App), checks=["directives"])
        assert report.clean, report.render()
