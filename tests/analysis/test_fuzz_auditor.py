"""Hypothesis fuzz: the auditor never crashes and never mutates state.

Repositories are generated directive-by-directive, deliberately
including pathology the directive functions themselves would reject
(anonymous splice targets, defaults outside allowed values, dangling
names) by constructing the decl dataclasses directly — exactly what a
buggy or hostile package repo could hand the auditor.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import audit_repository
from repro.package.directives import (
    CanSpliceDecl,
    ConflictDecl,
    DependencyDecl,
    ProvidesDecl,
    VariantDecl,
    VersionDecl,
)
from repro.package.package import DirectiveMeta, Package
from repro.package.repository import Repository
from repro.spec import Version, parse_one

NAMES = ("alpha", "beta", "gamma", "delta", "ghost", "mpi")
VERSIONS = ("1.0", "1.1", "1.2.3", "2.0", "3")
VALUES = ("a", "b", "c")

spec_texts = st.one_of(
    st.sampled_from(NAMES),
    st.builds(
        lambda n, v: f"{n}@{v}", st.sampled_from(NAMES), st.sampled_from(VERSIONS)
    ),
    st.builds(
        lambda n, v: f"{n}+{v}", st.sampled_from(NAMES), st.sampled_from(("x", "shared"))
    ),
    st.builds(lambda v: f"@{v}", st.sampled_from(VERSIONS)),  # anonymous!
)
specs = st.builds(parse_one, spec_texts)
maybe_when = st.one_of(st.none(), specs)

version_decls = st.builds(
    VersionDecl,
    st.builds(Version, st.sampled_from(VERSIONS)),
    st.none(),
    st.booleans(),
    st.booleans(),
)
variant_decls = st.builds(
    VariantDecl,
    st.sampled_from(("x", "shared", "mode")),
    st.one_of(st.booleans(), st.sampled_from(VALUES + ("rogue",))),
    st.one_of(st.none(), st.tuples(*[st.sampled_from(VALUES)] * 2)),
    st.just(""),
    maybe_when,
)
dependency_decls = st.builds(
    DependencyDecl, specs, maybe_when, st.sampled_from((("link-run",), ("build",)))
)
provides_decls = st.builds(ProvidesDecl, specs, maybe_when)
conflict_decls = st.builds(ConflictDecl, specs, maybe_when, st.just(""))
can_splice_decls = st.builds(CanSpliceDecl, specs, maybe_when)


@st.composite
def repositories(draw):
    repo = Repository("fuzz")
    package_names = draw(
        st.lists(st.sampled_from(NAMES[:4]), min_size=1, max_size=3, unique=True)
    )
    for name in package_names:
        cls = DirectiveMeta(name.title(), (Package,), {"name": name})
        cls.version_decls = draw(st.lists(version_decls, max_size=3))
        cls.variant_decls = draw(st.lists(variant_decls, max_size=2))
        cls.dependency_decls = draw(st.lists(dependency_decls, max_size=2))
        cls.provides_decls = draw(st.lists(provides_decls, max_size=1))
        cls.conflict_decls = draw(st.lists(conflict_decls, max_size=1))
        cls.can_splice_decls = draw(st.lists(can_splice_decls, max_size=2))
        repo.add(cls)
    if draw(st.booleans()):
        repo.provider_preferences[draw(st.sampled_from(NAMES))] = [
            draw(st.sampled_from(NAMES))
        ]
    return repo


def snapshot(repo):
    """Deep observable state of a repository, for mutation detection."""
    state = {"preferences": {k: list(v) for k, v in repo.provider_preferences.items()}}
    for pkg_cls in repo:
        state[pkg_cls.name] = {
            "versions": [repr(d) for d in pkg_cls.version_decls],
            "variants": [repr(d) for d in pkg_cls.variant_decls],
            "dependencies": [repr(d) for d in pkg_cls.dependency_decls],
            "provides": [repr(d) for d in pkg_cls.provides_decls],
            "conflicts": [repr(d) for d in pkg_cls.conflict_decls],
            "can_splice": [repr(d) for d in pkg_cls.can_splice_decls],
            "providers": {
                v: list(repo.providers(v)) for v in repo.virtual_names()
            },
        }
    return state


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(repositories())
def test_auditor_never_crashes_and_never_mutates(repo):
    before = snapshot(repo)
    report = audit_repository(repo)
    # 1. no crash (we got here) and a well-formed, sorted report
    keys = [d.sort_key() for d in report.diagnostics]
    assert keys == sorted(keys)
    for diag in report.diagnostics:
        assert diag.code and diag.message
    # 2. deterministic: a second run sees identical findings
    again = audit_repository(repo)
    assert [str(d) for d in again.diagnostics] == [
        str(d) for d in report.diagnostics
    ]
    # 3. the repository is untouched
    assert snapshot(repo) == before


@settings(max_examples=30, deadline=None)
@given(repositories())
def test_json_report_always_serializes(repo):
    import json

    doc = json.loads(audit_repository(repo).to_json())
    assert doc["schema_version"] == 2
    assert set(doc["summary"]) == {"error", "warning", "note"}
