"""`repro audit` CLI behavior: exit codes, JSON, filtering, --strict."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCleanRepos:
    @pytest.mark.parametrize("repo", ["mock", "radiuss"])
    def test_builtin_repo_exits_zero(self, capsys, repo):
        code, out, _ = run(capsys, "--repo", repo, "audit")
        assert code == 0
        assert "audit: clean" in out

    def test_json_output_is_parseable_and_clean(self, capsys):
        code, out, _ = run(capsys, "--repo", "mock", "audit", "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["clean"] is True
        assert doc["schema_version"] == 1
        assert doc["diagnostics"] == []
        assert doc["checkers_run"]


class TestSeededFailures:
    @pytest.fixture
    def broken_repo(self, tmp_path):
        """An on-disk repo with a dangling dependency (DEP001)."""
        pkg = tmp_path / "broken-repo" / "app"
        pkg.mkdir(parents=True)
        (pkg / "package.py").write_text(
            'class App(Package):\n'
            '    version("1.0")\n'
            '    depends_on("ghost")\n'
        )
        return tmp_path / "broken-repo"

    @pytest.fixture
    def warning_repo(self, tmp_path):
        """An on-disk repo with only a warning (PKG002: all deprecated)."""
        pkg = tmp_path / "warn-repo" / "old"
        pkg.mkdir(parents=True)
        (pkg / "package.py").write_text(
            'class Old(Package):\n'
            '    version("1.0", deprecated=True)\n'
        )
        return tmp_path / "warn-repo"

    def test_error_diagnostic_exits_one(self, capsys, broken_repo):
        code, out, _ = run(capsys, "--repo", str(broken_repo), "audit")
        assert code == 1
        assert "DEP001" in out

    def test_json_carries_the_diagnostics(self, capsys, broken_repo):
        code, out, _ = run(capsys, "--repo", str(broken_repo), "audit", "--json")
        assert code == 1
        doc = json.loads(out)
        assert doc["clean"] is False
        assert "DEP001" in doc["codes"]
        (diag,) = [d for d in doc["diagnostics"] if d["code"] == "DEP001"]
        assert diag["package"] == "app"
        assert diag["severity"] == "error"

    def test_warnings_pass_unless_strict(self, capsys, warning_repo):
        code, out, _ = run(capsys, "--repo", str(warning_repo), "audit")
        assert code == 0
        assert "PKG002" in out

    def test_strict_promotes_warnings(self, capsys, warning_repo):
        code, _, _ = run(capsys, "--repo", str(warning_repo), "audit", "--strict")
        assert code == 1


class TestCheckSelection:
    def test_list_checks(self, capsys):
        code, out, _ = run(capsys, "--repo", "mock", "audit", "--list-checks")
        assert code == 0
        for name in ("directives.can_splice", "encoding.safety", "dag.hashes"):
            assert name in out
        assert "SPL001" in out

    def test_check_filter_by_family(self, capsys):
        code, out, _ = run(
            capsys, "--repo", "mock", "audit", "--json", "--check", "dag"
        )
        assert code == 0
        doc = json.loads(out)
        assert all(name.startswith("dag.") for name in doc["checkers_run"])

    def test_unknown_check_exits_two(self, capsys):
        code, _, err = run(
            capsys, "--repo", "mock", "audit", "--check", "nonsense"
        )
        assert code == 2
        assert "nonsense" in err


class TestStoreAudit:
    def test_audit_with_store(self, capsys, tmp_path):
        store = tmp_path / "store"
        code, _, _ = run(
            capsys, "--repo", "mock", "install", "--store", str(store), "zlib"
        )
        assert code == 0
        code, out, _ = run(
            capsys,
            "--repo", "mock", "audit", "--store", str(store), "--json",
        )
        assert code == 0
        doc = json.loads(out)
        assert "dag.store" in doc["checkers_run"]
        assert "dag.provenance" in doc["checkers_run"]
