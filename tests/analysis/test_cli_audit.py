"""`repro audit` CLI behavior: exit codes, JSON, filtering, --strict."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCleanRepos:
    @pytest.mark.parametrize("repo", ["mock", "radiuss"])
    def test_builtin_repo_exits_zero(self, capsys, repo):
        code, out, _ = run(capsys, "--repo", repo, "audit")
        assert code == 0
        assert "audit: clean" in out

    def test_json_output_is_parseable_and_clean(self, capsys):
        code, out, _ = run(capsys, "--repo", "mock", "audit", "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["clean"] is True
        assert doc["schema_version"] == 2
        assert doc["diagnostics"] == []
        assert doc["checkers_run"]


class TestSeededFailures:
    @pytest.fixture
    def broken_repo(self, tmp_path):
        """An on-disk repo with a dangling dependency (DEP001)."""
        pkg = tmp_path / "broken-repo" / "app"
        pkg.mkdir(parents=True)
        (pkg / "package.py").write_text(
            'class App(Package):\n'
            '    version("1.0")\n'
            '    depends_on("ghost")\n'
        )
        return tmp_path / "broken-repo"

    @pytest.fixture
    def warning_repo(self, tmp_path):
        """An on-disk repo with only a warning (PKG002: all deprecated)."""
        pkg = tmp_path / "warn-repo" / "old"
        pkg.mkdir(parents=True)
        (pkg / "package.py").write_text(
            'class Old(Package):\n'
            '    version("1.0", deprecated=True)\n'
        )
        return tmp_path / "warn-repo"

    def test_error_diagnostic_exits_one(self, capsys, broken_repo):
        code, out, _ = run(capsys, "--repo", str(broken_repo), "audit")
        assert code == 1
        assert "DEP001" in out

    def test_json_carries_the_diagnostics(self, capsys, broken_repo):
        code, out, _ = run(capsys, "--repo", str(broken_repo), "audit", "--json")
        assert code == 1
        doc = json.loads(out)
        assert doc["clean"] is False
        assert "DEP001" in doc["codes"]
        (diag,) = [d for d in doc["diagnostics"] if d["code"] == "DEP001"]
        assert diag["package"] == "app"
        assert diag["severity"] == "error"
        assert diag["family"] == "DEP"

    def test_diagnostics_sorted_by_family_code_location(
        self, capsys, broken_repo
    ):
        code, out, _ = run(capsys, "--repo", str(broken_repo), "audit", "--json")
        doc = json.loads(out)
        keys = [
            (d["family"], d["code"], d["location"])
            for d in doc["diagnostics"]
        ]
        assert keys == sorted(keys)
        # and the whole document is byte-identical run-to-run
        _, out2, _ = run(capsys, "--repo", str(broken_repo), "audit", "--json")
        assert out == out2

    def test_warnings_pass_unless_strict(self, capsys, warning_repo):
        code, out, _ = run(capsys, "--repo", str(warning_repo), "audit")
        assert code == 0
        assert "PKG002" in out

    def test_strict_promotes_warnings(self, capsys, warning_repo):
        code, _, _ = run(capsys, "--repo", str(warning_repo), "audit", "--strict")
        assert code == 1


class TestCheckSelection:
    def test_list_checks(self, capsys):
        code, out, _ = run(capsys, "--repo", "mock", "audit", "--list-checks")
        assert code == 0
        for name in ("directives.can_splice", "encoding.safety", "dag.hashes"):
            assert name in out
        assert "SPL001" in out

    def test_check_filter_by_family(self, capsys):
        code, out, _ = run(
            capsys, "--repo", "mock", "audit", "--json", "--check", "dag"
        )
        assert code == 0
        doc = json.loads(out)
        assert all(name.startswith("dag.") for name in doc["checkers_run"])

    def test_unknown_check_exits_two(self, capsys):
        code, _, err = run(
            capsys, "--repo", "mock", "audit", "--check", "nonsense"
        )
        assert code == 2
        assert "nonsense" in err


class TestBadPaths:
    """Unusable inputs are CLI errors (exit 2, one line on stderr) —
    distinct from exit 1, which means the audit ran and found problems."""

    def test_missing_cache_exits_two(self, capsys, tmp_path):
        code, _, err = run(
            capsys, "--repo", "mock", "audit",
            "--cache", str(tmp_path / "nope"),
        )
        assert code == 2
        assert "error:" in err and "does not exist" in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_store_exits_two(self, capsys, tmp_path):
        code, _, err = run(
            capsys, "--repo", "mock", "audit",
            "--store", str(tmp_path / "nope"),
        )
        assert code == 2
        assert "does not exist" in err

    def test_missing_ground_cache_exits_two(self, capsys, tmp_path):
        code, _, err = run(
            capsys, "--repo", "mock", "audit",
            "--ground-cache", str(tmp_path / "nope"),
        )
        assert code == 2
        assert "ground cache" in err

    def test_corrupt_database_exits_two(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "db.json").write_text("{ not json")
        code, _, err = run(
            capsys, "--repo", "mock", "audit", "--store", str(store)
        )
        assert code == 2
        assert "install database" in err

    def test_corrupt_index_still_audits(self, capsys, tmp_path):
        """A cache that opens but whose index is torn is a *finding*
        (exit 1 with CACHE diagnostics), not a CLI error."""
        from repro.buildcache import BuildCache
        from repro.concretize import Concretizer
        from repro.installer import Installer
        from repro.repos.mock import make_mock_repo

        repo = make_mock_repo()
        cache = BuildCache(tmp_path / "cache")
        spec = Concretizer(repo).solve(["zlib"]).roots[0]
        installer = Installer(tmp_path / "seed", repo)
        installer.install(spec)
        installer.push_to_cache(cache, spec)
        cache.save_index()
        shard_dir = tmp_path / "cache" / "index.d"
        shard = next(shard_dir.glob("*.json"))
        shard.write_text("{ torn")
        code, out, _ = run(
            capsys, "--repo", "mock", "audit",
            "--cache", str(tmp_path / "cache"), "--json",
        )
        assert code == 1
        doc = json.loads(out)
        assert "CACHE001" in doc["codes"]


class TestStoreAudit:
    def test_audit_with_store(self, capsys, tmp_path):
        store = tmp_path / "store"
        code, _, _ = run(
            capsys, "--repo", "mock", "install", "--store", str(store), "zlib"
        )
        assert code == 0
        code, out, _ = run(
            capsys,
            "--repo", "mock", "audit", "--store", str(store), "--json",
        )
        assert code == 0
        doc = json.loads(out)
        assert "dag.store" in doc["checkers_run"]
        assert "dag.provenance" in doc["checkers_run"]
