"""Concretizer fundamentals: versions, variants, deps, virtuals, conflicts."""

import pytest

from repro.concretize import Concretizer, EncodingError, UnsatisfiableError
from repro.package import (
    Package,
    Repository,
    conflicts,
    depends_on,
    provides,
    requires,
    variant,
    version,
)
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def concretizer(repo):
    return Concretizer(repo)


class TestVersionSelection:
    def test_newest_by_default(self, concretizer):
        root = concretizer.solve(["zlib"]).roots[0]
        assert root.version.string == "1.3"

    def test_user_pin(self, concretizer):
        root = concretizer.solve(["zlib@=1.2"]).roots[0]
        assert root.version.string == "1.2"

    def test_prefix_constraint(self, concretizer):
        root = concretizer.solve(["zlib@1.2"]).roots[0]
        assert root.version.string == "1.2.11", "newest 1.2.x wins"

    def test_range_constraint(self, concretizer):
        root = concretizer.solve(["zlib@:1.1"]).roots[0]
        assert root.version.string == "1.1"

    def test_unknown_version_unsat(self, concretizer):
        with pytest.raises(UnsatisfiableError):
            concretizer.solve(["zlib@=9.9"])

    def test_unknown_package_rejected(self, concretizer):
        with pytest.raises(EncodingError):
            concretizer.solve(["no-such-package"])


class TestVariants:
    def test_defaults_applied(self, concretizer):
        root = concretizer.solve(["example"]).roots[0]
        assert root.variants["bzip"] == "True"

    def test_user_override(self, concretizer):
        root = concretizer.solve(["example~bzip"]).roots[0]
        assert root.variants["bzip"] == "False"

    def test_multivalued_default(self, concretizer):
        root = concretizer.solve(["mpich"]).roots[0]
        assert root.variants["pmi"] == "pmix"

    def test_multivalued_choice(self, concretizer):
        root = concretizer.solve(["mpich pmi=slurm"]).roots[0]
        assert root.variants["pmi"] == "slurm"

    def test_invalid_value_unsat(self, concretizer):
        with pytest.raises(UnsatisfiableError):
            concretizer.solve(["mpich pmi=bogus"])

    def test_all_nodes_fully_concrete(self, concretizer):
        root = concretizer.solve(["app"]).roots[0]
        root.validate_concrete()


class TestDependencies:
    def test_conditional_on_variant(self, concretizer):
        with_bzip = concretizer.solve(["example+bzip"]).roots[0]
        assert "bzip2" in with_bzip
        without = concretizer.solve(["example~bzip"]).roots[0]
        assert "bzip2" not in without

    def test_conditional_on_version_paper_example(self, concretizer):
        """Section 3.3's concretization: example@1.0.0 pulls zlib@1.2.x."""
        old = concretizer.solve(["example@1.0.0"]).roots[0]
        assert old["zlib"].version.string == "1.2.11"
        new = concretizer.solve(["example@1.1.0"]).roots[0]
        assert new["zlib"].version.string == "1.3"

    def test_dependency_constraint_from_user(self, concretizer):
        # forcing old zlib forces example down to 1.0.0 (its zlib@1.2 dep)
        root = concretizer.solve(["tool ^zlib@1.2"]).roots[0]
        assert root["zlib"].version.string == "1.2.11"
        assert root["example"].version.string == "1.0.0"

    def test_transitively_impossible_dep_constraint_unsat(self, concretizer):
        # no example version accepts zlib@1.1, and tool needs example
        with pytest.raises(UnsatisfiableError):
            concretizer.solve(["tool ^zlib@1.1"])

    def test_build_dependencies_present_for_builds(self, concretizer):
        root = concretizer.solve(["app"]).roots[0]
        from repro.spec import DEPTYPE_BUILD

        edge = root.dependency_edge("cmake")
        assert edge is not None and DEPTYPE_BUILD in edge.deptypes

    def test_single_version_per_package_in_dag(self, concretizer):
        # tool depends on zlib and example (which also needs zlib)
        root = concretizer.solve(["tool"]).roots[0]
        zlib_versions = {
            node.version.string for node in root.traverse() if node.name == "zlib"
        }
        assert len(zlib_versions) == 1

    def test_joint_concretization_shares_nodes(self, concretizer):
        result = concretizer.solve(["example", "example-ng"])
        a, b = result.roots
        assert a["zlib"].dag_hash() == b["zlib"].dag_hash()


class TestVirtuals:
    def test_default_provider(self, concretizer):
        root = concretizer.solve(["example"]).roots[0]
        assert "mpich" in root

    def test_explicit_provider(self, concretizer):
        root = concretizer.solve(["example ^openmpi"]).roots[0]
        assert "openmpi" in root and "mpich" not in root

    def test_one_mpi_implementation_per_dag(self, concretizer):
        result = concretizer.solve(["example ^openmpi", "example-ng"])
        names = set()
        for root in result.roots:
            names.update(n.name for n in root.traverse())
        assert not ({"mpich", "openmpi"} <= names), "one MPI per DAG"

    def test_cannot_request_virtual_directly(self, concretizer):
        with pytest.raises(EncodingError):
            concretizer.solve(["mpi"])

    def test_forbidden_provider(self, repo):
        concretizer = Concretizer(repo)
        result = concretizer.solve(["example"], forbidden=["mpich"])
        assert "mpich" not in result.roots[0]


class TestConflicts:
    def test_conflict_blocks_combination(self, concretizer):
        # app conflicts("@1.0 ^zlib@1.0")
        with pytest.raises(UnsatisfiableError):
            concretizer.solve(["app@1.0 ^zlib@=1.0 ^example@1.0.0"])

    def test_conflict_avoided_by_other_choice(self, concretizer):
        # zlib@1.0 is fine for app@2.0
        root = concretizer.solve(["app@2.0"]).roots[0]
        assert root.version.string == "2.0"


class TestRequires:
    def test_requires_enforced(self):
        repo = Repository()

        class Libfoo(Package):
            version("2.0")
            version("1.0")
            variant("shared", default=False)
            requires("+shared", when="@2:")

        repo.add(Libfoo)
        root = Concretizer(repo).solve(["libfoo@2.0"]).roots[0]
        assert root.variants["shared"] == "True", "requires overrides default"

    def test_requires_conflict_unsat(self):
        repo = Repository()

        class Libbar(Package):
            version("2.0")
            variant("shared", default=False)
            requires("+shared")

        repo.add(Libbar)
        with pytest.raises(UnsatisfiableError):
            Concretizer(repo).solve(["libbar~shared"])


class TestArch:
    def test_defaults(self, concretizer):
        root = concretizer.solve(["zlib"]).roots[0]
        assert root.os == "centos8" and root.target == "skylake"

    def test_custom_defaults(self, repo):
        concretizer = Concretizer(repo, default_os="sles15", default_target="zen3")
        root = concretizer.solve(["zlib"]).roots[0]
        assert root.os == "sles15" and root.target == "zen3"

    def test_uniform_across_dag(self, concretizer):
        root = concretizer.solve(["app"]).roots[0]
        assert len({n.os for n in root.traverse()}) == 1
        assert len({n.target for n in root.traverse()}) == 1


class TestNotBuildable:
    def test_not_buildable_without_binary_unsat(self):
        repo = Repository()

        class Vendor(Package):
            version("1.0")
            buildable = False

        repo.add(Vendor)
        with pytest.raises(UnsatisfiableError):
            Concretizer(repo).solve(["vendor"])


class TestConditionalProvides:
    def _repo(self):
        from repro.package import (
            Package,
            Repository,
            depends_on,
            provides,
            variant,
            version,
        )

        repo = Repository()

        class Netlib(Package):
            version("3.11")
            provides("blas")

        class Flexiblas(Package):
            version("1.0")
            variant("blas", default=False)
            provides("blas", when="+blas")

        class Consumer(Package):
            version("1.0")
            depends_on("blas")

        for cls in (Netlib, Flexiblas, Consumer):
            repo.add(cls)
        return repo

    def test_unconditional_provider_default(self):
        result = Concretizer(self._repo()).solve(["consumer"])
        assert "netlib" in result.roots[0]

    def test_conditional_provider_when_enabled(self):
        result = Concretizer(self._repo()).solve(["consumer ^flexiblas+blas"])
        root = result.roots[0]
        assert "flexiblas" in root and "netlib" not in root

    def test_conditional_provider_disabled_unsat(self):
        with pytest.raises(UnsatisfiableError):
            Concretizer(self._repo()).solve(["consumer ^flexiblas~blas"])


class TestCompilerRequests:
    def test_percent_creates_build_edge(self):
        from repro.repos.radiuss import make_radiuss_repo
        from repro.spec import DEPTYPE_BUILD

        repo = make_radiuss_repo()
        root = Concretizer(repo).solve(["raja %gcc@12"]).roots[0]
        edge = root.dependency_edge("gcc")
        assert edge is not None and DEPTYPE_BUILD in edge.deptypes
        assert root["gcc"].version.string == "12.3.0"

    def test_compiler_choice_is_constrainable(self):
        from repro.repos.radiuss import make_radiuss_repo

        repo = make_radiuss_repo()
        root = Concretizer(repo).solve(["zfp %llvm"]).roots[0]
        assert "llvm" in root
