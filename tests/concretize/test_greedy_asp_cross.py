"""Greedy/ASP cross-validation (the ROADMAP hypothesis candidate).

Two independent concretizer implementations exist: the ASP solver and
the greedy walker the buildcache generator uses to mass-produce specs.
Property: for any root (optionally version-pinned) in the shipped
repositories, both produce the *same* concrete DAG — and a greedy
runtime DAG is always admissible as a full-reuse input to the solver.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.buildcache.generate import greedy_concretize
from repro.concretize import Concretizer
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import RADIUSS_ROOTS, make_radiuss_repo

MOCK_ROOTS = sorted(p.name for p in make_mock_repo())


def canon(spec):
    """Order-independent canonical form of a concrete DAG."""
    nodes = {}
    for node in spec.traverse():
        nodes[node.name] = (
            str(node.version),
            tuple(sorted((k, str(v)) for k, v in node.variants.items())),
            node.os,
            node.target,
            tuple(
                sorted(
                    (e.spec.name, tuple(sorted(e.deptypes)))
                    for e in node.edges()
                )
            ),
        )
    return nodes


@st.composite
def root_requests(draw, repo_factory, roots):
    """A root name plus an optional declared-version pin for it."""
    repo = repo_factory()
    root = draw(st.sampled_from(roots))
    versions = {}
    if draw(st.booleans()):
        declared = [
            d.version for d in repo.get(root).version_decls if not d.deprecated
        ]
        # a greedy pin is exact, but the spec request "@1.2" is a
        # prefix-closed range — only sample pins the range semantics
        # cannot widen (no other declared version has the pin as prefix)
        exact = [
            str(v)
            for v in declared
            if not any(o != v and v.is_prefix_of(o) for o in declared)
        ]
        if exact:
            versions[root] = draw(st.sampled_from(exact))
    return repo, root, versions


class TestDagEquality:
    """greedy(root) == asp(root), node for node, edge for edge."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root_requests(make_mock_repo, MOCK_ROOTS))
    def test_mock(self, request):
        repo, root, versions = request
        self._check(repo, root, versions)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root_requests(make_radiuss_repo, RADIUSS_ROOTS))
    def test_radiuss(self, request):
        repo, root, versions = request
        self._check(repo, root, versions)

    def _check(self, repo, root, versions):
        greedy = greedy_concretize(repo, root, versions=versions)
        request = f"{root}@{versions[root]}" if versions else root
        result = Concretizer(repo).solve([request])
        (solved,) = result.roots
        assert canon(greedy) == canon(solved)


class TestReuseAdmissibility:
    """A greedy runtime DAG offered as a reusable spec is taken whole:
    the solver builds nothing and lands on the same root."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root_requests(make_radiuss_repo, RADIUSS_ROOTS))
    def test_full_reuse(self, request):
        repo, root, versions = request
        installed = greedy_concretize(
            repo, root, versions=versions, include_build_deps=False
        )
        query = f"{root}@{versions[root]}" if versions else root
        result = Concretizer(repo, reusable_specs=[installed]).solve([query])
        assert result.built == []
        (solved,) = result.roots
        assert solved.dag_hash() == installed.dag_hash()


def _non_provider_roots(repo, roots):
    """Roots that do not themselves provide a virtual.

    A root that *is* a provider (e.g. mpiabi) changes the joint
    optimum for every other root using that virtual — the environment
    unifies on the already-required provider instead of the preferred
    one.  That is desired batch behavior (pinned separately below) but
    breaks naive per-root parity, so the parity property excludes such
    roots.
    """
    return [r for r in roots if not getattr(repo.get(r), "provides_decls", ())]


class TestBatchParity:
    """``solve_all(roots)`` == N single-root solves, DAG for DAG.

    Holds whenever the roots are independent (none is a virtual
    provider another root could unify on): each per-root view of the
    joint model must be exactly what a lone solve of that root
    produces, and shared dependencies must resolve to one node.
    """

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_mock(self, data):
        repo = make_mock_repo()
        roots = data.draw(st.lists(
            st.sampled_from(_non_provider_roots(repo, MOCK_ROOTS)),
            min_size=1, max_size=4, unique=True,
        ))
        self._check(repo, roots)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_radiuss(self, data):
        repo = make_radiuss_repo()
        roots = data.draw(st.lists(
            st.sampled_from(_non_provider_roots(repo, RADIUSS_ROOTS)),
            min_size=2, max_size=5, unique=True,
        ))
        self._check(repo, roots)

    def _check(self, repo, roots):
        batch = Concretizer(repo).solve_all(roots)
        assert [r.name for r in batch.roots] == list(roots)
        for root in batch.roots:
            (single,) = Concretizer(repo).solve([root.name]).roots
            assert canon(root) == canon(single), root.name
        # unification: any package name appearing in several per-root
        # DAGs resolves to the same concrete node (same dag hash)
        by_name = {}
        for root in batch.roots:
            for node in root.traverse():
                assert by_name.setdefault(node.name, node.dag_hash()) == (
                    node.dag_hash()
                ), node.name


def test_provider_root_unifies_the_environment():
    """The documented non-parity case: requesting a provider as a root
    makes it the environment's implementation of its virtual.  A lone
    ``app`` picks the preferred mpich; ``app`` + ``mpiabi`` jointly
    resolve app's mpi dependency onto the mpiabi node already in the
    environment (fewer nodes is the better joint optimum)."""
    repo = make_mock_repo()
    (alone,) = Concretizer(repo).solve(["app"]).roots
    assert any(n.name == "mpich" for n in alone.traverse())
    batch = Concretizer(repo).solve_all(["app", "mpiabi"])
    app = batch.roots[0]
    assert any(n.name == "mpiabi" for n in app.traverse())
    assert not any(n.name == "mpich" for n in app.traverse())


def test_every_root_exhaustively():
    """Non-hypothesis belt-and-braces: all roots of both repos agree."""
    for factory, roots in (
        (make_mock_repo, MOCK_ROOTS),
        (make_radiuss_repo, RADIUSS_ROOTS),
    ):
        repo = factory()
        for root in roots:
            greedy = greedy_concretize(repo, root)
            (solved,) = Concretizer(repo).solve([root]).roots
            assert canon(greedy) == canon(solved), root
