"""Reuse of installed specs — both encodings (RQ1 correctness half)."""

import pytest

from repro.concretize import (
    Concretizer,
    NEW_ENCODING,
    OLD_ENCODING,
    ReuseEncoder,
    UnsatisfiableError,
)
from repro.repos.mock import make_mock_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def cached(repo):
    """A pre-built example@1.1.0 stack (the reusable spec)."""
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


BOTH = pytest.mark.parametrize("encoding", [OLD_ENCODING, NEW_ENCODING])


class TestReuseBehaviour:
    @BOTH
    def test_full_reuse_no_builds(self, repo, cached, encoding):
        c = Concretizer(repo, reusable_specs=[cached], encoding=encoding)
        result = c.solve(["example@1.1.0"])
        assert not result.built
        assert result.roots[0].dag_hash() == cached.dag_hash()

    @BOTH
    def test_partial_reuse_of_dependencies(self, repo, cached, encoding):
        c = Concretizer(repo, reusable_specs=[cached], encoding=encoding)
        result = c.solve(["tool"])
        built = {s.name for s in result.built}
        assert "tool" in built
        assert "zlib" not in built, "cached zlib is reused"
        assert "example" not in built

    @BOTH
    def test_incompatible_constraint_forces_build(self, repo, cached, encoding):
        c = Concretizer(repo, reusable_specs=[cached], encoding=encoding)
        result = c.solve(["example@1.1.0 ^mpich@4.1"])
        built = {s.name for s in result.built}
        assert "example" in built and "mpich" in built

    @BOTH
    def test_variant_mismatch_forces_build(self, repo, cached, encoding):
        c = Concretizer(repo, reusable_specs=[cached], encoding=encoding)
        result = c.solve(["example@1.1.0 ~bzip"])
        assert "example" in {s.name for s in result.built}

    @BOTH
    def test_reuse_beats_newer_version(self, repo, encoding):
        old = Concretizer(repo).solve(["zlib@=1.2.11"]).roots[0]
        c = Concretizer(repo, reusable_specs=[old], encoding=encoding)
        result = c.solve(["zlib"])
        assert not result.built, "reusing 1.2.11 beats building 1.3"
        assert result.roots[0].version.string == "1.2.11"

    @BOTH
    def test_built_nodes_still_prefer_newest(self, repo, cached, encoding):
        c = Concretizer(repo, reusable_specs=[cached], encoding=encoding)
        result = c.solve(["app"])
        assert result.roots[0].version.string == "2.0"

    def test_encodings_agree_on_solution(self, repo, cached):
        """The paper's RQ1: the hash_attr indirection must not change
        what the concretizer produces."""
        for request in ["example@1.1.0", "tool", "app", "example~bzip"]:
            old = Concretizer(
                repo, reusable_specs=[cached], encoding=OLD_ENCODING
            ).solve([request])
            new = Concretizer(
                repo, reusable_specs=[cached], encoding=NEW_ENCODING
            ).solve([request])
            assert old.roots[0].dag_hash() == new.roots[0].dag_hash(), request
            assert {s.name for s in old.built} == {s.name for s in new.built}

    def test_splicing_requires_new_encoding(self, repo):
        with pytest.raises(ValueError):
            Concretizer(repo, encoding=OLD_ENCODING, splicing=True)


class TestReuseEncoder:
    def test_old_emits_imposed_constraint(self, cached):
        encoder = ReuseEncoder(OLD_ENCODING)
        facts = encoder.encode_specs([cached])
        predicates = {f.predicate for f in facts}
        assert "imposed_constraint" in predicates
        assert "hash_attr" not in predicates

    def test_new_emits_hash_attr(self, cached):
        encoder = ReuseEncoder(NEW_ENCODING)
        facts = encoder.encode_specs([cached])
        predicates = {f.predicate for f in facts}
        assert "hash_attr" in predicates
        assert "imposed_constraint" not in predicates

    def test_figure3_shape(self, cached):
        """Figure 3a: version/variant/os/target/depends_on/hash per node."""
        encoder = ReuseEncoder(NEW_ENCODING)
        facts = encoder.encode_specs([cached])
        h = cached.dag_hash()
        mine = [f for f in facts if f.predicate == "hash_attr"
                and f.args[0].value == h]
        kinds = {f.args[1].value for f in mine}
        assert kinds == {
            "version", "variant", "node_os", "node_target", "depends_on", "hash"
        }

    def test_nodes_deduplicated(self, repo):
        a = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        encoder = ReuseEncoder(NEW_ENCODING)
        encoder.encode_specs([a, a])
        hashes = [f for f in encoder.facts if f.predicate == "installed_hash"]
        assert len(hashes) == len({(f.args[0].value, f.args[1].value) for f in hashes})

    def test_build_deps_not_encoded(self, repo):
        spec = Concretizer(repo).solve(["app"]).roots[0]
        assert spec.dependency_edge("cmake") is not None
        encoder = ReuseEncoder(NEW_ENCODING)
        facts = encoder.encode_specs([spec])
        dep_facts = [
            f for f in facts
            if f.predicate == "hash_attr" and f.args[1].value == "depends_on"
        ]
        children = {f.args[3].value for f in dep_facts}
        assert "cmake" not in children, "reusable specs impose link-run deps only"

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            ReuseEncoder("fancy")

    def test_node_count(self, cached):
        encoder = ReuseEncoder(NEW_ENCODING)
        encoder.encode_specs([cached])
        assert encoder.node_count == len(list(cached.traverse()))
