"""Model-extraction tests: model atoms → concrete Spec DAGs."""

import pytest

from repro.asp.api import Model
from repro.asp.parser import parse_term
from repro.concretize import Concretizer, ModelExtractor, ExtractionError
from repro.concretize.extract import NodeData
from repro.repos.mock import make_mock_repo


def atoms(*texts):
    from repro.asp.syntax import Atom, Function

    out = set()
    for text in texts:
        term = parse_term(text)
        out.add(Atom(term.name, term.args))
    return out


BASE = [
    'attr("node", node("app"))',
    'attr("version", node("app"), "1.0")',
    'attr("node_os", node("app"), "centos8")',
    'attr("node_target", node("app"), "skylake")',
    'attr("variant", node("app"), "opt", "True")',
    'attr("node", node("zlib"))',
    'attr("version", node("zlib"), "1.2")',
    'attr("node_os", node("zlib"), "centos8")',
    'attr("node_target", node("zlib"), "skylake")',
    'attr("depends_on", node("app"), node("zlib"), "link-run")',
]


class TestFreshExtraction:
    def test_basic_dag(self):
        extractor = ModelExtractor(Model(atoms(*BASE)), lambda h: None)
        specs = extractor.extract()
        app = specs["app"]
        assert app.version.string == "1.0"
        assert app.variants["opt"] == "True"
        assert app["zlib"].version.string == "1.2"
        assert app.concrete

    def test_build_dep_type_preserved(self):
        extra = BASE + [
            'attr("node", node("cmake"))',
            'attr("version", node("cmake"), "3.27")',
            'attr("node_os", node("cmake"), "centos8")',
            'attr("node_target", node("cmake"), "skylake")',
            'attr("depends_on", node("app"), node("cmake"), "build")',
        ]
        specs = ModelExtractor(Model(atoms(*extra)), lambda h: None).extract()
        edge = specs["app"].dependency_edge("cmake")
        assert edge.deptypes == frozenset(["build"])

    def test_missing_version_rejected(self):
        bad = [a for a in BASE if "version\", node(\"app\")" not in a]
        with pytest.raises(ExtractionError):
            ModelExtractor(Model(atoms(*bad)), lambda h: None).extract()

    def test_unknown_hash_rejected(self):
        extra = BASE + ['attr("hash", node("zlib"), "deadbeef")']

        def lookup(h):
            raise KeyError(h)

        with pytest.raises(ExtractionError):
            ModelExtractor(Model(atoms(*extra)), lookup).extract()

    def test_cycle_detected(self):
        cyclic = BASE + [
            'attr("depends_on", node("zlib"), node("app"), "link-run")',
        ]
        with pytest.raises(ExtractionError):
            ModelExtractor(Model(atoms(*cyclic)), lambda h: None).extract()


class TestRoundTripThroughSolver:
    """End-to-end: reuse + splice extraction against real solves."""

    def test_reused_spec_identical_to_cache(self):
        repo = make_mock_repo()
        cached = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        result = Concretizer(repo, reusable_specs=[cached]).solve(
            ["example@1.1.0"]
        )
        assert result.roots[0].dag_hash() == cached.dag_hash()

    def test_spliced_extraction_structure(self):
        repo = make_mock_repo()
        cached = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        root = c.solve(["example@1.1.0 ^mpiabi"]).roots[0]
        # spliced root: same node attrs, new dep, provenance recorded
        assert root.version.string == "1.1.0"
        assert root.build_spec.dag_hash() == cached.dag_hash()
        assert root["mpiabi"].concrete
        assert root.dag_hash() != cached.dag_hash()

    def test_mixed_built_and_reused(self):
        repo = make_mock_repo()
        cached = Concretizer(repo).solve(["zlib@=1.3"]).roots[0]
        result = Concretizer(repo, reusable_specs=[cached]).solve(
            ["example@1.1.0"]
        )
        root = result.roots[0]
        assert root["zlib"].dag_hash() == cached.dag_hash()
        assert root.concrete
        built = {s.name for s in result.built}
        assert "zlib" not in built and "example" in built
