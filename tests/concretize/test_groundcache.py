"""Ground-program cache: keys, hits, disk round-trips, corruption.

The cache's contract is *accelerate, never lie*: an exact key hit must
reproduce the classic solve bit-for-bit while spending zero time in
setup and grounding (neither span even opens), and every invalid disk
state — truncated, stale, foreign, unpicklable — must be ignored,
counted (``concretize.ground_cache_stale``), and fall back to a fresh
ground.  Mirrors the PR-6 summary-sidecar tests one layer down.
"""

import json

import pytest

from repro.concretize import Concretizer, GroundProgramCache
from repro.concretize import groundcache
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo
from repro.spec import parse_one


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture(autouse=True)
def clean_registries():
    groundcache.reset_ground_caches()
    yield
    groundcache.reset_ground_caches()


def counter(name):
    return metrics.snapshot()["counters"].get(name, 0)


def canon(result):
    return sorted(
        (node.name, node.dag_hash())
        for root in result.roots
        for node in root.traverse()
    )


def solve_phases(concretizer, specs):
    """(result, {span: delta-seconds}) for one solve."""
    before = trace.phase_times()
    result = concretizer.solve(specs)
    after = trace.phase_times()
    deltas = {
        span: after.get(span, 0.0) - before.get(span, 0.0)
        for span in ("concretize.setup", "asp.ground")
    }
    return result, deltas


class TestDigests:
    def test_request_digest_stable(self):
        roots = [parse_one("app ^zlib")]
        a = groundcache.request_digest(roots, [], "centos8", "skylake", "new", False)
        b = groundcache.request_digest(
            [parse_one("app ^zlib")], [], "centos8", "skylake", "new", False
        )
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"roots": [parse_one("zlib")]},
            {"forbidden": ["mpich"]},
            {"default_os": "ubuntu20"},
            {"default_target": "zen2"},
            {"encoding": "old"},
            {"splicing": True},
        ],
    )
    def test_request_digest_sensitive(self, kwargs):
        base = dict(
            roots=[parse_one("app")], forbidden=[],
            default_os="centos8", default_target="skylake",
            encoding="new", splicing=False,
        )
        a = groundcache.request_digest(**base)
        b = groundcache.request_digest(**{**base, **kwargs})
        assert a != b

    def test_repo_digest_stable_across_instances(self):
        assert groundcache.repo_digest(make_mock_repo()) == groundcache.repo_digest(
            make_mock_repo()
        )

    def test_repo_digest_tracks_mutation(self, repo):
        before = groundcache.repo_digest(repo)
        repo.provider_preferences["mpi"] = ["zmpi"]
        assert groundcache.repo_digest(repo) != before

    def test_reuse_digest_order_independent(self):
        assert groundcache.reuse_digest(["b", "a"]) == groundcache.reuse_digest(
            ["a", "b"]
        )


class TestExactHit:
    def test_warm_solve_skips_setup_and_ground(self, repo):
        cache = GroundProgramCache()
        cold = Concretizer(repo, ground_cache=cache)
        cold_result, _ = solve_phases(cold, ["app"])

        hits_before = counter("concretize.ground_cache_hits")
        warm = Concretizer(repo, ground_cache=cache)
        warm_result, deltas = solve_phases(warm, ["app"])

        assert canon(warm_result) == canon(cold_result)
        assert counter("concretize.ground_cache_hits") == hits_before + 1
        # the spans never open on the cached path
        assert deltas["concretize.setup"] == 0.0
        assert deltas["asp.ground"] == 0.0

    def test_different_request_misses(self, repo):
        cache = GroundProgramCache()
        Concretizer(repo, ground_cache=cache).solve(["app"])
        misses_before = counter("concretize.ground_cache_misses")
        Concretizer(repo, ground_cache=cache).solve(["example"])
        assert counter("concretize.ground_cache_misses") == misses_before + 1

    def test_repo_mutation_invalidates(self, repo):
        cache = GroundProgramCache()
        Concretizer(repo, ground_cache=cache).solve(["zlib"])
        repo.provider_preferences["mpi"] = ["zmpi"]
        misses_before = counter("concretize.ground_cache_misses")
        Concretizer(repo, ground_cache=cache).solve(["zlib"])
        assert counter("concretize.ground_cache_misses") == misses_before + 1

    def test_lru_bound(self, repo):
        cache = GroundProgramCache(max_memory_entries=1)
        Concretizer(repo, ground_cache=cache).solve(["zlib"])
        Concretizer(repo, ground_cache=cache).solve(["example"])
        assert len(cache._mem) == 1


class TestDiskLayer:
    def test_round_trip_via_fresh_instance(self, repo, tmp_path):
        Concretizer(
            repo, ground_cache=GroundProgramCache(tmp_path)
        ).solve(["app"])
        assert list(tmp_path.glob("ground-*.pkl"))
        assert list(tmp_path.glob("ground-*.json"))

        # a different process would build a brand-new cache object
        warm = Concretizer(repo, ground_cache=GroundProgramCache(tmp_path))
        hits_before = counter("concretize.ground_cache_hits")
        result, deltas = solve_phases(warm, ["app"])
        assert counter("concretize.ground_cache_hits") == hits_before + 1
        assert deltas["concretize.setup"] == 0.0
        assert deltas["asp.ground"] == 0.0
        assert result.roots[0].name == "app"

    def _populated(self, repo, tmp_path):
        Concretizer(
            repo, ground_cache=GroundProgramCache(tmp_path)
        ).solve(["app"])
        (payload,) = tmp_path.glob("ground-*.pkl")
        (sidecar,) = tmp_path.glob("ground-*.json")
        return payload, sidecar

    def _resolve_ignoring(self, repo, tmp_path):
        """Fresh-instance solve; returns (stale_delta, hit_delta)."""
        stale_before = counter("concretize.ground_cache_stale")
        hits_before = counter("concretize.ground_cache_hits")
        result = Concretizer(
            repo, ground_cache=GroundProgramCache(tmp_path)
        ).solve(["app"])
        assert result.roots[0].name == "app"  # fell back, still solved
        return (
            counter("concretize.ground_cache_stale") - stale_before,
            counter("concretize.ground_cache_hits") - hits_before,
        )

    def test_truncated_payload_ignored(self, repo, tmp_path):
        payload, _ = self._populated(repo, tmp_path)
        payload.write_bytes(payload.read_bytes()[:16])
        assert self._resolve_ignoring(repo, tmp_path) == (1, 0)

    def test_missing_sidecar_ignored(self, repo, tmp_path):
        _, sidecar = self._populated(repo, tmp_path)
        sidecar.unlink()
        assert self._resolve_ignoring(repo, tmp_path) == (1, 0)

    def test_missing_payload_ignored(self, repo, tmp_path):
        payload, _ = self._populated(repo, tmp_path)
        payload.unlink()
        assert self._resolve_ignoring(repo, tmp_path) == (1, 0)

    def test_foreign_key_sidecar_ignored(self, repo, tmp_path):
        _, sidecar = self._populated(repo, tmp_path)
        doc = json.loads(sidecar.read_text())
        doc["key"] = "f" * 64
        sidecar.write_text(json.dumps(doc))
        assert self._resolve_ignoring(repo, tmp_path) == (1, 0)

    def test_future_format_ignored(self, repo, tmp_path):
        _, sidecar = self._populated(repo, tmp_path)
        doc = json.loads(sidecar.read_text())
        doc["format"] = groundcache.CACHE_FORMAT + 1
        sidecar.write_text(json.dumps(doc))
        assert self._resolve_ignoring(repo, tmp_path) == (1, 0)

    def test_garbage_sidecar_ignored(self, repo, tmp_path):
        _, sidecar = self._populated(repo, tmp_path)
        sidecar.write_text("{not json")
        assert self._resolve_ignoring(repo, tmp_path) == (1, 0)

    def test_absent_pair_is_plain_miss(self, repo, tmp_path):
        payload, sidecar = self._populated(repo, tmp_path)
        payload.unlink()
        sidecar.unlink()
        assert self._resolve_ignoring(repo, tmp_path) == (0, 0)


class TestCrossProcess:
    """The disk cache must be consumable by a *different* process.

    str hashes are salted per process (PYTHONHASHSEED), so a pickled
    atom carrying its producer's memoized hash poisons dict/set lookups
    in the consumer — the historical symptom was a warm ``env
    concretize`` extracting a model with missing attributes.
    """

    def test_pickle_drops_memoized_hashes(self):
        import pickle

        from repro.asp.syntax import Atom, Function

        atom = Atom("attr", (Function("node", ()),))
        hash(atom), hash(atom.args[0])  # memoize both levels
        clone = pickle.loads(pickle.dumps(atom))
        assert clone._hash is None
        assert clone.args[0]._hash is None
        assert clone == atom and hash(clone) == hash(atom)

    def test_warm_hit_under_foreign_hash_seed(self, tmp_path):
        import os
        import subprocess
        import sys

        script = (
            "from pathlib import Path\n"
            "from repro.concretize import Concretizer, GroundProgramCache\n"
            "from repro.repos.mock import make_mock_repo\n"
            "import sys\n"
            "cache = GroundProgramCache(Path(sys.argv[1]))\n"
            "result = Concretizer(make_mock_repo(), ground_cache=cache)"
            ".solve(['app'])\n"
            "assert result.roots[0].name == 'app'\n"
            "from repro.obs import metrics\n"
            "print(metrics.snapshot()['counters']"
            ".get('concretize.ground_cache_hits', 0))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        outs = []
        for seed in ("0", "1"):
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path)],
                env=env, capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(int(proc.stdout.strip()))
        assert outs == [0, 1]  # producer missed, foreign-seed consumer hit


class TestDefaults:
    def test_cache_off_by_default(self, repo, monkeypatch):
        monkeypatch.delenv(groundcache.ENV_CACHE, raising=False)
        monkeypatch.delenv(groundcache.ENV_CACHE_DIR, raising=False)
        concretizer = Concretizer(repo)
        assert concretizer.ground_cache is None
        assert concretizer.incremental is False

    def test_env_enables_memory_cache(self, repo, monkeypatch):
        monkeypatch.setenv(groundcache.ENV_CACHE, "1")
        concretizer = Concretizer(repo)
        assert concretizer.ground_cache is not None
        assert concretizer.ground_cache.directory is None

    def test_env_enables_disk_cache(self, repo, monkeypatch, tmp_path):
        monkeypatch.setenv(groundcache.ENV_CACHE_DIR, str(tmp_path))
        a = Concretizer(repo)
        b = Concretizer(repo)
        assert a.ground_cache is b.ground_cache  # shared per directory
        assert a.ground_cache.directory == tmp_path

    def test_env_enables_incremental(self, repo, monkeypatch):
        monkeypatch.setenv(groundcache.ENV_INCREMENTAL, "1")
        assert Concretizer(repo).incremental is True
