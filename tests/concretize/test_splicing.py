"""Automatic splice synthesis in the concretizer (Sections 5.2–5.4, RQ2)."""

import pytest

from repro.concretize import Concretizer, UnsatisfiableError
from repro.concretize.cansplice import CanSpliceCompiler
from repro.concretize.encode import Encoder
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo, add_mpiabi_replicas
from repro.buildcache import external_spec, generate_cache_specs


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def cached(repo):
    """example@1.1.0 built against the splice target mpich@3.4.3."""
    return Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]


class TestSpliceSynthesis:
    def test_splice_instead_of_rebuild(self, repo, cached):
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["example@1.1.0 ^mpiabi"])
        assert {s.name for s in result.built} == {"mpiabi"}
        assert {s.name for s in result.spliced} == {"example"}

    def test_without_splicing_rebuilds(self, repo, cached):
        c = Concretizer(repo, reusable_specs=[cached], splicing=False)
        result = c.solve(["example@1.1.0 ^mpiabi"])
        assert "example" in {s.name for s in result.built}

    def test_spliced_root_has_build_spec(self, repo, cached):
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        root = c.solve(["example@1.1.0 ^mpiabi"]).roots[0]
        assert root.spliced
        assert root.build_spec.dag_hash() == cached.dag_hash()
        assert "mpiabi" in root and "mpich" not in root

    def test_spliced_build_deps_dropped(self, repo):
        cached_app = Concretizer(repo).solve(["app ^mpich@3.4.3"]).roots[0]
        assert cached_app.dependency_edge("cmake") is not None
        c = Concretizer(repo, reusable_specs=[cached_app], splicing=True)
        root = c.solve(["app ^mpiabi"]).roots[0]
        assert root.spliced
        assert root.dependency_edge("cmake") is None

    def test_splice_target_version_constrained(self, repo):
        """mpiabi declares can_splice("mpich@3.4.3") — a stack built with
        mpich@4.1 is NOT a valid splice target."""
        cached = Concretizer(repo).solve(["example@1.1.0 ^mpich@4.1"]).roots[0]
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["example@1.1.0 ^mpiabi"])
        assert "example" in {s.name for s in result.built}, "no valid splice"
        assert not result.spliced

    def test_incompatible_provider_never_spliced(self, repo, cached):
        """openmpi has no can_splice for mpich → rebuild (ABI safety)."""
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["example@1.1.0 ^openmpi"])
        assert "example" in {s.name for s in result.built}
        assert not result.spliced

    def test_same_package_version_splice(self, repo):
        """zlib-style splices in mock repo: example@1.1.0 can replace
        built example@1.0.0 (same package, Figure-1 line 20)."""
        old = Concretizer(repo).solve(
            ["tool ^example@1.0.0 ^mpich@3.4.3 ^zlib@=1.2.11"]
        ).roots[0]
        c = Concretizer(repo, reusable_specs=[old], splicing=True)
        # request tool with example@1.1.0: tool itself can be reused via
        # splice of a (built) example@1.1.0 -- but none is cached, and
        # building example@1.1.0 then splicing still beats rebuilding tool
        result = c.solve(["tool ^example@1.1.0"])
        built = {s.name for s in result.built}
        assert "tool" not in built, "tool reused via splice"
        assert "example" in built

    def test_forbidden_original_forces_splice(self, repo, cached):
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["example@1.1.0"], forbidden=["mpich"])
        assert {s.name for s in result.spliced} == {"example"}
        assert "mpich" not in result.roots[0]

    def test_splice_disabled_is_default(self, repo, cached):
        assert Concretizer(repo, reusable_specs=[cached]).splicing is False


class TestTransitiveSpliceSolutions:
    def test_deep_splice_rewires_chain(self):
        repo = make_radiuss_repo()
        cached = Concretizer(repo).solve(["mfem ^mpich@3.4.3"]).roots[0]
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["mfem ^mpiabi"])
        spliced = {s.name for s in result.spliced}
        assert "mfem" in spliced and "hypre" in spliced
        assert {s.name for s in result.built} == {"mpiabi"}
        root = result.roots[0]
        assert root["hypre"].build_spec is not None
        assert "mpich" not in root

    def test_external_cray_mpich_splice(self):
        repo = make_radiuss_repo()
        cached = Concretizer(repo).solve(["hypre ^mpich@3.4.3"]).roots[0]
        cray = external_spec(repo, "cray-mpich", "/opt/cray/pe/mpich")
        c = Concretizer(
            repo, reusable_specs=[cached, cray], splicing=True
        )
        result = c.solve(["hypre ^cray-mpich"])
        assert not result.built, "external + splice = zero builds"
        assert {s.name for s in result.spliced} == {"hypre"}
        assert result.roots[0]["cray-mpich"].external


class TestScalingReplicas:
    def test_replica_splices(self):
        repo = make_radiuss_repo()
        names = add_mpiabi_replicas(repo, 5)
        cached = Concretizer(repo).solve(["hypre ^mpich@3.4.3"]).roots[0]
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["hypre"], forbidden=["mpich"])
        assert {s.name for s in result.spliced} == {"hypre"}
        provider = {n.name for n in result.roots[0].traverse()} & set(
            names + ["mpiabi", "mvapich2"]
        )
        assert provider, "some MPICH-ABI replica was chosen"


class TestCanSpliceCompilation:
    def test_figure4a_rule_shape(self, repo):
        """The compiled rule matches hash_attr facts of the target and
        attr facts of the splicing node (Figure 4a)."""
        encoder = Encoder(repo)
        rules = CanSpliceCompiler(repo, encoder).compile_all()
        heads = {r.head.predicate for r in rules}
        assert heads == {"can_splice"}
        example_rules = [
            r for r in rules if r.head.args[0].args[0].value == "example"
        ]
        assert len(example_rules) == 2
        cross = [
            r for r in example_rules if r.head.args[1].value == "example-ng"
        ][0]
        body_preds = [getattr(b, "atom", None) for b in cross.body]
        assert any(
            a is not None and a.predicate == "hash_attr" for a in body_preds
        )
        assert any(
            a is not None and a.predicate == "installed_hash" for a in body_preds
        )

    def test_when_constraints_respected(self, repo):
        """example@1.0.0 (when=@1.1.0 not met) must not splice."""
        old_target = Concretizer(repo).solve(
            ["tool ^example@1.0.0 ^mpich@3.4.3 ^zlib@=1.2.11"]
        ).roots[0]
        c = Concretizer(repo, reusable_specs=[old_target], splicing=True)
        # requesting example@1.0.0 to replace example@1.0.0: fine (reuse);
        # but a DIFFERENT example@1.0.0 config cannot splice in since the
        # directive requires the splicing node be @1.1.0
        result = c.solve(["tool ^example@1.0.0~bzip"])
        assert "tool" in {s.name for s in result.built}
