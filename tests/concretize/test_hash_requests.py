"""The ``name/hash`` request syntax (install-by-hash)."""

import pytest

from repro.concretize import Concretizer, UnsatisfiableError
from repro.repos.mock import make_mock_repo
from repro.spec import parse_one


@pytest.fixture()
def setup():
    repo = make_mock_repo()
    old = Concretizer(repo).solve(["zlib@=1.2.11"]).roots[0]
    new = Concretizer(repo).solve(["zlib@=1.3"]).roots[0]
    return repo, old, new


class TestParsing:
    def test_hash_suffix(self):
        spec = parse_one("zlib/abc123")
        assert spec.name == "zlib"
        assert spec.abstract_hash == "abc123"

    def test_hash_with_other_constraints(self):
        spec = parse_one("zlib/abc +opt")
        assert spec.abstract_hash == "abc"
        assert spec.variants["opt"] == "True"

    def test_satisfies_hash_prefix(self, setup):
        _, old, _ = setup
        assert old.satisfies(f"zlib/{old.dag_hash(8)}")
        assert not old.satisfies("zlib/ffffffff")

    def test_constrain_merges_hash(self):
        spec = parse_one("zlib")
        spec.constrain("zlib/abc")
        assert spec.abstract_hash == "abc"


class TestResolution:
    def test_hash_pins_installed_spec(self, setup):
        repo, old, new = setup
        c = Concretizer(repo, reusable_specs=[old, new])
        result = c.solve([f"zlib/{old.dag_hash(7)}"])
        assert result.roots[0].dag_hash() == old.dag_hash()
        assert not result.built

    def test_hash_overrides_version_preference(self, setup):
        repo, old, new = setup
        c = Concretizer(repo, reusable_specs=[old, new])
        # without the hash, reuse prefers the newer cached zlib
        free = c.solve(["zlib"])
        assert free.roots[0].version.string == "1.3"
        pinned = c.solve([f"zlib/{old.dag_hash(7)}"])
        assert pinned.roots[0].version.string == "1.2.11"

    def test_unknown_hash_unsat(self, setup):
        repo, old, new = setup
        c = Concretizer(repo, reusable_specs=[old, new])
        with pytest.raises(UnsatisfiableError):
            c.solve(["zlib/ffffff"])

    def test_ambiguous_prefix_rejected(self, setup):
        repo, old, new = setup
        c = Concretizer(repo, reusable_specs=[old, new])
        # the empty-ish one-char prefix matches both installed zlibs
        shared = ""
        for a, b in zip(old.dag_hash(), new.dag_hash()):
            if a != b:
                break
            shared += a
        prefix = (shared + old.dag_hash()[len(shared)])[: len(shared) + 1]
        # a prefix of length 0 is not expressible; craft one char that
        # matches both only if their hashes share the first char
        if old.dag_hash()[0] == new.dag_hash()[0]:
            with pytest.raises(UnsatisfiableError):
                c.solve([f"zlib/{old.dag_hash()[0]}"])

    def test_dependency_hash_constraint(self, setup):
        repo, old, new = setup
        c = Concretizer(repo, reusable_specs=[old, new])
        result = c.solve([f"tool ^example@1.0.0 ^zlib/{old.dag_hash(7)}"])
        assert result.roots[0]["zlib"].dag_hash() == old.dag_hash()
