"""The paper's ASP fragments (Figures 3b and 4b), tested in isolation.

These tests feed hand-written ``hash_attr``/``can_splice`` facts through
the actual logic-program files and check the derived atoms — the
ASP-level contract the concretizer builds on.
"""

import pytest

from repro.asp.api import Control
from repro.concretize.concretizer import LOGIC_DIR


RECOVERY = (LOGIC_DIR / "reuse_new.lp").read_text()
SPLICE = (LOGIC_DIR / "splice.lp").read_text()

#: one reusable spec "app" (hash h-app) depending on mpich (hash h-mpich)
REUSABLE = '''
installed_hash("app", "h-app").
hash_attr("h-app", "version", "app", "1.0").
hash_attr("h-app", "variant", "app", "opt", "True").
hash_attr("h-app", "node_os", "app", "centos8").
hash_attr("h-app", "depends_on", "app", "mpich").
hash_attr("h-app", "hash", "mpich", "h-mpich").
installed_hash("mpich", "h-mpich").
hash_attr("h-mpich", "version", "mpich", "3.4.3").
'''


def solve(text):
    ctl = Control()
    ctl.add(text)
    result = ctl.solve()
    assert result.satisfiable
    return {repr(a) for a in result.model}


class TestFigure3b:
    """hash_attr → imposed_constraint recovery."""

    def test_plain_attributes_pass_through(self):
        model = solve(REUSABLE + RECOVERY)
        assert 'imposed_constraint("h-app","version","app","1.0")' in model
        assert (
            'imposed_constraint("h-app","variant","app","opt","True")' in model
        )
        assert 'imposed_constraint("h-app","node_os","app","centos8")' in model

    def test_hash_and_depends_on_recovered_without_candidates(self):
        """No can_splice atoms → identical to the old encoding."""
        model = solve(REUSABLE + RECOVERY)
        assert 'imposed_constraint("h-app","hash","mpich","h-mpich")' in model
        assert 'imposed_constraint("h-app","depends_on","app","mpich")' in model

    def test_hash_withheld_with_candidate(self):
        """A splice candidate gates the hash/depends_on imposition."""
        text = (
            REUSABLE
            + RECOVERY
            + 'attr("node", node("mpiabi")).\n'
            + 'can_splice(node("mpiabi"), "mpich", "h-mpich").\n'
        )
        model = solve(text)
        assert 'splice_candidate("mpich","h-mpich")' in model
        assert 'imposed_constraint("h-app","hash","mpich","h-mpich")' not in model
        assert (
            'imposed_constraint("h-app","depends_on","app","mpich")' not in model
        )
        # non-gated attributes still pass through
        assert 'imposed_constraint("h-app","version","app","1.0")' in model


class TestFigure4b:
    """The XOR: impose the original dependency or splice."""

    BASE = (
        REUSABLE
        + RECOVERY
        + SPLICE
        + 'attr("node", node("mpiabi")).\n'
        + 'can_splice(node("mpiabi"), "mpich", "h-mpich").\n'
        + 'impose("h-app").\n'
        + 'attr("hash", node("app"), "h-app").\n'
    )

    def test_exactly_one_branch_taken(self):
        model = solve(self.BASE)
        imposed = 'impose_original_dep("h-app","mpich","h-mpich")' in model
        spliced = (
            'splice_at("h-app","mpich","h-mpich",node("mpiabi"))' in model
        )
        assert imposed != spliced, "XOR: original or splice, never both/neither"

    def test_forcing_splice_derives_new_dependency(self):
        text = self.BASE + ':- impose_original_dep("h-app","mpich","h-mpich").\n'
        model = solve(text)
        assert 'splice_at("h-app","mpich","h-mpich",node("mpiabi"))' in model
        assert (
            'attr("depends_on",node("app"),node("mpiabi"),"link-run")' in model
        )
        assert (
            'attr("splice",node("app"),"mpich","h-mpich",node("mpiabi"))'
            in model
        )
        assert 'imposed_constraint("h-app","hash","mpich","h-mpich")' not in model

    def test_forcing_original_recovers_old_imposition(self):
        text = self.BASE + ':- splice_at("h-app","mpich","h-mpich",node("mpiabi")).\n'
        model = solve(text)
        assert 'imposed_constraint("h-app","hash","mpich","h-mpich")' in model
        assert 'imposed_constraint("h-app","depends_on","app","mpich")' in model

    def test_splice_minimized_away_when_free(self):
        """The @10 penalty makes the solver keep the original dep when
        nothing else forces a splice."""
        model = solve(self.BASE)
        assert 'impose_original_dep("h-app","mpich","h-mpich")' in model

    def test_multiple_candidates_exactly_one_spliced(self):
        text = (
            self.BASE
            + 'attr("node", node("mvapich2")).\n'
            + 'can_splice(node("mvapich2"), "mpich", "h-mpich").\n'
            + ':- impose_original_dep("h-app","mpich","h-mpich").\n'
        )
        model = solve(text)
        chosen = [
            a for a in model if a.startswith('splice_at(')
        ]
        assert len(chosen) == 1
