"""UNSAT-diagnosis tests (Concretizer.explain)."""

import pytest

from repro.concretize import Concretizer, UnsatisfiableError
from repro.repos.mock import make_mock_repo


@pytest.fixture(scope="module")
def repo():
    return make_mock_repo()


@pytest.fixture()
def concretizer(repo):
    return Concretizer(repo)


class TestCulpritIdentification:
    def test_bad_dep_constraint(self, concretizer):
        with pytest.raises(UnsatisfiableError):
            concretizer.solve(["tool ^zlib@1.1"])
        diagnosis = concretizer.explain(["tool ^zlib@1.1"])
        assert diagnosis.satisfiable_when_relaxed
        assert [str(c) for c in diagnosis.culprits] == ["tool ^zlib@1.1"]
        assert "zlib@1.1" in diagnosis.explain()

    def test_conflicting_providers_across_roots(self, concretizer):
        diagnosis = concretizer.explain(
            ["example ^openmpi", "example-ng ^mpich"]
        )
        assert diagnosis.satisfiable_when_relaxed
        descriptions = {str(c) for c in diagnosis.culprits}
        # removing either provider pin fixes it; deletion-filter keeps one
        assert len(diagnosis.culprits) == 1
        assert descriptions & {"example ^openmpi", "example-ng ^mpich"}

    def test_bad_version_pin(self, concretizer):
        diagnosis = concretizer.explain(["zlib@=9.9"])
        assert [c.kind for c in diagnosis.culprits] == ["version"]

    def test_bad_variant_value(self, concretizer):
        diagnosis = concretizer.explain(["mpich pmi=bogus"])
        assert [c.kind for c in diagnosis.culprits] == ["variant"]

    def test_forbidden_culprit(self, repo):
        # forbidding zlib breaks example (zlib is unavoidable)
        concretizer = Concretizer(repo)
        diagnosis = concretizer.explain(["example"], forbidden=["zlib"])
        assert [c.kind for c in diagnosis.culprits] == ["forbidden"]
        assert "zlib" in str(diagnosis.culprits[0])

    def test_multiple_culprits(self, concretizer):
        diagnosis = concretizer.explain(["zlib@=9.9", "mpich pmi=bogus"])
        kinds = sorted(c.kind for c in diagnosis.culprits)
        assert kinds == ["variant", "version"]


class TestRepoLevelUnsat:
    def test_unbuildable_package(self):
        from repro.package import Package, Repository, version

        repo = Repository()

        class Vendor(Package):
            version("1.0")
            buildable = False

        repo.add(Vendor)
        concretizer = Concretizer(repo)
        diagnosis = concretizer.explain(["vendor"])
        assert not diagnosis.satisfiable_when_relaxed
        assert "package definitions" in diagnosis.explain()


class TestSatisfiableRequest:
    def test_no_culprits_for_sat_request(self, concretizer):
        diagnosis = concretizer.explain(["zlib"])
        assert diagnosis.satisfiable_when_relaxed
        assert not diagnosis.culprits
        assert "satisfiable" in diagnosis.explain()
