"""Encoder-level tests: fact shapes, version sets, condition rules."""

import pytest

from repro.asp.syntax import Atom, Function, Integer, Rule, String
from repro.concretize.encode import Encoder, EncodingError
from repro.repos.mock import make_mock_repo
from repro.spec import parse_one


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture()
def encoder(repo):
    return Encoder(repo)


def facts_named(encoder, predicate):
    return [f for f in encoder.facts if f.predicate == predicate]


class TestPackageFacts:
    def test_version_declared_with_weights(self, encoder, repo):
        encoder.encode_package(repo.get("zlib"))
        decls = [
            f.args[1]
            for f in facts_named(encoder, "pkg_fact")
            if isinstance(f.args[1], Function)
            and f.args[1].name == "version_declared"
        ]
        # newest first → weight 0
        by_version = {d.args[0].value: d.args[1].value for d in decls}
        assert by_version["1.3"] == 0
        assert by_version["1.0"] == max(by_version.values())

    def test_variant_facts(self, encoder, repo):
        encoder.encode_package(repo.get("mpich"))
        pkg_facts = facts_named(encoder, "pkg_fact")
        kinds = {
            f.args[1].name for f in pkg_facts if isinstance(f.args[1], Function)
        }
        assert {"variant", "variant_default", "variant_possible"} <= kinds
        possible = {
            f.args[1].args[1].value
            for f in pkg_facts
            if isinstance(f.args[1], Function)
            and f.args[1].name == "variant_possible"
            and f.args[1].args[0].value == "pmi"
        }
        assert possible == {"pmix", "simple", "slurm"}

    def test_not_buildable_fact(self):
        from repro.repos.radiuss import make_radiuss_repo

        repo = make_radiuss_repo()
        encoder = Encoder(repo)
        encoder.encode_package(repo.get("cray-mpich"))
        assert facts_named(encoder, "not_buildable")

    def test_provider_facts_with_preference_weights(self, repo):
        encoder = Encoder(repo)
        encoder.encode_repository()
        providers = facts_named(encoder, "possible_provider")
        weights = {
            f.args[0].value: f.args[2].value
            for f in providers
            if f.args[1].value == "mpi"
        }
        assert weights["mpich"] == 0
        assert weights["openmpi"] == 1  # second preference in mock repo


class TestVersionSets:
    def test_set_contains_satisfying_declared_versions(self, encoder):
        set_id = encoder.version_set("zlib", parse_one("zlib@1.2").versions)
        members = {
            f.args[1].value
            for f in facts_named(encoder, "version_in_set")
            if f.args[0].value == set_id
        }
        assert members == {"1.2", "1.2.11"}

    def test_sets_deduplicated(self, encoder):
        a = encoder.version_set("zlib", parse_one("zlib@1.2").versions)
        b = encoder.version_set("zlib", parse_one("zlib@1.2").versions)
        assert a == b

    def test_distinct_constraints_distinct_sets(self, encoder):
        a = encoder.version_set("zlib", parse_one("zlib@1.2").versions)
        b = encoder.version_set("zlib", parse_one("zlib@1.3").versions)
        assert a != b


class TestConditionRules:
    def test_conditional_dependency_generates_condition(self, encoder, repo):
        encoder.encode_package(repo.get("example"))
        heads = {
            r.head.predicate for r in encoder.rules if isinstance(r.head, Atom)
        }
        assert "condition_holds" in heads
        # the bzip2 dep is guarded by the +bzip variant somewhere
        guard_rules = [
            r
            for r in encoder.rules
            if isinstance(r.head, Atom) and r.head.predicate == "condition_holds"
        ]
        assert any(
            any(
                getattr(getattr(b, "atom", None), "args", None)
                and any(
                    getattr(a, "value", None) == "bzip" for a in b.atom.args
                )
                for b in r.body
            )
            for r in guard_rules
        )

    def test_virtual_dependency_rule(self, encoder, repo):
        encoder.encode_package(repo.get("example"))
        heads = [
            r.head
            for r in encoder.rules
            if isinstance(r.head, Atom)
            and r.head.predicate == "attr"
            and r.head.args
            and getattr(r.head.args[0], "value", None) == "virtual_dependency"
        ]
        assert heads, "depends_on('mpi') compiles to a virtual_dependency rule"

    def test_constraint_on_virtual_rejected(self, repo):
        from repro.package import Package, Repository, depends_on, version, provides

        bad_repo = Repository()

        class Impl(Package):
            version("1")
            provides("v")

        class User(Package):
            version("1")
            depends_on("v@2")  # versioned virtual constraint: unsupported

        bad_repo.add(Impl)
        bad_repo.add(User)
        with pytest.raises(EncodingError):
            Encoder(bad_repo).encode_package(User)


class TestRequestEncoding:
    def test_root_and_forced_attrs(self, encoder):
        encoder.encode_request([parse_one("example@1.1.0 +bzip")])
        assert facts_named(encoder, "root")
        forced = [
            f
            for f in facts_named(encoder, "attr")
            if getattr(f.args[0], "value", None) == "variant"
        ]
        assert forced

    def test_dep_constraint_emits_requested_dep(self, encoder):
        encoder.encode_request([parse_one("tool ^zlib@1.2")])
        deps = facts_named(encoder, "requested_dep")
        assert [(f.args[0].value, f.args[1].value) for f in deps] == [
            ("tool", "zlib")
        ]

    def test_unknown_package_rejected(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode_request([parse_one("nonexistent")])

    def test_virtual_root_rejected(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode_request([parse_one("mpi")])

    def test_anonymous_root_rejected(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode_request([parse_one("@1.0")])

    def test_forbidden_rule_emitted(self, encoder):
        encoder.encode_request([parse_one("example")], forbidden=["mpich"])
        constraints = [r for r in encoder.rules if r.head is None]
        assert any(
            any(
                "mpich" in repr(b) for b in r.body
            )
            for r in constraints
        )
