"""Batched single-solve (``solve_all``) and incremental re-solve.

``solve_all`` puts every root in ONE ASP program; the contract is
semantics preservation — each per-root view must be a valid concrete
DAG (checked against the same greedy/audit oracles as single solves),
with shared dependencies *unified* into one node per package.
"""

import pytest

from repro.analysis import Analyzer, AuditContext
from repro.concretize import (
    BatchConcretizationResult,
    Concretizer,
    UnsatisfiableError,
)
from repro.concretize import groundcache
from repro.obs import metrics, trace
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import make_radiuss_repo


@pytest.fixture()
def repo():
    return make_mock_repo()


@pytest.fixture(autouse=True)
def clean_registries():
    groundcache.reset_ground_caches()
    yield
    groundcache.reset_ground_caches()


def counter(name):
    return metrics.snapshot()["counters"].get(name, 0)


def dag_canon(root):
    return sorted((n.name, n.dag_hash()) for n in root.traverse())


class TestSolveAll:
    def test_returns_batch_result_in_order(self, repo):
        result = Concretizer(repo).solve_all(["app", "example", "zlib"])
        assert isinstance(result, BatchConcretizationResult)
        assert [r.name for r in result.roots] == ["app", "example", "zlib"]

    def test_matches_per_root_solves(self, repo):
        batch = Concretizer(repo).solve_all(["app", "example"])
        for root in batch.roots:
            single = Concretizer(repo).solve([root.name]).roots[0]
            assert dag_canon(root) == dag_canon(single)

    def test_shared_dependencies_unify(self, repo):
        # app and example both depend on zlib: one joint model means
        # exactly one zlib node object across the environment
        result = Concretizer(repo).solve_all(["app", "example"])
        zlibs = {
            id(node)
            for root in result.roots
            for node in root.traverse()
            if node.name == "zlib"
        }
        assert len(zlibs) == 1

    def test_batch_roots_counter(self, repo):
        before = counter("concretize.batch_roots")
        Concretizer(repo).solve_all(["app", "example", "zlib"])
        assert counter("concretize.batch_roots") == before + 3

    def test_per_root_views(self, repo):
        result = Concretizer(repo).solve_all(["app", "zlib"])
        views = list(result)
        assert [v.roots[0].name for v in views] == ["app", "zlib"]
        # the zlib view must not see app's other dependencies
        assert set(views[1].by_name) == {
            n.name for n in views[1].roots[0].traverse()
        }

    def test_unsat_root_fails_whole_batch(self, repo):
        with pytest.raises(UnsatisfiableError):
            Concretizer(repo).solve_all(["app", "zlib@=9.9"])

    def test_audit_dag_checkers_pass(self, repo):
        result = Concretizer(repo).solve_all(["app", "example", "tool"])
        specs = list({
            n.dag_hash(): n
            for root in result.roots
            for n in root.traverse()
        }.values())
        report = Analyzer(["dag"]).run(
            AuditContext(repo=repo, concrete_specs=specs)
        )
        assert not report.has_errors, report.render()

    def test_audit_dag_checkers_pass_radiuss_reuse(self):
        repo = make_radiuss_repo()
        base = Concretizer(repo)
        reusable = base.solve_all(["hypre", "mfem"]).roots
        result = Concretizer(repo, reusable_specs=reusable).solve_all(
            ["mfem", "sundials"]
        )
        specs = list({
            n.dag_hash(): n
            for root in result.roots
            for n in root.traverse()
        }.values())
        report = Analyzer(["dag"]).run(
            AuditContext(repo=repo, concrete_specs=specs, reusable_specs=specs)
        )
        assert not report.has_errors, report.render()


class TestIncremental:
    def test_matches_classic_solve(self, repo):
        inc = Concretizer(repo, incremental=True)
        for spec in ("app", "example", "app"):
            incremental_root = inc.solve([spec]).roots[0]
            classic_root = Concretizer(repo).solve([spec]).roots[0]
            assert dag_canon(incremental_root) == dag_canon(classic_root)

    def test_counts_resolves(self, repo):
        before = counter("concretize.incremental_resolves")
        inc = Concretizer(repo, incremental=True)
        inc.solve(["app"])
        inc.solve(["example"])
        assert counter("concretize.incremental_resolves") == before + 2

    def test_ground_delta_span_not_classic_ground(self, repo):
        inc = Concretizer(repo, incremental=True)
        before = trace.phase_times()
        inc.solve(["app"])
        after = trace.phase_times()
        assert after.get("asp.ground_delta", 0.0) > before.get(
            "asp.ground_delta", 0.0
        )
        assert after.get("asp.ground", 0.0) == before.get("asp.ground", 0.0)

    def test_state_shared_across_concretizers(self, repo):
        a = Concretizer(repo, incremental=True)
        b = Concretizer(repo, incremental=True)
        a.solve(["zlib"])
        b.solve(["zlib"])
        key = next(iter(groundcache._STATES))
        assert groundcache._STATES[key].solves == 2

    def test_forbidden_stays_per_request(self, repo):
        inc = Concretizer(repo, incremental=True)
        with pytest.raises(UnsatisfiableError):
            inc.solve(["app"], forbidden=["zlib"])
        # the forbidden constraint must not leak into the next request
        result = inc.solve(["app"])
        assert any(n.name == "zlib" for n in result.roots[0].traverse())

    def test_batch_plus_incremental(self, repo):
        inc = Concretizer(repo, incremental=True)
        first = inc.solve_all(["app", "example"])
        second = inc.solve_all(["app", "tool"])
        classic = Concretizer(repo).solve_all(["app", "tool"])
        assert [dag_canon(r) for r in second.roots] == [
            dag_canon(r) for r in classic.roots
        ]
        assert [r.name for r in first.roots] == ["app", "example"]

    def test_splicing_incremental_matches_classic(self):
        repo = make_radiuss_repo()
        base = Concretizer(repo)
        reusable = base.solve(["hypre"]).roots
        classic = Concretizer(
            repo, reusable_specs=reusable, splicing=True
        ).solve(["hypre"])
        inc = Concretizer(
            repo, reusable_specs=reusable, splicing=True, incremental=True
        ).solve(["hypre"])
        assert [dag_canon(r) for r in inc.roots] == [
            dag_canon(r) for r in classic.roots
        ]
