"""Sanity checks over the shipped package repositories."""

import pytest

from repro.concretize import Concretizer
from repro.repos.mock import make_mock_repo
from repro.repos.radiuss import (
    MPI_DEPENDENT_ROOTS,
    NON_MPI_ROOTS,
    RADIUSS_ROOTS,
    add_mpiabi_replicas,
    make_radiuss_repo,
)


class TestMockRepo:
    def test_contents(self):
        repo = make_mock_repo()
        assert "example" in repo and "example-ng" in repo
        assert repo.is_virtual("mpi")
        assert repo.providers("mpi")[0] == "mpich"

    def test_paper_concretization_example(self):
        """Section 3.3's example, end to end."""
        repo = make_mock_repo()
        root = Concretizer(repo).solve(["example@1.0.0"]).roots[0]
        assert root.satisfies("example@1.0.0 +bzip")
        assert root["bzip2"].satisfies("bzip2@1.0.8 ~debug+pic+shared")
        assert root["zlib"].satisfies("zlib@1.2.11 +optimize+pic+shared")
        assert root["mpich"].satisfies("mpich pmi=pmix")

    def test_fresh_classes_per_call(self):
        a, b = make_mock_repo(), make_mock_repo()
        assert a.get("example") is not b.get("example")


class TestRadiussRepo:
    def test_all_roots_exist(self):
        repo = make_radiuss_repo()
        for root in RADIUSS_ROOTS:
            assert root in repo, root
        assert len(RADIUSS_ROOTS) == 32, "the paper concretizes 32 specs"

    def test_mpi_dependence_classification(self):
        """MPI_DEPENDENT_ROOTS really do reach the mpi virtual (with
        default variants), and NON_MPI_ROOTS really do not."""
        repo = make_radiuss_repo()
        from repro.buildcache import greedy_concretize

        for root in MPI_DEPENDENT_ROOTS:
            spec = greedy_concretize(repo, root)
            assert "mpich" in spec, f"{root} should depend on MPI"
        for root in NON_MPI_ROOTS:
            spec = greedy_concretize(repo, root)
            assert "mpich" not in spec, f"{root} should not depend on MPI"

    def test_py_shroud_is_mpi_free_control(self):
        assert "py-shroud" in NON_MPI_ROOTS

    def test_mpi_providers(self):
        repo = make_radiuss_repo()
        providers = repo.providers("mpi")
        assert providers[:3] == ["mpich", "mvapich2", "openmpi"]
        assert "cray-mpich" in providers and "mpiabi" in providers

    def test_cray_mpich_not_buildable(self):
        repo = make_radiuss_repo()
        assert not repo.get("cray-mpich").buildable

    def test_mpiabi_matches_paper_description(self):
        """'a mock package based on MVAPICH, with a single version and
        the ability to splice into mpich@3.4.3' (Section 6.1.2)."""
        repo = make_radiuss_repo()
        mpiabi = repo.get("mpiabi")
        assert len(mpiabi.declared_versions()) == 1
        splices = mpiabi.can_splice_decls
        assert len(splices) == 1
        assert splices[0].target.name == "mpich"
        assert splices[0].target.versions.contains(
            __import__("repro.spec", fromlist=["Version"]).Version("3.4.3")
        )

    def test_abi_layouts_mirror_section_2_1(self):
        repo = make_radiuss_repo()
        assert repo.get("mpich").type_layouts["MPI_Comm"] == "int32"
        assert repo.get("openmpi").type_layouts["MPI_Comm"] == "ptr-struct"
        assert repo.get("mvapich2").type_layouts["MPI_Comm"] == "int32"

    def test_every_root_concretizes(self):
        repo = make_radiuss_repo()
        concretizer = Concretizer(repo)
        for root in RADIUSS_ROOTS:
            result = concretizer.solve([root])
            result.roots[0].validate_concrete()


class TestReplicas:
    def test_add_replicas(self):
        repo = make_radiuss_repo()
        names = add_mpiabi_replicas(repo, 7)
        assert len(names) == 7
        for name in names:
            cls = repo.get(name)
            assert cls.can_splice_decls[0].target.name == "mpich"
        assert len([p for p in repo.providers("mpi") if p.startswith("mpiabi")]) == 8

    def test_replicas_differ_only_in_name(self):
        repo = make_radiuss_repo()
        a, b = (repo.get(n) for n in add_mpiabi_replicas(repo, 2))
        assert a.name != b.name
        assert a.declared_versions() == b.declared_versions()
        assert a.type_layouts == b.type_layouts


class TestScrComponentFamily:
    """The realistic SCR substructure (axl/er/kvtree/rankstr/shuffile)."""

    def test_scr_pulls_whole_family(self):
        repo = make_radiuss_repo()
        root = Concretizer(repo).solve(["scr"]).roots[0]
        names = {n.name for n in root.traverse()}
        assert {"axl", "er", "kvtree", "rankstr", "shuffile", "spath"} <= names

    def test_family_shares_one_kvtree(self):
        repo = make_radiuss_repo()
        root = Concretizer(repo).solve(["scr"]).roots[0]
        kvtrees = {
            n.dag_hash() for n in root.traverse() if n.name == "kvtree"
        }
        assert len(kvtrees) == 1

    def test_scr_family_splices_with_mpiabi(self):
        repo = make_radiuss_repo()
        cached = Concretizer(repo).solve(["scr ^mpich@3.4.3"]).roots[0]
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        result = c.solve(["scr ^mpiabi"])
        spliced = {s.name for s in result.spliced}
        # every MPI-linked component is rewired, not rebuilt
        assert {"scr", "er", "kvtree", "rankstr", "shuffile", "spath"} <= spliced
        assert {s.name for s in result.built} == {"mpiabi"}


class TestCaliperComponents:
    def test_caliper_defaults_pull_adiak_and_gotcha(self):
        repo = make_radiuss_repo()
        root = Concretizer(repo).solve(["caliper"]).roots[0]
        assert "adiak" in root and "gotcha" in root

    def test_caliper_minimal_build(self):
        repo = make_radiuss_repo()
        root = Concretizer(repo).solve(["caliper~adiak~gotcha"]).roots[0]
        assert "adiak" not in root and "gotcha" not in root
