"""Property-based tests of splice invariants over random DAGs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spec import DEPTYPE_LINK_RUN, Spec, VariantMap, VersionList


def make_node(name, version, deps=()):
    spec = Spec(
        name,
        VersionList.from_string(f"={version}"),
        VariantMap(),
        "centos8",
        "skylake",
    )
    for dep in deps:
        spec.add_dependency(dep, (DEPTYPE_LINK_RUN,))
    spec._concrete = True
    return spec


def random_dag(rng, n_nodes):
    """A random concrete DAG with node 0 as root, always containing a
    'target' leaf to splice."""
    target = make_node("target", "1.0")
    nodes = [target]
    for i in range(1, n_nodes):
        k = rng.randint(0, min(3, len(nodes)))
        deps = rng.sample(nodes, k)
        if rng.random() < 0.4 and target not in deps:
            deps.append(target)
        nodes.append(make_node(f"pkg{i}", "1.0", deps))
    root = make_node("root", "1.0", [nodes[-1], target])
    return root, target


@st.composite
def dags(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(2, 8))
    rng = random.Random(seed)
    return random_dag(rng, n)


@settings(max_examples=60, deadline=None)
@given(dags())
def test_splice_replaces_target_everywhere(case):
    root, target = case
    replacement = make_node("target", "2.0")
    result = root.splice(replacement, transitive=True)
    versions = {
        n.version.string for n in result.traverse() if n.name == "target"
    }
    assert versions == {"2.0"}


@settings(max_examples=60, deadline=None)
@given(dags())
def test_splice_preserves_node_names(case):
    root, target = case
    replacement = make_node("target", "2.0")
    result = root.splice(replacement, transitive=True)
    assert {n.name for n in result.traverse()} == {
        n.name for n in root.traverse()
    }


@settings(max_examples=60, deadline=None)
@given(dags())
def test_spliced_nodes_have_provenance_with_original_hashes(case):
    root, target = case
    originals = {n.name: n.dag_hash() for n in root.traverse()}
    replacement = make_node("target", "2.0")
    result = root.splice(replacement, transitive=True)
    for node in result.traverse():
        if node.spliced:
            assert node.build_spec.dag_hash() == originals[node.name]


@settings(max_examples=60, deadline=None)
@given(dags())
def test_exactly_ancestors_of_target_are_spliced(case):
    root, target = case
    # compute the set of nodes that (transitively) depend on target
    dependents = set()
    changed = True
    while changed:
        changed = False
        for node in root.traverse():
            if node.name in dependents or node.name == "target":
                continue
            for edge in node.edges(DEPTYPE_LINK_RUN):
                if edge.spec.name == "target" or edge.spec.name in dependents:
                    dependents.add(node.name)
                    changed = True
                    break
    replacement = make_node("target", "2.0")
    result = root.splice(replacement, transitive=True)
    spliced_names = {n.name for n in result.traverse() if n.spliced}
    assert spliced_names == dependents


@settings(max_examples=60, deadline=None)
@given(dags())
def test_splice_is_idempotent_on_same_replacement(case):
    root, target = case
    replacement = make_node("target", "2.0")
    once = root.splice(replacement, transitive=True)
    twice = once.splice(replacement, transitive=True)
    assert once.dag_hash() == twice.dag_hash()


@settings(max_examples=60, deadline=None)
@given(dags())
def test_splice_back_restores_dependency_structure(case):
    root, target = case
    replacement = make_node("target", "2.0")
    there = root.splice(replacement, transitive=True)
    back = there.splice(target, transitive=True)
    # structure matches the original, but provenance (and so hashes)
    # records the round trip
    assert {
        (n.name, n.version.string) for n in back.traverse()
    } == {(n.name, n.version.string) for n in root.traverse()}
    assert back["target"].dag_hash() == target.dag_hash()
