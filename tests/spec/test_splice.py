"""Splice mechanics (Section 4.1 / Figure 2)."""

import pytest

from repro.spec import DEPTYPE_BUILD, DEPTYPE_LINK_RUN, Spec, SpecError, parse_one


def concrete(text, deps=(), build_deps=()):
    spec = parse_one(text + " arch=centos8-skylake")
    for dep in deps:
        spec.add_dependency(dep, (DEPTYPE_LINK_RUN,))
    for dep in build_deps:
        spec.add_dependency(dep, (DEPTYPE_BUILD,))
    spec._mark_concrete()
    return spec


@pytest.fixture()
def figure2():
    """The exact scenario of Figure 2."""
    z10 = concrete("zlib@=1.0")
    z11 = concrete("zlib@=1.1")
    s = concrete("s@=1.0")
    h = concrete("h@=1.0", deps=[z10])
    t = concrete("t@=1.0", deps=[h, z10])
    h_prime = concrete("h@=2.0", deps=[s, z11])
    return t, h, h_prime, s, z10, z11


class TestFigure2:
    def test_transitive_splice_brings_new_shared_dep(self, figure2):
        t, h, h_prime, s, z10, z11 = figure2
        result = t.splice(h_prime, transitive=True)
        assert result["h"].dag_hash() == h_prime.dag_hash()
        assert result["zlib"].version.string == "1.1"
        assert result["s"].dag_hash() == s.dag_hash()

    def test_transitive_splice_sets_build_spec(self, figure2):
        t, h, h_prime, *_ = figure2
        result = t.splice(h_prime, transitive=True)
        assert result.spliced
        assert result.build_spec.dag_hash() == t.dag_hash()
        # the spliced-in H' itself was not changed → not spliced
        assert not result["h"].spliced

    def test_intransitive_splice_restores_shared_dep(self, figure2):
        t, h, h_prime, s, z10, z11 = figure2
        spliced = t.splice(h_prime, transitive=True)
        result = spliced.splice(z10, transitive=False)
        assert result["zlib"].version.string == "1.0"
        # H' was re-pointed at Z@1.0 → it is spliced with H' provenance
        h_node = result["h"]
        assert h_node.spliced
        assert h_node.build_spec.dag_hash() == h_prime.dag_hash()
        # S is untouched
        assert not result["s"].spliced

    def test_provenance_chain_points_to_true_original(self, figure2):
        t, h, h_prime, s, z10, z11 = figure2
        once = t.splice(h_prime, transitive=True)
        twice = once.splice(z10, transitive=False)
        # twice-spliced T's build spec is the ORIGINAL t, not `once`
        assert twice.build_spec.dag_hash() == t.dag_hash()

    def test_all_hashes_distinct(self, figure2):
        t, h, h_prime, *_ = figure2
        once = t.splice(h_prime, transitive=True)
        hashes = {t.dag_hash(), h_prime.dag_hash(), once.dag_hash()}
        assert len(hashes) == 3


class TestSpliceDetails:
    def test_inputs_not_mutated(self, figure2):
        t, h, h_prime, *_ = figure2
        before = t.dag_hash()
        t.splice(h_prime, transitive=True)
        assert t.dag_hash() == before
        assert not t.spliced

    def test_build_deps_dropped_from_spliced_nodes(self):
        z10 = concrete("zlib@=1.0")
        z11 = concrete("zlib@=1.1")
        cmake = concrete("cmake@=3")
        app = concrete("app@=1", deps=[z10], build_deps=[cmake])
        result = app.splice(z11, transitive=True)
        assert result.spliced
        assert result.dependency_edge("cmake") is None, (
            "build deps are removed from spliced specs (Section 4.1)"
        )
        # ...but the build spec retains them for reproducibility
        assert result.build_spec.dependency_edge("cmake") is not None

    def test_unchanged_nodes_keep_build_deps(self):
        z10 = concrete("zlib@=1.0")
        z11 = concrete("zlib@=1.1")
        cmake = concrete("cmake@=3")
        mid = concrete("mid@=1", build_deps=[cmake])
        app = concrete("app@=1", deps=[z10, mid])
        result = app.splice(z11, transitive=True)
        assert result["mid"].dependency_edge("cmake") is not None

    def test_cross_package_splice_with_replace(self):
        old = concrete("example@=1.0")
        new = concrete("example-ng@=2.3.2+compat")
        app = concrete("app@=1", deps=[old])
        result = app.splice(new, transitive=True, replace="example")
        assert result.dependency_edge("example") is None
        assert result.dependency_edge("example-ng") is not None
        assert result.spliced

    def test_deep_splice_rewires_intermediate_nodes(self):
        z10 = concrete("zlib@=1.0")
        z11 = concrete("zlib@=1.1")
        mid = concrete("mid@=1", deps=[z10])
        app = concrete("app@=1", deps=[mid])
        result = app.splice(z11, transitive=True)
        assert result["zlib"].version.string == "1.1"
        assert result["mid"].spliced
        assert result["mid"].build_spec.dag_hash() == mid.dag_hash()
        assert result.spliced

    def test_sibling_subtree_untouched(self):
        z10 = concrete("zlib@=1.0")
        z11 = concrete("zlib@=1.1")
        other = concrete("other@=1")
        clean = concrete("clean@=1", deps=[other])
        app = concrete("app@=1", deps=[z10, clean])
        result = app.splice(z11, transitive=True)
        assert not result["clean"].spliced
        assert result["clean"].dag_hash() == clean.dag_hash()


class TestSpliceErrors:
    def test_requires_concrete_target(self):
        abstract = parse_one("a ^zlib")
        z = concrete("zlib@=1.1")
        with pytest.raises(SpecError):
            abstract.splice(z)

    def test_requires_concrete_replacement(self):
        app = concrete("app@=1", deps=[concrete("zlib@=1.0")])
        with pytest.raises(SpecError):
            app.splice(parse_one("zlib@1.1"))

    def test_missing_dependency_rejected(self):
        app = concrete("app@=1")
        with pytest.raises(SpecError):
            app.splice(concrete("zlib@=1.1"))

    def test_self_splice_rejected(self):
        z = concrete("zlib@=1.0")
        app = concrete("zlib-app@=1", deps=[z])
        with pytest.raises(SpecError):
            z.splice(z.copy(), replace="zlib")
