"""Spec DAG semantics: satisfies/intersects/constrain, hashing, serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.spec import (
    DEPTYPE_BUILD,
    DEPTYPE_LINK_RUN,
    Spec,
    SpecError,
    UnsatisfiableSpecError,
    parse_one,
)


def concrete(text: str, deps=()):
    spec = parse_one(text)
    if spec.os is None:
        spec.os = "centos8"
    if spec.target is None:
        spec.target = "skylake"
    for dep, types in deps:
        spec.add_dependency(dep, types)
    spec._mark_concrete()
    return spec


class TestSatisfies:
    def test_name_mismatch(self):
        assert not parse_one("a@1").satisfies("b@1")

    def test_version_subset(self):
        assert parse_one("a@1.2.3").satisfies("a@1.2")
        assert not parse_one("a@1.2").satisfies("a@=1.2.3")

    def test_variant_superset(self):
        assert parse_one("a+x~y").satisfies("a+x")
        assert not parse_one("a+x").satisfies("a+x~y")

    def test_anonymous_constraint(self):
        assert parse_one("a@2+x").satisfies("@1:3")

    def test_dependency_anywhere_in_dag(self):
        z = concrete("zlib@=1.2")
        h = concrete("hdf5@=1.0", deps=[(z, (DEPTYPE_LINK_RUN,))])
        top = concrete("app@=1.0", deps=[(h, (DEPTYPE_LINK_RUN,))])
        assert top.satisfies("app ^zlib@1.2")  # transitive dep matches
        assert not top.satisfies("app ^zlib@1.3")

    def test_missing_dependency_fails(self):
        assert not parse_one("a@1").satisfies("a ^zlib")

    def test_arch(self):
        assert parse_one("a os=centos8").satisfies("a os=centos8")
        assert not parse_one("a os=centos8").satisfies("a os=ubuntu")

    def test_string_argument(self):
        assert parse_one("a@1.5+x").satisfies("a@1:2")


class TestIntersects:
    def test_version_overlap(self):
        assert parse_one("a@1:3").intersects("a@2:5")
        assert not parse_one("a@1:2").intersects("a@3:4")

    def test_variant_conflict(self):
        assert not parse_one("a+x").intersects("a~x")

    def test_anonymous_intersects_named(self):
        assert parse_one("@1:3").intersects("a@2")

    def test_symmetric(self):
        a, b = parse_one("a@1:3+x"), parse_one("a@2:5")
        assert a.intersects(b) == b.intersects(a)


class TestConstrain:
    def test_version_tightens(self):
        spec = parse_one("a@1:5")
        assert spec.constrain("a@2:3")
        assert not spec.versions.contains(parse_one("a@=1").versions.concrete)

    def test_adds_variant(self):
        spec = parse_one("a")
        spec.constrain("a+x")
        assert spec.variants["x"] == "True"

    def test_adds_dependency(self):
        spec = parse_one("a")
        spec.constrain("a ^b@2")
        assert spec.dependency_edge("b") is not None

    def test_conflict_raises(self):
        with pytest.raises(UnsatisfiableSpecError):
            parse_one("a+x").constrain("a~x")

    def test_version_conflict_raises(self):
        with pytest.raises(UnsatisfiableSpecError):
            parse_one("a@1:2").constrain("a@3:4")

    def test_concrete_not_constrainable(self):
        spec = concrete("a@=1")
        with pytest.raises(SpecError):
            spec.constrain("a@2")

    def test_constrain_returns_false_when_noop(self):
        spec = parse_one("a@2+x")
        assert spec.constrain("a@2") is False

    def test_names_anonymous(self):
        spec = parse_one("@1:3")
        spec.constrain("a")
        assert spec.name == "a"


class TestHashing:
    def test_deterministic(self):
        a = concrete("x@=1+f")
        b = concrete("x@=1+f")
        assert a.dag_hash() == b.dag_hash()

    def test_variant_changes_hash(self):
        assert concrete("x@=1+f").dag_hash() != concrete("x@=1~f").dag_hash()

    def test_dependency_changes_hash(self):
        z1 = concrete("z@=1")
        z2 = concrete("z@=2")
        a1 = concrete("a@=1", deps=[(z1, (DEPTYPE_LINK_RUN,))])
        a2 = concrete("a@=1", deps=[(z2, (DEPTYPE_LINK_RUN,))])
        assert a1.dag_hash() != a2.dag_hash()

    def test_hash_length_parameter(self):
        spec = concrete("x@=1")
        assert len(spec.dag_hash(7)) == 7
        assert spec.dag_hash().startswith(spec.dag_hash(7))

    def test_equality_via_hash(self):
        assert concrete("x@=1") == concrete("x@=1")
        assert concrete("x@=1") != concrete("x@=2")

    def test_build_spec_distinguishes_hash(self):
        plain = concrete("x@=1")
        provenance = concrete("x@=1")
        provenance.build_spec = concrete("x@=0.9")
        provenance._invalidate_hash()
        assert plain.dag_hash() != provenance.dag_hash()


class TestTraversal:
    def _diamond(self):
        z = concrete("z@=1")
        b = concrete("b@=1", deps=[(z, (DEPTYPE_LINK_RUN,))])
        c = concrete("c@=1", deps=[(z, (DEPTYPE_LINK_RUN,))])
        return concrete(
            "a@=1", deps=[(b, (DEPTYPE_LINK_RUN,)), (c, (DEPTYPE_LINK_RUN,))]
        )

    def test_preorder_root_first(self):
        a = self._diamond()
        names = [s.name for s in a.traverse()]
        assert names[0] == "a"
        assert set(names) == {"a", "b", "c", "z"}

    def test_postorder_root_last(self):
        a = self._diamond()
        assert [s.name for s in a.traverse(order="post")][-1] == "a"

    def test_getitem_finds_deep(self):
        a = self._diamond()
        assert a["z"].name == "z"
        with pytest.raises(KeyError):
            a["nope"]

    def test_contains_name(self):
        assert "z" in self._diamond()

    def test_deptype_filter(self):
        z = concrete("z@=1")
        tool = concrete("cmake@=3")
        a = concrete(
            "a@=1", deps=[(z, (DEPTYPE_LINK_RUN,)), (tool, (DEPTYPE_BUILD,))]
        )
        link_names = {s.name for s in a.traverse(deptype=DEPTYPE_LINK_RUN)}
        assert link_names == {"a", "z"}


class TestCopyAndSerialize:
    def test_copy_independent(self):
        a = parse_one("a@1 ^b@2")
        b = a.copy()
        b.dependency_edge("b").spec.variants.set("x", True)
        assert "x" not in a.dependency_edge("b").spec.variants

    def test_copy_preserves_dag_sharing(self):
        z = concrete("z@=1")
        b = concrete("b@=1", deps=[(z, (DEPTYPE_LINK_RUN,))])
        a = concrete("a@=1", deps=[(b, (DEPTYPE_LINK_RUN,)), (z, (DEPTYPE_LINK_RUN,))])
        copied = a.copy()
        assert copied["z"] is copied["b"]["z"], "shared node stays shared"

    def test_to_dict_round_trip(self):
        z = concrete("z@=1+opt")
        a = concrete("a@=2", deps=[(z, (DEPTYPE_LINK_RUN,))])
        again = Spec.from_dict(a.to_dict())
        assert again.dag_hash() == a.dag_hash()
        assert again["z"].variants["opt"] == "True"

    def test_from_dict_missing_root_raises(self):
        with pytest.raises(SpecError):
            Spec.from_dict({"root": "zzz", "nodes": []})

    def test_validate_concrete(self):
        spec = parse_one("a@=1")
        with pytest.raises(SpecError):
            spec.validate_concrete()  # os/target missing
        concrete("a@=1").validate_concrete()


class TestAddDependency:
    def test_merges_deptypes(self):
        a = parse_one("a")
        a.add_dependency(parse_one("b@1"), (DEPTYPE_BUILD,))
        a.add_dependency(parse_one("b"), (DEPTYPE_LINK_RUN,))
        assert a.dependency_edge("b").deptypes == frozenset(
            [DEPTYPE_BUILD, DEPTYPE_LINK_RUN]
        )

    def test_merges_constraints(self):
        a = parse_one("a")
        a.add_dependency(parse_one("b@1:5"))
        a.add_dependency(parse_one("b@2:3"))
        dep = a.dependency_edge("b").spec
        assert not dep.versions.contains(parse_one("b@=1").versions.concrete)

    def test_anonymous_dependency_rejected(self):
        with pytest.raises(SpecError):
            parse_one("a").add_dependency(parse_one("@1.0"))

    def test_bad_deptype_rejected(self):
        with pytest.raises(SpecError):
            parse_one("a").add_dependency(parse_one("b"), ("runtime",))


# ---------------------------------------------------------------------------
# property-based: satisfies is a preorder w.r.t. constrain
# ---------------------------------------------------------------------------
variant_sets = st.dictionaries(
    st.sampled_from(["x", "y", "z"]), st.booleans(), max_size=3
)


@given(variant_sets, variant_sets)
def test_constrain_result_satisfies_both(va, vb):
    a = Spec("p")
    for k, v in va.items():
        a.variants.set(k, v)
    b = Spec("p")
    for k, v in vb.items():
        b.variants.set(k, v)
    conflicting = any(va.get(k) != vb[k] for k in vb if k in va)
    if conflicting:
        with pytest.raises(UnsatisfiableSpecError):
            a.constrain(b)
    else:
        a.constrain(b)
        assert a.variants.satisfies(b.variants)
