"""Spec-syntax parser tests, including Table 1 as an executable table."""

import pytest

from repro.spec import (
    DEPTYPE_BUILD,
    DEPTYPE_LINK_RUN,
    SpecParseError,
    Version,
    parse,
    parse_one,
)


class TestTable1:
    """Each row of the paper's Table 1, verified."""

    def test_at_requires_version(self):
        spec = parse_one("hdf5@1.14.5")
        assert spec.name == "hdf5"
        assert spec.versions.contains(Version("1.14.5"))

    def test_plus_requires_variant(self):
        spec = parse_one("hdf5+cxx")
        assert spec.variants["cxx"] == "True"

    def test_tilde_disables_variant(self):
        spec = parse_one("hdf5~mpi")
        assert spec.variants["mpi"] == "False"

    def test_caret_is_link_run_dependency(self):
        spec = parse_one("hdf5 ^zlib")
        edge = spec.dependency_edge("zlib")
        assert edge is not None and DEPTYPE_LINK_RUN in edge.deptypes

    def test_percent_is_build_dependency(self):
        spec = parse_one("hdf5%clang")
        edge = spec.dependency_edge("clang")
        assert edge is not None and edge.deptypes == frozenset([DEPTYPE_BUILD])

    def test_target_key_value(self):
        spec = parse_one("hdf5 target=icelake")
        assert spec.target == "icelake"

    def test_variant_key_value(self):
        spec = parse_one("hdf5 api=default")
        assert spec.variants["api"] == "default"


class TestParserFeatures:
    def test_version_ranges(self):
        spec = parse_one("x@1.2:1.6")
        assert spec.versions.contains(Version("1.4"))

    def test_version_disjunction(self):
        spec = parse_one("x@1.2,2.0:")
        assert spec.versions.contains(Version("2.5"))
        assert not spec.versions.contains(Version("1.5"))

    def test_exact_version(self):
        spec = parse_one("x@=1.5")
        assert spec.versions.concrete == Version("1.5")

    def test_arch_triplet(self):
        spec = parse_one("x arch=linux-centos8-skylake")
        assert spec.os == "centos8" and spec.target == "skylake"

    def test_arch_pair(self):
        spec = parse_one("x arch=centos8-skylake")
        assert spec.os == "centos8" and spec.target == "skylake"

    def test_os_key(self):
        assert parse_one("x os=ubuntu22").os == "ubuntu22"

    def test_multiple_dependencies_attach_to_root(self):
        spec = parse_one("a ^b ^c@2")
        assert spec.dependency_edge("b") is not None
        assert spec.dependency_edge("c") is not None

    def test_dependency_attributes_bind_to_dependency(self):
        spec = parse_one("a@1 ^b@2+opt")
        assert spec.versions.contains(Version("1.0"))
        dep = spec.dependency_edge("b").spec
        assert dep.versions.contains(Version("2.1"))
        assert dep.variants["opt"] == "True"

    def test_anonymous_constraint_spec(self):
        spec = parse_one("@1.2 +shared")
        assert spec.name is None
        assert spec.variants["shared"] == "True"

    def test_multiple_specs(self):
        specs = parse("a@1 b@2")
        assert [s.name for s in specs] == ["a", "b"]

    def test_whitespace_tolerance(self):
        spec = parse_one("hdf5 @1.14  +cxx   ^zlib")
        assert spec.variants["cxx"] == "True"

    def test_combined_everything(self):
        spec = parse_one(
            "example@1.0.0 +bzip arch=linux-centos8-skylake "
            "^bzip2@1.0.8 ~debug+pic+shared ^zlib@1.2.11 ^mpich@3.1 pmi=pmix"
        )
        assert spec.name == "example"
        assert spec.dependency_edge("mpich").spec.variants["pmi"] == "pmix"

    def test_repeated_version_constrains(self):
        spec = parse_one("x@1:3@2:4")
        assert spec.versions.contains(Version("2.5"))
        assert not spec.versions.contains(Version("1.5"))


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",  # nothing
            "^",  # dependency without name
            "a ^",  # trailing dependency sigil
            "a @1:3@4:5",  # contradictory versions
            "@@@",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SpecParseError):
            parse_one(bad)

    def test_two_specs_is_not_one(self):
        with pytest.raises(SpecParseError):
            parse_one("a b")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "hdf5@1.14.5+cxx~mpi",
            "hdf5 pmi=pmix",
            "a@1.2:1.6 ^b@2",
            "x@=1.5",
        ],
    )
    def test_parse_format_parse(self, text):
        first = parse_one(text)
        again = parse_one(first.format())
        assert first.format() == again.format()
