"""Unit and property tests for the version model."""

import pytest
from hypothesis import given, strategies as st

from repro.spec.version import (
    Version,
    VersionError,
    VersionList,
    VersionRange,
    any_version,
    ver,
)


class TestVersionParsing:
    def test_simple(self):
        v = Version("1.2.3")
        assert v.components == (1, 2, 3)

    def test_alpha_components(self):
        assert Version("1.2rc1").components == (1, 2, "rc", 1)

    def test_separators_normalized(self):
        assert Version("1-2_3").components == Version("1.2.3").components

    def test_infinity_version(self):
        assert Version("develop").components != Version("main").components

    def test_numeric_input(self):
        assert Version(1.2) == Version("1.2")

    def test_copy_constructor(self):
        assert Version(Version("1.2")) == Version("1.2")

    @pytest.mark.parametrize("bad", ["", "   ", "a b", "1.2!3", "@1.2"])
    def test_invalid(self, bad):
        with pytest.raises(VersionError):
            Version(bad)


class TestVersionOrdering:
    @pytest.mark.parametrize(
        "lo,hi",
        [
            ("1.0", "2.0"),
            ("1.0", "1.1"),
            ("1.9", "1.10"),  # numeric, not lexicographic
            ("1.0", "1.0.1"),  # more components = newer
            ("1.0rc1", "1.0"),  # prerelease sorts below release
            ("1.0alpha", "1.0beta"),
            ("1.0.b", "1.0.1"),  # strings sort below ints
            ("99.99", "main"),  # infinity versions beat numbers
            ("master", "develop"),  # develop is the most bleeding-edge
        ],
    )
    def test_less_than(self, lo, hi):
        assert Version(lo) < Version(hi)
        assert Version(hi) > Version(lo)
        assert Version(lo) != Version(hi)

    def test_equality_ignores_separators(self):
        assert Version("1-2") == Version("1.2")
        assert hash(Version("1-2")) == hash(Version("1.2"))

    def test_sort_stability(self):
        versions = [Version(s) for s in ["2.0", "1.0", "develop", "1.0rc1", "1.5"]]
        ordered = [v.string for v in sorted(versions)]
        assert ordered == ["1.0rc1", "1.0", "1.5", "2.0", "develop"]

    def test_up_to(self):
        assert Version("1.2.3").up_to(2) == Version("1.2")

    def test_is_prefix_of(self):
        assert Version("1.2").is_prefix_of(Version("1.2.3"))
        assert not Version("1.2").is_prefix_of(Version("1.20"))
        assert Version("1.2").is_prefix_of(Version("1.2"))


class TestVersionRange:
    def test_contains_inclusive(self):
        r = VersionRange("1.2", "1.6")
        assert r.contains(Version("1.2"))
        assert r.contains(Version("1.6"))
        assert r.contains(Version("1.4"))
        assert not r.contains(Version("1.7"))
        assert not r.contains(Version("1.1"))

    def test_prefix_semantics_on_bounds(self):
        # @:1.12 admits 1.12.2 (Spack semantics)
        r = VersionRange(None, "1.12")
        assert r.contains(Version("1.12.2"))
        assert not r.contains(Version("1.13"))

    def test_open_ranges(self):
        assert VersionRange("2.0", None).contains(Version("99"))
        assert VersionRange(None, None).contains(Version("anything2"))

    def test_empty_range_rejected(self):
        with pytest.raises(VersionError):
            VersionRange("2.0", "1.0")

    def test_intersection(self):
        a = VersionRange("1.0", "2.0")
        b = VersionRange("1.5", "3.0")
        assert a.intersection(b) == VersionRange("1.5", "2.0")

    def test_disjoint_intersection_is_none(self):
        assert VersionRange("1.0", "1.4").intersection(VersionRange("2.0", "3.0")) is None

    def test_satisfies_subset(self):
        assert VersionRange("1.2", "1.4").satisfies(VersionRange("1.0", "2.0"))
        assert not VersionRange("1.0", "2.0").satisfies(VersionRange("1.2", "1.4"))

    def test_single_version_range_str(self):
        assert str(VersionRange("1.4", "1.4")) == "1.4"


class TestVersionList:
    def test_parse_bare_version_is_prefix_range(self):
        vl = VersionList.from_string("1.14")
        assert vl.contains(Version("1.14.5"))
        assert not vl.contains(Version("1.15"))

    def test_parse_exact(self):
        vl = VersionList.from_string("=1.14")
        assert vl.concrete == Version("1.14")
        assert not vl.contains(Version("1.14.5"))

    def test_parse_disjunction(self):
        vl = VersionList.from_string("1.2,1.4:1.6")
        assert vl.contains(Version("1.2.11"))
        assert vl.contains(Version("1.5"))
        assert not vl.contains(Version("1.3"))

    def test_any(self):
        assert any_version().is_any
        assert any_version().contains(Version("0.0.1"))
        assert str(any_version()) == ":"

    def test_round_trip(self):
        for text in ["1.2,1.4:1.6", "2:", ":3", "1.5"]:
            assert str(VersionList.from_string(text)) == text

    def test_intersection(self):
        a = VersionList.from_string("1.0:2.0")
        b = VersionList.from_string("1.5:3.0")
        meet = a.intersection(b)
        assert meet.contains(Version("1.7"))
        assert not meet.contains(Version("2.5"))

    def test_empty_intersection_falsy(self):
        a = VersionList.from_string("1.0:1.4")
        b = VersionList.from_string("2.0:3.0")
        assert not a.intersection(b)

    def test_union(self):
        u = VersionList.from_string("1.0").union(VersionList.from_string("2.0"))
        assert u.contains(Version("1.0")) and u.contains(Version("2.0"))

    def test_satisfies_any(self):
        assert VersionList.from_string("1.5").satisfies(any_version())

    def test_ver_helper(self):
        assert isinstance(ver("1.2"), Version)
        assert isinstance(ver("1.2:1.6"), VersionList)
        assert isinstance(ver("1.2,1.6"), VersionList)


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------
version_strings = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=30).map(str),
        st.sampled_from(["a", "b", "rc1", "alpha", "beta", "p1"]),
    ),
    min_size=1,
    max_size=4,
).map(".".join)


@given(version_strings, version_strings)
def test_ordering_is_total_and_antisymmetric(a, b):
    va, vb = Version(a), Version(b)
    assert (va < vb) + (vb < va) + (va == vb) == 1


@given(version_strings, version_strings, version_strings)
def test_ordering_transitive(a, b, c):
    va, vb, vc = sorted([Version(a), Version(b), Version(c)])
    assert va <= vb <= vc
    assert va <= vc


@given(version_strings)
def test_version_satisfies_itself(a):
    v = Version(a)
    assert v.satisfies(v)
    assert v.intersects(v)


@given(version_strings, version_strings)
def test_range_contains_endpoints(a, b):
    va, vb = sorted([Version(a), Version(b)])
    r = VersionRange(va, vb)
    assert r.contains(va)
    assert r.contains(vb)


@given(version_strings, version_strings, version_strings)
def test_satisfies_implies_intersects(a, b, c):
    point = Version(a)
    lo, hi = sorted([Version(b), Version(c)])
    r = VersionRange(lo, hi)
    if point.satisfies(r):
        assert point.intersects(r)


@given(st.lists(version_strings, min_size=1, max_size=4),
       st.lists(version_strings, min_size=1, max_size=4))
def test_list_intersection_is_subset_of_both(xs, ys):
    a = VersionList([Version(x) for x in set(xs)])
    b = VersionList([Version(y) for y in set(ys)])
    meet = a.intersection(b)
    for constraint in meet:
        assert a.contains(constraint) and b.contains(constraint)


@given(version_strings, version_strings)
def test_intersection_commutes(a, b):
    ra = VersionList.from_string(f"{a}")
    rb = VersionList.from_string(f"{b}")
    assert ra.intersection(rb) == rb.intersection(ra)
