"""Property-based spec-parser round trips."""

from hypothesis import given, strategies as st

from repro.spec import parse_one

names = st.from_regex(r"[a-z][a-z0-9]{0,6}(-[a-z0-9]{1,4})?", fullmatch=True)
versions = st.lists(
    st.integers(0, 30).map(str), min_size=1, max_size=3
).map(".".join)
variant_names = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)


@st.composite
def spec_texts(draw):
    parts = [draw(names)]
    if draw(st.booleans()):
        parts.append(f"@{draw(versions)}")
    seen_variants = set()
    for _ in range(draw(st.integers(0, 2))):
        sigil = draw(st.sampled_from(["+", "~"]))
        variant = draw(variant_names)
        if variant in seen_variants:
            continue  # conflicting repeats are a separate (error) path
        seen_variants.add(variant)
        parts.append(f"{sigil}{variant}")
    if draw(st.booleans()):
        kv = draw(variant_names)
        if kv not in seen_variants:
            parts.append(f" {kv}={draw(names)}")
    dep_names = draw(
        st.lists(names, max_size=2, unique=True)
    )
    for dep in dep_names:
        parts.append(f" ^{dep}")
        if draw(st.booleans()):
            parts.append(f"@{draw(versions)}")
    return "".join(parts)


@given(spec_texts())
def test_parse_format_parse_is_stable(text):
    first = parse_one(text)
    text2 = first.format()
    second = parse_one(text2)
    assert second.format() == text2, "formatting reaches a fixed point"


@given(spec_texts())
def test_parsed_spec_satisfies_itself_as_constraint(text):
    spec = parse_one(text)
    # node-local self-satisfaction (deps may be absent on the abstract
    # side, so compare the root node's constraints only)
    clone = parse_one(text)
    assert spec.versions.satisfies(clone.versions)
    assert spec.variants.satisfies(clone.variants)


@given(spec_texts(), spec_texts())
def test_intersects_is_symmetric(a, b):
    sa, sb = parse_one(a), parse_one(b)
    assert sa.intersects(sb) == sb.intersects(sa)


@given(spec_texts())
def test_copy_preserves_format(text):
    spec = parse_one(text)
    assert spec.copy().format() == spec.format()


@given(spec_texts(), spec_texts())
def test_constrain_produces_satisfying_spec(a, b):
    from repro.spec import UnsatisfiableSpecError

    sa, sb = parse_one(a), parse_one(b)
    if sa.name != sb.name:
        return
    try:
        sa.constrain(sb)
    except UnsatisfiableSpecError:
        return
    # after constraining, sa meets sb's node-local constraints
    assert sa.versions.satisfies(sb.versions)
    assert sa.variants.satisfies(sb.variants)
