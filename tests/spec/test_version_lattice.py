"""VersionList lattice operations: union/intersection edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.spec.version import (
    Version,
    VersionList,
    VersionRange,
    any_version,
)


def vl(text):
    return VersionList.from_string(text)


class TestUnion:
    def test_union_contains_both_sides(self):
        u = vl("1.0").union(vl("2.0"))
        assert u.contains(Version("1.0.5"))
        assert u.contains(Version("2.0"))

    def test_union_deduplicates(self):
        u = vl("1.0").union(vl("1.0"))
        assert len(list(u)) == 1

    def test_union_with_any_absorbs(self):
        u = vl("1.5").union(any_version())
        assert u.contains(Version("99"))


class TestIntersection:
    def test_overlapping_ranges(self):
        meet = vl("1:3").intersection(vl("2:5"))
        assert meet.contains(Version("2.5"))
        assert not meet.contains(Version("4"))

    def test_point_in_range(self):
        meet = vl("=1.5").intersection(vl("1:2"))
        assert meet.concrete == Version("1.5")

    def test_disjunction_intersection(self):
        meet = vl("1.0,3.0").intersection(vl("2.5:3.5"))
        assert meet.contains(Version("3.0"))
        assert not meet.contains(Version("1.0"))

    def test_empty_is_falsy(self):
        assert not vl("1:2").intersection(vl("3:4"))

    def test_any_is_identity(self):
        original = vl("1.2,1.4:1.6")
        assert original.intersection(any_version()) == original


class TestSatisfiesEdges:
    def test_disjunction_satisfies_superset(self):
        assert vl("1.2,1.4").satisfies(vl("1:2"))
        assert not vl("1.2,3.0").satisfies(vl("1:2"))

    def test_range_never_satisfies_point(self):
        assert not vl("1:2").satisfies(vl("=1.5"))

    def test_prefix_range_satisfies_wider_prefix(self):
        # @1.2.3 (prefix range) fits inside @1.2 (prefix range)
        assert vl("1.2.3").satisfies(vl("1.2"))
        assert not vl("1.2").satisfies(vl("1.2.3"))


versions = st.lists(
    st.integers(0, 9).map(str), min_size=1, max_size=3
).map(".".join)


@given(versions, versions)
def test_union_is_commutative_on_membership(a, b):
    u1 = vl(a).union(vl(b))
    u2 = vl(b).union(vl(a))
    for probe in (a, b, a + ".5"):
        assert u1.contains(Version(probe)) == u2.contains(Version(probe))


@given(versions, versions, versions)
def test_intersection_membership_is_conjunction(a, b, probe):
    meet = vl(a).intersection(vl(b))
    p = Version(probe)
    assert meet.contains(p) == (vl(a).contains(p) and vl(b).contains(p))


@given(versions)
def test_intersection_with_self_is_idempotent_on_membership(a):
    original = vl(a)
    meet = original.intersection(original)
    for probe in (a, a + ".1", "0"):
        assert meet.contains(Version(probe)) == original.contains(Version(probe))
