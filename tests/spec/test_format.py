"""Rendering tests: format_spec / format_node / tree."""

from repro.spec import DEPTYPE_BUILD, DEPTYPE_LINK_RUN, parse_one, tree
from repro.spec.format import format_node, format_spec


def concrete(text, deps=(), build_deps=()):
    spec = parse_one(text + " arch=centos8-skylake")
    for d in deps:
        spec.add_dependency(d, (DEPTYPE_LINK_RUN,))
    for d in build_deps:
        spec.add_dependency(d, (DEPTYPE_BUILD,))
    spec._mark_concrete()
    return spec


class TestFormatNode:
    def test_concrete_version_bare(self):
        assert format_node(concrete("x@=1.2"), show_arch=False) == "x@1.2"

    def test_variants_order(self):
        spec = parse_one("x+b~a v=1")
        assert format_node(spec, show_arch=False) == "x~a+b v=1"

    def test_arch_rendering(self):
        assert "arch=centos8-skylake" in format_node(concrete("x@=1"))

    def test_external_marker(self):
        spec = concrete("x@=1")
        spec.external = True
        assert "[external]" in format_node(spec)

    def test_version_range(self):
        assert format_node(parse_one("x@1.2:1.6"), show_arch=False) == "x@1.2:1.6"


class TestFormatSpec:
    def test_dependencies_listed_once(self):
        z = concrete("z@=1")
        a = concrete("a@=1", deps=[z])
        top = concrete("t@=1", deps=[a, z])
        text = format_spec(top)
        assert text.count("^z@") == 1

    def test_build_dep_sigil(self):
        gcc = concrete("gcc@=12")
        spec = concrete("x@=1", build_deps=[gcc])
        assert "%gcc@12" in format_spec(spec)

    def test_no_deps_option(self):
        spec = concrete("x@=1", deps=[concrete("z@=1")])
        assert "^" not in format_spec(spec, deps=False)


class TestTree:
    def test_indentation_reflects_depth(self):
        z = concrete("z@=1")
        a = concrete("a@=1", deps=[z])
        top = concrete("t@=1", deps=[a])
        lines = tree(top).splitlines()
        assert lines[0].startswith("[")
        assert lines[1].startswith("    [")
        assert lines[2].startswith("        [")

    def test_hash_prefix_shown(self):
        spec = concrete("x@=1")
        assert spec.dag_hash(7) in tree(spec)

    def test_splice_marker(self):
        z10, z11 = concrete("z@=1.0"), concrete("z@=1.1")
        top = concrete("t@=1", deps=[z10])
        spliced = top.splice(z11, transitive=True)
        text = tree(spliced)
        assert "[spliced, build spec:" in text
        assert top.dag_hash(7) in text

    def test_no_hashes_mode(self):
        spec = concrete("x@=1")
        assert "[" not in tree(spec, hashes=False).split("arch")[0]

    def test_str_uses_format(self):
        spec = parse_one("x@1.2+f")
        assert str(spec) == spec.format()
