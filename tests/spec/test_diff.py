"""Spec diffing tests (the `spack diff` analogue)."""

import pytest

from repro.concretize import Concretizer
from repro.repos.mock import make_mock_repo
from repro.spec.diff import diff_specs


@pytest.fixture(scope="module")
def repo():
    return make_mock_repo()


class TestDiff:
    def test_identical(self, repo):
        a = Concretizer(repo).solve(["zlib"]).roots[0]
        b = Concretizer(repo).solve(["zlib"]).roots[0]
        diff = diff_specs(a, b)
        assert diff.identical
        assert diff.summary() == "specs are identical"

    def test_version_change(self, repo):
        a = Concretizer(repo).solve(["zlib@=1.2.11"]).roots[0]
        b = Concretizer(repo).solve(["zlib@=1.3"]).roots[0]
        diff = diff_specs(a, b)
        change = diff.changed[0]
        assert change.version == ("1.2.11", "1.3")
        assert "1.2.11 -> 1.3" in diff.summary()

    def test_variant_change(self, repo):
        a = Concretizer(repo).solve(["mpich pmi=pmix"]).roots[0]
        b = Concretizer(repo).solve(["mpich pmi=slurm"]).roots[0]
        diff = diff_specs(a, b)
        assert diff.changed[0].variants["pmi"] == ("pmix", "slurm")

    def test_added_and_removed_nodes(self, repo):
        a = Concretizer(repo).solve(["example~bzip"]).roots[0]
        b = Concretizer(repo).solve(["example+bzip"]).roots[0]
        diff = diff_specs(a, b)
        assert diff.added == ["bzip2"]
        assert not diff.removed
        reverse = diff_specs(b, a)
        assert reverse.removed == ["bzip2"]

    def test_provider_swap_shows_dependency_change(self, repo):
        a = Concretizer(repo).solve(["example ^mpich"]).roots[0]
        b = Concretizer(repo).solve(["example ^openmpi"]).roots[0]
        diff = diff_specs(a, b)
        assert "mpich" in diff.removed and "openmpi" in diff.added
        example_change = [c for c in diff.changed if c.name == "example"][0]
        assert example_change.dependencies is not None

    def test_splice_provenance_in_diff(self, repo):
        cached = Concretizer(repo).solve(["example@1.1.0 ^mpich@3.4.3"]).roots[0]
        c = Concretizer(repo, reusable_specs=[cached], splicing=True)
        spliced = c.solve(["example@1.1.0 ^mpiabi"]).roots[0]
        diff = diff_specs(cached, spliced)
        example_change = [c for c in diff.changed if c.name == "example"][0]
        assert example_change.splice == (None, cached.dag_hash(7))
        assert "build spec" in diff.summary()

    def test_arch_change(self, repo):
        a = Concretizer(repo).solve(["zlib"]).roots[0]
        b = Concretizer(
            repo, default_os="sles15", default_target="zen3"
        ).solve(["zlib"]).roots[0]
        diff = diff_specs(a, b)
        change = diff.changed[0]
        assert change.os == ("centos8", "sles15")
        assert change.target == ("skylake", "zen3")
