"""Tests for variants and variant maps."""

import pytest

from repro.spec.variant import Variant, VariantError, VariantMap


class TestVariant:
    def test_bool_true_renders_plus(self):
        assert str(Variant("mpi", True)) == "+mpi"

    def test_bool_false_renders_tilde(self):
        assert str(Variant("mpi", False)) == "~mpi"

    def test_valued_renders_kv(self):
        assert str(Variant("pmi", "pmix")) == "pmi=pmix"

    def test_bool_normalization(self):
        assert Variant("x", True).value == "True"
        assert Variant("x", "True").is_bool

    def test_invalid_name(self):
        with pytest.raises(VariantError):
            Variant("1bad", True)

    def test_equality_and_hash(self):
        assert Variant("a", True) == Variant("a", "True")
        assert hash(Variant("a", True)) == hash(Variant("a", "True"))
        assert Variant("a", True) != Variant("a", False)


class TestVariantMap:
    def test_set_get(self):
        vm = VariantMap()
        vm.set("mpi", True)
        assert vm["mpi"] == "True"
        assert "mpi" in vm
        assert vm.get("nope") is None

    def test_constructor_dict(self):
        vm = VariantMap({"a": True, "b": "x"})
        assert len(vm) == 2

    def test_satisfies_superset(self):
        big = VariantMap({"a": True, "b": "x"})
        small = VariantMap({"a": True})
        assert big.satisfies(small)
        assert not small.satisfies(big)

    def test_satisfies_empty(self):
        assert VariantMap().satisfies(VariantMap())
        assert VariantMap({"a": True}).satisfies(VariantMap())

    def test_intersects_disagreement(self):
        a = VariantMap({"x": True})
        b = VariantMap({"x": False})
        assert not a.intersects(b)

    def test_intersects_disjoint_keys(self):
        assert VariantMap({"a": True}).intersects(VariantMap({"b": False}))

    def test_constrain_merges(self):
        a = VariantMap({"a": True})
        changed = a.constrain(VariantMap({"b": "x"}))
        assert changed
        assert a["b"] == "x"

    def test_constrain_idempotent(self):
        a = VariantMap({"a": True})
        assert not a.constrain(VariantMap({"a": True}))

    def test_constrain_conflict_raises(self):
        a = VariantMap({"a": True})
        with pytest.raises(VariantError):
            a.constrain(VariantMap({"a": False}))

    def test_str_bools_first(self):
        vm = VariantMap({"zeta": "v", "alpha": True, "beta": False})
        assert str(vm) == "+alpha~beta zeta=v"

    def test_copy_is_deep(self):
        a = VariantMap({"a": True})
        b = a.copy()
        b.set("a", False)
        assert a["a"] == "True"

    def test_hash_order_independent(self):
        a = VariantMap({"a": True, "b": "x"})
        b = VariantMap({"b": "x", "a": True})
        assert hash(a) == hash(b) and a == b

    def test_iteration_sorted(self):
        vm = VariantMap({"c": True, "a": True, "b": True})
        assert list(vm) == ["a", "b", "c"]
