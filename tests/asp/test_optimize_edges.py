"""Optimizer edge cases: PB budget circuit, weights, degenerate inputs."""

import pytest

from repro.asp import Control
from repro.asp.grounder import Grounder
from repro.asp.optimize import Optimizer, _PBBudget
from repro.asp.parser import parse_program
from repro.asp.translate import Translator


def solve(text):
    ctl = Control()
    ctl.add(text)
    return ctl.solve()


class TestPBBudget:
    def _translator(self, n):
        text = " ".join(f"{{ x{i} }}." for i in range(n))
        return Translator(Grounder(parse_program(text)).ground())

    def test_trivial_bound_needs_no_assumption(self):
        t = self._translator(2)
        terms = [(1, t.atom_var[a]) for a in list(t.atom_var)[:2]]
        budget = _PBBudget(t, terms)
        assert budget.root(2) is None, "sum can never exceed 2"
        assert budget.root(99) is None

    def test_zero_bound_forces_all_false(self):
        t = self._translator(3)
        choice_vars = [
            var for atom, var in t.atom_var.items() if var != t._true_var
        ]
        budget = _PBBudget(t, [(1, v) for v in choice_vars])
        root = budget.root(0)
        assert t.solver.solve([root])
        model = t.solver.model()
        assert all(model[v] != 1 for v in choice_vars)

    def test_negative_weights_rejected(self):
        t = self._translator(1)
        var = next(iter(t.var_atom))
        with pytest.raises(ValueError):
            _PBBudget(t, [(-3, var)])

    def test_zero_weights_dropped(self):
        t = self._translator(2)
        choice_vars = [
            var for atom, var in t.atom_var.items() if var != t._true_var
        ]
        budget = _PBBudget(t, [(0, choice_vars[0]), (2, choice_vars[1])])
        assert len(budget.terms) == 1

    def test_weighted_bound_respected(self):
        t = self._translator(3)
        choice_vars = sorted(
            var for atom, var in t.atom_var.items() if var != t._true_var
        )
        weights = list(zip((5, 3, 2), choice_vars))
        budget = _PBBudget(t, weights)
        root = budget.root(5)
        assert t.solver.solve([root])
        model = t.solver.model()
        total = sum(w for w, v in weights if model[v] == 1)
        assert total <= 5

    def test_node_sharing_across_bounds(self):
        t = self._translator(6)
        choice_vars = [
            var for atom, var in t.atom_var.items() if var != t._true_var
        ]
        budget = _PBBudget(t, [(1, v) for v in choice_vars])
        budget.root(5)
        count_after_first = len(budget._nodes)
        budget.root(4)
        assert len(budget._nodes) < 2 * count_after_first, "nodes shared"


class TestOptimizerEdges:
    def test_unsat_program(self):
        result = solve("a. :- a. #minimize { 1 : a }.")
        assert not result.satisfiable

    def test_no_objectives_is_plain_solve(self):
        result = solve("{ a }. :- not a.")
        assert result.satisfiable and result.cost == {}

    def test_objective_over_unsatisfiable_atom(self):
        # the minimized atom can never hold → the objective grounds
        # away entirely (clingo behaves the same: no cost line)
        result = solve("a. #minimize { 7 : missing }.")
        assert result.satisfiable
        assert result.cost.get(0, 0) == 0

    def test_equal_priorities_merge(self):
        result = solve(
            """
            1 { p(1) ; p(2) } 1.
            #minimize { 3@5 : p(1) }.
            #minimize { 1@5 : p(2) }.
            """
        )
        assert result.cost[5] == 1

    def test_large_uniform_weights(self):
        # the concretizer's build objective shape: weight 100 per atom
        picks = " ; ".join(f"b({i})" for i in range(8))
        result = solve(
            f"3 {{ {picks} }} 8.\n#minimize {{ 100, X : b(X) }}."
        )
        assert result.cost[0] == 300

    def test_optimum_zero_short_circuits(self):
        result = solve("{ a }. #minimize { 10 : a }.")
        assert result.cost[0] == 0
        assert result.stats["models_seen"] <= 3
