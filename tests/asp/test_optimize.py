"""Optimization: #minimize with weights and lexicographic priorities."""

import itertools
import random

import pytest

from repro.asp.api import Control


def solve(text):
    ctl = Control()
    ctl.add(text)
    return ctl.solve()


class TestSingleLevel:
    def test_minimize_picks_cheapest(self):
        result = solve(
            """
            1 { pick(1) ; pick(2) ; pick(3) } 1.
            cost(1, 10). cost(2, 5). cost(3, 7).
            #minimize { C, X : pick(X), cost(X, C) }.
            """
        )
        assert result.satisfiable
        picks = result.model.by_predicate("pick")
        assert picks[0].args[0].value == 2
        assert result.cost[0] == 5

    def test_zero_cost_possible(self):
        result = solve("{ a }. #minimize { 5 : a }.")
        assert result.cost[0] == 0

    def test_forced_cost(self):
        result = solve("a. #minimize { 5 : a }.")
        assert result.cost[0] == 5

    def test_weights_sum_over_distinct_terms(self):
        result = solve(
            """
            a. b.
            #minimize { 3, x : a ; 4, y : b }.
            """
        )
        assert result.cost[0] == 7

    def test_identical_terms_counted_once(self):
        # clingo set semantics: same (weight, terms) tuple counts once
        result = solve("a. b. #minimize { 3, same : a ; 3, same : b }.")
        assert result.cost[0] == 3

    def test_minimize_with_constraint_interaction(self):
        result = solve(
            """
            1 { pick(1) ; pick(2) } 1.
            :- pick(2).
            cost(1, 10). cost(2, 1).
            #minimize { C, X : pick(X), cost(X, C) }.
            """
        )
        # the cheap option is forbidden; optimum is 10
        assert result.cost[0] == 10


class TestLexicographic:
    def test_higher_priority_dominates(self):
        result = solve(
            """
            1 { pick(1) ; pick(2) } 1.
            % pick(1): high=0 low=100 ; pick(2): high=1 low=0
            #minimize { 1@10 : pick(2) }.
            #minimize { 100@1 : pick(1) }.
            """
        )
        picks = result.model.by_predicate("pick")
        assert picks[0].args[0].value == 1, "priority 10 beats any weight at 1"
        assert result.cost[10] == 0
        assert result.cost[1] == 100

    def test_tie_at_high_broken_at_low(self):
        result = solve(
            """
            1 { pick(1) ; pick(2) } 1.
            common :- pick(1). common :- pick(2).
            #minimize { 1@10 : common }.
            #minimize { 1@1 : pick(1) }.
            """
        )
        assert result.model.by_predicate("pick")[0].args[0].value == 2

    def test_three_levels(self):
        result = solve(
            """
            1 { p(1) ; p(2) ; p(3) ; p(4) } 1.
            #minimize { 1@30 : p(4) }.
            #minimize { 1@20 : p(3) }.
            #minimize { 1@10 : p(2) }.
            """
        )
        assert result.model.by_predicate("p")[0].args[0].value == 1


class TestBruteForceComparison:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_weighted_selection(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        k = rng.randint(1, n)
        weights = {i: rng.randint(1, 20) for i in range(1, n + 1)}
        text = [
            f"{k} {{ {' ; '.join(f'pick({i})' for i in range(1, n + 1))} }} {k}."
        ]
        for i, w in weights.items():
            text.append(f"cost({i}, {w}).")
        text.append("#minimize { C, X : pick(X), cost(X, C) }.")
        result = solve("\n".join(text))
        assert result.satisfiable
        best = min(
            sum(weights[i] for i in combo)
            for combo in itertools.combinations(range(1, n + 1), k)
        )
        assert result.cost[0] == best

    @pytest.mark.parametrize("seed", range(5))
    def test_random_two_priority(self, seed):
        rng = random.Random(100 + seed)
        n = 4
        hi = {i: rng.randint(0, 3) for i in range(1, n + 1)}
        lo = {i: rng.randint(0, 9) for i in range(1, n + 1)}
        text = [f"1 {{ {' ; '.join(f'pick({i})' for i in range(1, n + 1))} }} 1."]
        for i in range(1, n + 1):
            if hi[i]:
                text.append(f"#minimize {{ {hi[i]}@2, choice : pick({i}) }}.")
            if lo[i]:
                text.append(f"#minimize {{ {lo[i]}@1, choice : pick({i}) }}.")
        result = solve("\n".join(text))
        best = min(range(1, n + 1), key=lambda i: (hi[i], lo[i]))
        assert result.cost.get(2, 0) == hi[best]
        assert result.cost.get(1, 0) == lo[best]


class TestControlApi:
    def test_on_model_called(self):
        seen = []
        ctl = Control()
        ctl.add("1 { p(1) ; p(2) } 1. #minimize { 1 : p(2) }.")
        ctl.solve(on_model=seen.append)
        assert seen, "intermediate models reported"

    def test_unsat_result(self):
        result = solve("a. :- a.")
        assert not result.satisfiable
        assert result.model is None

    def test_stats_present(self):
        result = solve("a.")
        assert "solve_time" in result.stats
        assert "ground_time" in result.stats

    def test_model_helpers(self):
        result = solve("p(1). p(2). q.")
        assert len(result.model.by_predicate("p")) == 2
        assert len(result.model) == 3

    def test_add_facts_programmatically(self):
        from repro.asp.syntax import Atom, String

        ctl = Control()
        ctl.add_fact(Atom("p", (String("x"),)))
        ctl.add("q :- p(X).")
        result = ctl.solve()
        assert result.model.by_predicate("q")
