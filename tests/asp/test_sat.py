"""CDCL SAT core: unit tests plus brute-force fuzzing."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.sat import FALSE, TRUE, UNASSIGNED, Solver, SolverError


def make_solver(n):
    s = Solver()
    for _ in range(n):
        s.new_var()
    return s


def brute_force_sat(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in c) for c in clauses):
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert make_solver(2).solve()

    def test_unit_clause(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.solve()
        assert s.value(1) == TRUE

    def test_contradiction(self):
        s = make_solver(1)
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve()

    def test_simple_implication_chain(self):
        s = make_solver(3)
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve()
        assert s.value(3) == TRUE

    def test_tautology_ignored(self):
        s = make_solver(1)
        s.add_clause([1, -1])
        assert s.solve()

    def test_duplicate_literals_collapsed(self):
        s = make_solver(2)
        s.add_clause([1, 1, 2])
        assert s.solve()

    def test_out_of_range_literal(self):
        s = make_solver(1)
        with pytest.raises(SolverError):
            s.add_clause([5])

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole
        s = make_solver(2)
        s.add_clause([1])
        s.add_clause([2])
        s.add_clause([-1, -2])
        assert not s.solve()

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        s = make_solver(3)
        for c in clauses:
            s.add_clause(c)
        assert s.solve()
        model = s.model()
        for c in clauses:
            assert any((lit > 0) == (model[abs(lit)] == TRUE) for lit in c)


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = make_solver(2)
        s.add_clause([1, 2])
        assert s.solve([-1])
        assert s.value(2) == TRUE

    def test_unsat_under_assumptions_recoverable(self):
        s = make_solver(2)
        s.add_clause([1, 2])
        s.add_clause([-1, -2])
        assert not s.solve([1, 2])
        assert s.solve()  # formula itself still satisfiable
        assert s.solve([1])
        assert s.value(2) == FALSE

    def test_conflicting_assumption_with_unit(self):
        s = make_solver(1)
        s.add_clause([1])
        assert not s.solve([-1])
        assert s.solve([1])


class TestIncremental:
    def test_add_clause_between_solves(self):
        s = make_solver(2)
        s.add_clause([1, 2])
        assert s.solve()
        s.add_clause([-1])
        s.add_clause([-2])
        assert not s.solve()

    def test_stats_populated(self):
        s = make_solver(3)
        s.add_clause([1, 2, 3])
        s.solve()
        stats = s.stats()
        assert stats["vars"] == 3
        assert stats["clauses"] >= 1


class TestFuzzVsBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randint(3, 9)
            m = rng.randint(2, 40)
            clauses = [
                [rng.choice([-1, 1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
                for _ in range(m)
            ]
            s = make_solver(n)
            ok = all(s.add_clause(c) for c in clauses)
            got = ok and s.solve()
            assert got == brute_force_sat(n, clauses)

    def test_random_with_assumptions(self):
        rng = random.Random(99)
        for _ in range(40):
            n = rng.randint(3, 7)
            m = rng.randint(2, 20)
            clauses = [
                [rng.choice([-1, 1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
                for _ in range(m)
            ]
            assumptions = [rng.choice([-1, 1]) * v for v in rng.sample(range(1, n + 1), 2)]
            s = make_solver(n)
            ok = all(s.add_clause(c) for c in clauses)
            expected = brute_force_sat(
                n, clauses + [[lit] for lit in assumptions]
            )
            got = ok and s.solve(assumptions)
            assert got == expected


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_hypothesis_cnf(data):
    n = data.draw(st.integers(2, 7))
    clauses = data.draw(
        st.lists(
            st.lists(
                st.integers(1, n).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=25,
        )
    )
    s = make_solver(n)
    ok = all(s.add_clause(c) for c in clauses)
    assert (ok and s.solve()) == brute_force_sat(n, clauses)
