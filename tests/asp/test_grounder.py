"""Grounder tests: instantiation, joins, comparisons, negation handling."""

import pytest

from repro.asp.grounder import Grounder, GroundingError, ground
from repro.asp.parser import parse_program


def ground_text(text):
    return ground(parse_program(text))


def rule_strs(gp):
    return sorted(repr(r) for r in gp.rules)


class TestBasicGrounding:
    def test_facts_pass_through(self):
        gp = ground_text("a. b(1).")
        assert len(gp.rules) == 2

    def test_single_variable(self):
        gp = ground_text("p(1). p(2). q(X) :- p(X).")
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "q"}
        assert heads == {"q(1)", "q(2)"}

    def test_join_two_literals(self):
        gp = ground_text("e(1,2). e(2,3). path(X,Z) :- e(X,Y), e(Y,Z).")
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "path"}
        assert heads == {"path(1,3)"}

    def test_recursion(self):
        gp = ground_text(
            "e(1,2). e(2,3). e(3,4). "
            "r(X,Y) :- e(X,Y). r(X,Z) :- r(X,Y), e(Y,Z)."
        )
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "r"}
        assert "r(1,4)" in heads

    def test_nested_function_matching(self):
        gp = ground_text(
            'pkg(version_declared("1.0")). chosen(V) :- pkg(version_declared(V)).'
        )
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "chosen"}
        assert heads == {'chosen("1.0")'}

    def test_unused_rule_grounds_to_nothing(self):
        gp = ground_text("a. q(X) :- missing(X).")
        assert all(r.head is None or r.head.predicate != "q" for r in gp.rules)


class TestComparisons:
    def test_filtering(self):
        gp = ground_text("n(1). n(2). n(3). big(X) :- n(X), X > 1.")
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "big"}
        assert heads == {"big(2)", "big(3)"}

    def test_inequality_join(self):
        gp = ground_text("n(1). n(2). pair(X,Y) :- n(X), n(Y), X != Y.")
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "pair"}
        assert heads == {"pair(1,2)", "pair(2,1)"}

    def test_string_ordering(self):
        gp = ground_text('s("a"). s("b"). lt(X,Y) :- s(X), s(Y), X < Y.')
        heads = {repr(r.head) for r in gp.rules if r.head and r.head.predicate == "lt"}
        assert heads == {'lt("a","b")'}

    def test_unsafe_comparison_raises(self):
        with pytest.raises(GroundingError):
            ground_text("p(X) :- X > 1.")


class TestNegation:
    def test_impossible_negative_dropped(self):
        # `not missing` is certainly true → removed from the ground body
        gp = ground_text("a. b :- a, not missing.")
        b_rules = [r for r in gp.rules if r.head and r.head.predicate == "b"]
        assert b_rules and not b_rules[0].neg

    def test_possible_negative_kept(self):
        gp = ground_text("{ a }. b :- not a.")
        b_rules = [r for r in gp.rules if r.head and r.head.predicate == "b"]
        assert b_rules and len(b_rules[0].neg) == 1

    def test_negation_with_variables(self):
        gp = ground_text("p(1). p(2). { q(1) }. r(X) :- p(X), not q(X).")
        r_rules = [r for r in gp.rules if r.head and r.head.predicate == "r"]
        by_head = {repr(r.head): r for r in r_rules}
        assert len(by_head["r(1)"].neg) == 1  # q(1) possible
        assert len(by_head["r(2)"].neg) == 0  # q(2) impossible


class TestChoices:
    def test_elements_instantiated_from_conditions(self):
        gp = ground_text("opt(1). opt(2). { pick(X) : opt(X) } 1.")
        choice = gp.choices[0]
        atoms = {repr(e.atom) for e in choice.elements}
        assert atoms == {"pick(1)", "pick(2)"}
        assert choice.upper == 1

    def test_choice_body_instantiation(self):
        gp = ground_text("n(1). n(2). v(10). { pick(X, V) : v(V) } 1 :- n(X).")
        assert len(gp.choices) == 2

    def test_choice_head_atoms_are_possible(self):
        gp = ground_text("{ a }. b :- a.")
        b_rules = [r for r in gp.rules if r.head and r.head.predicate == "b"]
        assert len(b_rules) == 1

    def test_empty_choice_with_lower_bound_kept(self):
        gp = ground_text("trigger. 1 { pick(X) : opt(X) } 1 :- trigger.")
        assert len(gp.choices) == 1
        assert not gp.choices[0].elements


class TestMinimizeGrounding:
    def test_elements_per_binding(self):
        gp = ground_text("p(1). p(2). #minimize { 1, X : p(X) }.")
        assert len(gp.minimizes) == 2

    def test_variable_weight_bound(self):
        gp = ground_text('vw("a", 3). #minimize { W, P : vw(P, W) }.')
        assert gp.minimizes[0].weight == 3

    def test_non_integer_weight_rejected(self):
        with pytest.raises(GroundingError):
            ground_text('vw("a", "heavy"). #minimize { W, P : vw(P, W) }.')


class TestSafety:
    def test_unsafe_head_variable(self):
        with pytest.raises(GroundingError):
            ground_text("a. p(X) :- a.")

    def test_unsafe_negative_variable(self):
        with pytest.raises(GroundingError):
            ground_text("a. p :- a, not q(X).")
