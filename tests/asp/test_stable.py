"""Stable-model semantics: completion, loops, choices — vs brute force."""

import itertools
import random

import pytest

from repro.asp.grounder import Grounder
from repro.asp.parser import parse_program
from repro.asp.stable import StableModelFinder
from repro.asp.translate import Translator


def solve_text(text):
    program = parse_program(text)
    translator = Translator(Grounder(program).ground())
    finder = StableModelFinder(translator)
    model = finder.solve()
    if model is None:
        return None, finder
    return {repr(a) for a in model}, finder


class TestDefiniteness:
    def test_facts_only(self):
        model, _ = solve_text("a. b.")
        assert model == {"a", "b"}

    def test_chaining(self):
        model, _ = solve_text("a. b :- a. c :- b.")
        assert model == {"a", "b", "c"}

    def test_underivable_atom_false(self):
        model, _ = solve_text("a. b :- c.")
        assert model == {"a"}


class TestNegation:
    def test_naf_basic(self):
        model, _ = solve_text("a :- not b.")
        assert model == {"a"}

    def test_even_negation_two_models(self):
        # a :- not b. b :- not a. has two stable models {a}, {b}
        model, _ = solve_text("a :- not b. b :- not a.")
        assert model in ({"a"}, {"b"})

    def test_odd_negation_loop_unsat(self):
        # a :- not a. has no stable model
        model, _ = solve_text("a :- not a.")
        assert model is None

    def test_constraint_filters(self):
        model, _ = solve_text("a :- not b. b :- not a. :- a.")
        assert model == {"b"}


class TestPositiveLoops:
    def test_mutual_support_unfounded(self):
        # a and b only support each other → both false
        model, _ = solve_text("a :- b. b :- a.")
        assert model == set()

    def test_loop_with_constraint_unsat(self):
        model, _ = solve_text("a :- b. b :- a. :- not a.")
        assert model is None

    def test_loop_with_external_support(self):
        model, finder = solve_text("a :- b. b :- a. { s }. a :- s. :- not b.")
        assert model == {"a", "b", "s"}

    def test_long_cycle(self):
        model, _ = solve_text("a :- b. b :- c. c :- a. :- not c.")
        assert model is None

    def test_two_disjoint_loops(self):
        model, _ = solve_text(
            "a :- b. b :- a. c :- d. d :- c. { s }. c :- s. :- not d."
        )
        assert model == {"c", "d", "s"}


class TestChoices:
    def test_free_choice(self):
        model, _ = solve_text("{ a }.")
        assert model in (set(), {"a"})

    def test_choice_forced_by_constraint(self):
        model, _ = solve_text("{ a }. :- not a.")
        assert model == {"a"}

    def test_exactly_one(self):
        model, _ = solve_text("opt(1). opt(2). 1 { pick(X) : opt(X) } 1.")
        picks = {a for a in model if a.startswith("pick")}
        assert len(picks) == 1

    def test_at_most_one(self):
        model, _ = solve_text("opt(1). opt(2). { pick(X) : opt(X) } 1.")
        picks = {a for a in model if a.startswith("pick")}
        assert len(picks) <= 1

    def test_lower_bound_two(self):
        model, _ = solve_text("opt(1). opt(2). opt(3). 2 { pick(X) : opt(X) }.")
        picks = {a for a in model if a.startswith("pick")}
        assert len(picks) >= 2

    def test_unmeetable_lower_bound_blocks_body(self):
        # body must be false if the bound cannot be met → UNSAT with fact body
        model, _ = solve_text("t. 1 { pick(X) : opt(X) } 1 :- t.")
        assert model is None

    def test_choice_body_gate(self):
        model, _ = solve_text("{ a } :- missing.")
        assert model == set()

    def test_choice_atom_needs_support(self):
        # `pick` can only be true when the choice body holds
        model, _ = solve_text("{ a } :- missing. :- not a.")
        assert model is None

    def test_conditional_element_gated(self):
        # q(2) impossible → pick(2) not available
        model, _ = solve_text("q(1). 1 { pick(X) : q(X) } 1. :- pick(2).")
        assert model == {"q(1)", "pick(1)"}


def brute_force_stable(atom_names, rules, choice_atoms, constraints):
    """Reference implementation of stable models for propositional
    normal programs + free choice atoms."""
    models = []
    for bits in itertools.product([0, 1], repeat=len(atom_names)):
        m = {a for a, b in zip(atom_names, bits) if b}
        violated = False
        for head, pos, neg in rules:
            if set(pos) <= m and not (set(neg) & m) and head not in m:
                violated = True
                break
        for pos, neg in constraints:
            if set(pos) <= m and not (set(neg) & m):
                violated = True
                break
        if violated:
            continue
        derived = set()
        changed = True
        while changed:
            changed = False
            for head, pos, neg in rules:
                if (
                    head in m
                    and head not in derived
                    and set(pos) <= derived
                    and not (set(neg) & m)
                ):
                    derived.add(head)
                    changed = True
            for c in choice_atoms:
                if c in m and c not in derived:
                    derived.add(c)
                    changed = True
        if derived == m:
            models.append(frozenset(m))
    return set(models)


class TestFuzzVsBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs(self, seed):
        rng = random.Random(seed)
        names = ["a", "b", "c", "d", "e"]
        for _ in range(25):
            rules = []
            lines = ["{ a }.", "{ b }."]
            for _ in range(rng.randint(1, 7)):
                head = rng.choice(names[2:])
                pos = rng.sample(names, rng.randint(0, 2))
                neg = rng.sample(names, rng.randint(0, 1))
                body = pos + [f"not {x}" for x in neg]
                lines.append(
                    f"{head} :- {', '.join(body)}." if body else f"{head}."
                )
                rules.append((head, pos, neg))
            constraints = []
            if rng.random() < 0.6:
                neg = [rng.choice(names)]
                lines.append(f":- not {neg[0]}.")
                constraints.append(([], neg))
            expected = brute_force_stable(names, rules, {"a", "b"}, constraints)
            model, _ = solve_text("\n".join(lines))
            if model is None:
                assert not expected, f"engine UNSAT but brute force found {expected}"
            else:
                assert frozenset(model) in expected, (
                    f"model {model} not stable; expected one of {expected}"
                )
