"""Translator-level tests: cardinality encodings, completion, facts."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.grounder import Grounder
from repro.asp.parser import parse_program
from repro.asp.stable import StableModelFinder
from repro.asp.translate import Translator


def all_models(text, project=None):
    """Enumerate ALL stable models via blocking clauses."""
    translator = Translator(Grounder(parse_program(text)).ground())
    finder = StableModelFinder(translator)
    models = []
    while True:
        model = finder.solve()
        if model is None:
            break
        names = frozenset(
            repr(a) for a in model if project is None or a.predicate.startswith(project)
        )
        models.append(names)
        block = []
        for atom, var in translator.atom_var.items():
            if var == translator._true_var:
                continue
            value = translator.solver.model()[var]
            block.append(-var if value == 1 else var)
        if not block or not translator.solver.add_clause(block):
            break
    return set(models)


class TestCardinalityBounds:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (13, 1), (6, 5)])
    def test_at_most_k_exact_model_count(self, n, k):
        atoms = " ; ".join(f"p({i})" for i in range(n))
        models = all_models(f"{{ {atoms} }} {k}.", project="p")
        expected = sum(
            1
            for r in range(k + 1)
            for _ in itertools.combinations(range(n), r)
        )
        assert len(models) == expected

    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (5, 5)])
    def test_at_least_k_exact_model_count(self, n, k):
        atoms = " ; ".join(f"p({i})" for i in range(n))
        models = all_models(f"{k} {{ {atoms} }}.", project="p")
        expected = sum(
            1
            for r in range(k, n + 1)
            for _ in itertools.combinations(range(n), r)
        )
        assert len(models) == expected

    @pytest.mark.parametrize("n,lo,hi", [(4, 1, 2), (5, 2, 3), (6, 3, 3)])
    def test_interval_bounds(self, n, lo, hi):
        atoms = " ; ".join(f"p({i})" for i in range(n))
        models = all_models(f"{lo} {{ {atoms} }} {hi}.", project="p")
        expected = sum(
            1
            for r in range(lo, hi + 1)
            for _ in itertools.combinations(range(n), r)
        )
        assert len(models) == expected

    def test_gated_bound_only_when_body_holds(self):
        # without t, no bound applies (and the choice cannot fire)
        models = all_models("{ t }. 2 { p(1) ; p(2) ; p(3) } 2 :- t.")
        with_t = [m for m in models if "t" in m]
        without_t = [m for m in models if "t" not in m]
        for m in with_t:
            assert sum(1 for a in m if a.startswith("p(")) == 2
        for m in without_t:
            assert not any(a.startswith("p(") for a in m)


class TestFactsAsConstants:
    def test_facts_share_true_var(self):
        translator = Translator(Grounder(parse_program("a. b. c :- a.")).ground())
        from repro.asp.syntax import Atom

        assert translator.atom_var[Atom("a")] == translator.atom_var[Atom("b")]

    def test_fact_count_does_not_grow_vars(self):
        small = Translator(Grounder(parse_program("f(1). { x }.")).ground())
        big_text = " ".join(f"f({i})." for i in range(100)) + " { x }."
        big = Translator(Grounder(parse_program(big_text)).ground())
        assert big.solver.num_vars <= small.solver.num_vars + 1

    def test_derived_certain_atoms_are_facts(self):
        # g derived deterministically from facts → projected to a fact
        translator = Translator(
            Grounder(parse_program("f(1). f(2). g(X) :- f(X).")).ground()
        )
        from repro.asp.syntax import Atom, Integer

        assert Atom("g", (Integer(1),)) in translator.facts

    def test_choice_dependent_atoms_are_not_facts(self):
        translator = Translator(
            Grounder(parse_program("{ c }. g :- c.")).ground()
        )
        from repro.asp.syntax import Atom

        assert Atom("g") not in translator.facts


class TestCompletion:
    def test_unsupported_atom_forced_false(self):
        models = all_models("{ a }. b :- a, missing.")
        assert all("b" not in m for m in models)

    def test_multiple_supports_disjoin(self):
        models = all_models("{ a }. { b }. c :- a. c :- b.")
        for m in models:
            assert ("c" in m) == ("a" in m or "b" in m)


# hypothesis: random bounded choices count correctly
@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.data())
def test_hypothesis_choice_bounds(n, data):
    lo = data.draw(st.integers(0, n))
    hi = data.draw(st.integers(lo, n))
    atoms = " ; ".join(f"p({i})" for i in range(n))
    prefix = f"{lo} " if lo else ""
    models = all_models(f"{prefix}{{ {atoms} }} {hi}.", project="p")
    expected = sum(
        1 for r in range(lo, hi + 1) for _ in itertools.combinations(range(n), r)
    )
    assert len(models) == expected
