"""Arithmetic terms, intervals, and assignment binding in the engine."""

import pytest
from hypothesis import given, strategies as st

from repro.asp import Control
from repro.asp.parser import AspSyntaxError, parse_program, parse_term
from repro.asp.syntax import Arith, Integer, Interval, Variable


def model_of(text):
    ctl = Control()
    ctl.add(text)
    result = ctl.solve()
    assert result.satisfiable
    return {repr(a) for a in result.model}


class TestParsing:
    def test_constant_folding(self):
        assert parse_term("2 + 3 * 4") == Integer(14)

    def test_precedence(self):
        assert parse_term("(2 + 3) * 4") == Integer(20)

    def test_integer_division_truncates(self):
        assert parse_term("7 / 2") == Integer(3)

    def test_unary_minus(self):
        assert parse_term("-3") == Integer(-3)
        assert parse_term("- 3") == Integer(-3)
        assert parse_term("2 - -3") == Integer(5)

    def test_variable_expression_stays_symbolic(self):
        term = parse_term("X + 1")
        assert isinstance(term, Arith)
        assert set(term.variables()) == {"X"}

    def test_interval_term(self):
        term = parse_term("1..5")
        assert isinstance(term, Interval)
        assert [t.value for t in term.expand()] == [1, 2, 3, 4, 5]

    def test_substitute_reduces(self):
        term = parse_term("X * 2 + 1")
        assert term.substitute({"X": Integer(5)}) == Integer(11)


class TestIntervalFacts:
    def test_fact_expansion(self):
        program = parse_program("p(1..3).")
        assert len(program.rules) == 3

    def test_multi_interval_cartesian(self):
        program = parse_program("edge(1..2, 5..6).")
        assert len(program.rules) == 4

    def test_interval_with_other_args(self):
        model = model_of('q("x", 1..2).')
        assert model == {'q("x",1)', 'q("x",2)'}

    def test_empty_interval(self):
        program = parse_program("p(3..2).")
        assert len(program.rules) == 0


class TestGroundingArithmetic:
    def test_head_arithmetic(self):
        model = model_of("n(1..3). succ(X, X + 1) :- n(X).")
        assert "succ(3,4)" in model

    def test_comparison_arithmetic(self):
        model = model_of("n(1..5). mid(X) :- n(X), X * 2 > 4, X < 5.")
        mids = {m for m in model if m.startswith("mid")}
        assert mids == {"mid(3)", "mid(4)"}

    def test_assignment_binding(self):
        model = model_of("n(2). n(3). double(Y) :- n(X), Y = X + X.")
        assert {m for m in model if m.startswith("double")} == {
            "double(4)",
            "double(6)",
        }

    def test_reversed_assignment(self):
        model = model_of("n(2). r(Y) :- n(X), X * 10 = Y.")
        assert "r(20)" in model

    def test_chained_assignments(self):
        model = model_of("n(1). c(Z) :- n(X), Y = X + 1, Z = Y * 3.")
        assert "c(6)" in model

    def test_division_by_zero_raises(self):
        from repro.asp.grounder import Grounder

        program = parse_program("n(0). bad(Y) :- n(X), Y = 1 / X.")
        with pytest.raises(ZeroDivisionError):
            Grounder(program).ground()

    def test_recursion_with_arithmetic(self):
        model = model_of(
            "count(0). count(X + 1) :- count(X), X < 4."
        )
        counts = {m for m in model if m.startswith("count")}
        assert counts == {f"count({i})" for i in range(5)}

    def test_weights_with_arithmetic(self):
        ctl = Control()
        ctl.add(
            """
            1 { pick(1) ; pick(2) } 1.
            #minimize { X * 10, X : pick(X) }.
            """
        )
        result = ctl.solve()
        assert result.cost[0] == 10


@given(st.integers(-20, 20), st.integers(-20, 20), st.integers(1, 10))
def test_hypothesis_arith_matches_python(a, b, c):
    term = parse_term(f"X + {b} * {c}").substitute({"X": Integer(a)})
    assert term == Integer(a + b * c)


@given(st.integers(0, 12), st.integers(0, 12))
def test_hypothesis_interval_size(lo, hi):
    term = Interval(Integer(lo), Integer(hi))
    assert len(term.expand()) == max(0, hi - lo + 1)
