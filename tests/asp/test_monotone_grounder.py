"""Monotone grounder: delta grounding must preserve stable models.

The incremental concretizer keeps ONE base :class:`Grounder` alive and
feeds it per-request volatile facts via ``ground_with``.  Its
possible-atom index only ever grows, so a ground program assembled
after several requests *over-approximates* any single request's
program: it may contain stale instances whose bodies mention atoms
from earlier requests.  Soundness rests on the translator's Clark
completion forcing every unsupported atom false — stale instances are
inert, never wrong.

These tests pin that equivalence: for each scenario the stable models
of ``ground_with(facts)`` (after arbitrary earlier requests polluted
the index) must equal the stable models of grounding the program +
facts from scratch the classic way.
"""

import pytest

from repro.asp.grounder import Grounder, GroundingError, ground
from repro.asp.parser import parse_program
from repro.asp.stable import StableModelFinder
from repro.asp.parser import parse_term
from repro.asp.syntax import Atom, Rule
from repro.asp.translate import Translator


def all_stable_models(gp, limit=32):
    """Every stable model as a frozenset of atom reprs (blocking-clause
    enumeration; aux vars are functionally determined by atom vars)."""
    translator = Translator(gp)
    finder = StableModelFinder(translator)
    models = set()
    while len(models) < limit:
        model = finder.solve()
        if model is None:
            break
        models.add(frozenset(repr(a) for a in model))
        clause = [
            -var if atom in model else var
            for atom, var in translator.atom_var.items()
        ]
        if not clause:
            break
        translator.solver.add_clause(clause)
    return models


def classic_models(text):
    return all_stable_models(ground(parse_program(text)))


BASE = """
dep(X, Y) :- pkg(X), pkg(Y), wants(X, Y).
node(X) :- root(X).
node(Y) :- node(X), dep(X, Y).
:- node(X), forbidden(X).
{ variant(X) : node(X) }.
happy(X) :- node(X), variant(X).
lonely(X) :- node(X), not variant(X).
"""

PKGS = """
pkg(a). pkg(b). pkg(c).
wants(a, b). wants(b, c).
"""


class TestDeltaEquivalence:
    def test_volatile_facts_match_classic(self):
        grounder = Grounder(parse_program(BASE + PKGS), monotone=True)
        gp = grounder.ground_with([Atom("root", (parse_term("a"),))])
        assert all_stable_models(gp) == classic_models(
            BASE + PKGS + "root(a)."
        )

    def test_stale_facts_forced_false(self):
        # request 1 pollutes the index with root(a)'s closure; request 2
        # asks only for root(c).  root(a) stays *possible* but is no
        # longer emitted as a fact, so completion forces it false: the
        # second solve sees exactly the second request
        grounder = Grounder(parse_program(BASE + PKGS), monotone=True)
        grounder.ground_with([Atom("root", (parse_term("a"),))])
        gp = grounder.ground_with([Atom("root", (parse_term("c"),))])
        assert all_stable_models(gp) == classic_models(
            BASE + PKGS + "root(c)."
        )

    def test_only_current_facts_emitted(self):
        # each ground_with emits its own volatile facts, never an
        # earlier request's — that is the per-request isolation the
        # incremental concretizer relies on
        grounder = Grounder(parse_program(BASE + PKGS), monotone=True)
        gp1 = grounder.ground_with([Atom("root", (parse_term("a"),))])
        n1 = sum(
            1 for r in gp1.rules if r.head and r.head.predicate == "root"
        )
        gp2 = grounder.ground_with([Atom("root", (parse_term("c"),))])
        n2 = sum(
            1 for r in gp2.rules if r.head and r.head.predicate == "root"
        )
        assert (n1, n2) == (1, 1)

    def test_new_facts_enable_new_instances(self):
        # a later request's facts must trigger genuinely new joins, not
        # just re-emission of the old ground rules
        grounder = Grounder(parse_program(BASE + PKGS), monotone=True)
        grounder.ground_with([Atom("root", (parse_term("c"),))])
        gp = grounder.ground_with(
            [Atom("pkg", (parse_term("d"),)),
             Atom("wants", (parse_term("c"), parse_term("d"))),
             Atom("root", (parse_term("a"),)),
             Atom("root", (parse_term("c"),))]
        )
        assert all_stable_models(gp) == classic_models(
            BASE + PKGS + "root(a). root(c). pkg(d). wants(c, d)."
        )

    def test_negation_against_volatile_atoms(self):
        # `lonely(X) :- node(X), not variant(X)` — the negated atom is
        # possible only via the volatile closure; monotone mode must
        # keep the negative literal (certainty is disabled for rules
        # with negation, so no body is wrongly simplified)
        grounder = Grounder(parse_program(BASE + PKGS), monotone=True)
        gp = grounder.ground_with([Atom("root", (parse_term("b"),))])
        assert all_stable_models(gp) == classic_models(
            BASE + PKGS + "root(b)."
        )

    def test_constraints_still_prune(self):
        grounder = Grounder(parse_program(BASE + PKGS), monotone=True)
        gp = grounder.ground_with(
            [Atom("root", (parse_term("a"),)),
             Atom("forbidden", (parse_term("c"),))]
        )
        assert all_stable_models(gp) == set()  # a -> b -> c is forced

    def test_choices_over_volatile_facts(self):
        text = "opt(base). { pick(X) : opt(X) } 1. some :- pick(X), opt(X)."
        grounder = Grounder(parse_program(text), monotone=True)
        gp = grounder.ground_with([Atom("opt", (parse_term("extra"),))])
        assert all_stable_models(gp) == classic_models(text + " opt(extra).")


class TestModeGuards:
    def test_ground_with_requires_monotone(self):
        grounder = Grounder(parse_program("a."))
        with pytest.raises(GroundingError):
            grounder.ground_with([Atom("b", ())])

    def test_volatile_rules_must_be_headless(self):
        from repro.asp.syntax import Literal

        grounder = Grounder(parse_program("a."), monotone=True)
        bad = Rule(Atom("b", ()), (Literal(Atom("a", ())),))
        with pytest.raises(GroundingError):
            grounder.ground_with([], [bad])

    def test_headless_volatile_rules_apply(self):
        from repro.asp.syntax import Literal

        grounder = Grounder(parse_program("{ a }."), monotone=True)
        forbid = Rule(None, (Literal(Atom("a", ())),))
        gp = grounder.ground_with([], [forbid])
        models = all_stable_models(gp)
        assert models == {frozenset()}

    def test_add_facts_rejects_non_ground(self):
        from repro.asp.syntax import Variable

        grounder = Grounder(parse_program("a."), monotone=True)
        with pytest.raises(GroundingError):
            grounder.add_facts([Atom("p", (Variable("X"),))])

    def test_classic_ground_unchanged(self):
        # monotone=False is byte-for-byte the historical grounder
        text = BASE + PKGS + "root(a)."
        a = ground(parse_program(text))
        b = Grounder(parse_program(text)).ground()
        assert sorted(map(repr, a.rules)) == sorted(map(repr, b.rules))
