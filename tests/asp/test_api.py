"""Control façade tests: file loading, incremental input, stats."""

import pytest

from repro.asp import Control, Model
from repro.asp.syntax import Atom, Rule, Literal, String


class TestInput:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "prog.lp"
        path.write_text("a. b :- a.")
        ctl = Control()
        ctl.load(path)
        result = ctl.solve()
        assert len(result.model) == 2

    def test_mixed_text_and_programmatic(self):
        ctl = Control()
        ctl.add_fact(Atom("p", (String("x"),)))
        ctl.add("q(Y) :- p(Y).")
        ctl.add_rule(Rule(Atom("r"), [Literal(Atom("q", (String("x"),)))]))
        result = ctl.solve()
        assert result.model.holds(Atom("r"))

    def test_non_ground_fact_rejected(self):
        from repro.asp.syntax import Variable

        ctl = Control()
        with pytest.raises(ValueError):
            ctl.add_fact(Atom("p", (Variable("X"),)))

    def test_ground_explicit_then_solve(self):
        ctl = Control()
        ctl.add("a.")
        ctl.ground()
        assert ctl.ground_stats["rules"] >= 1
        assert ctl.solve().satisfiable


class TestModelHelpers:
    def test_by_predicate_caching(self):
        model = Model({Atom("p", (String("a"),)), Atom("q")})
        assert len(model.by_predicate("p")) == 1
        assert model.by_predicate("missing") == []

    def test_holds(self):
        model = Model({Atom("q")})
        assert model.holds(Atom("q"))
        assert not model.holds(Atom("p"))

    def test_iteration(self):
        atoms = {Atom("a"), Atom("b")}
        assert set(Model(atoms)) == atoms


class TestStats:
    def test_timing_keys(self):
        ctl = Control()
        ctl.add("{ a }. :- not a.")
        result = ctl.solve()
        for key in ("ground_time", "translate_time", "solve_time",
                    "models_seen", "loop_formulas", "sat_vars"):
            assert key in result.stats

    def test_optimization_converges_logarithmically(self):
        # 64 choices with weight gradient 0..63: binary descent visits
        # O(log) improving models, not one per weight step
        picks = " ; ".join(f"p({i})" for i in range(64))
        ctl = Control()
        ctl.add(f"1 {{ {picks} }} 1.")
        ctl.add("#minimize { X, X : p(X) }.")
        result = ctl.solve()
        assert result.cost[0] == 0
        assert result.stats["models_seen"] <= 10
