"""AST-level tests: term ordering, substitution, comparisons."""

import pytest
from hypothesis import given, strategies as st

from repro.asp.syntax import (
    Atom,
    Comparison,
    Function,
    Integer,
    Literal,
    Rule,
    String,
    Symbol,
    Variable,
    term_sort_key,
)


class TestTermBasics:
    def test_ground_flags(self):
        assert Integer(1).is_ground
        assert String("x").is_ground
        assert not Variable("X").is_ground
        assert Function("f", [Integer(1)]).is_ground
        assert not Function("f", [Variable("X")]).is_ground

    def test_equality_across_kinds(self):
        assert Integer(1) != String("1")
        assert Symbol("a") != String("a")

    def test_hash_consistency(self):
        assert hash(Function("f", [Integer(1)])) == hash(
            Function("f", [Integer(1)])
        )

    def test_substitute_binds_nested(self):
        term = Function("node", [Variable("P")])
        out = term.substitute({"P": String("zlib")})
        assert out == Function("node", [String("zlib")])

    def test_substitute_ground_is_identity(self):
        term = Function("f", [Integer(1)])
        assert term.substitute({"X": Integer(2)}) is term

    def test_variables_enumeration(self):
        atom = Atom("p", (Variable("X"), Function("f", [Variable("Y")])))
        assert set(atom.variables()) == {"X", "Y"}


class TestTermOrdering:
    def test_integers_before_strings(self):
        assert term_sort_key(Integer(99)) < term_sort_key(String("a"))

    def test_strings_lexicographic(self):
        assert term_sort_key(String("1.2")) < term_sort_key(String("1.3"))

    def test_functions_after_atoms(self):
        assert term_sort_key(String("z")) < term_sort_key(
            Function("f", [Integer(0)])
        )

    def test_non_ground_rejected(self):
        with pytest.raises(TypeError):
            term_sort_key(Variable("X"))


class TestComparison:
    @pytest.mark.parametrize(
        "op,l,r,expected",
        [
            ("=", Integer(1), Integer(1), True),
            ("!=", Integer(1), Integer(2), True),
            ("<", Integer(1), Integer(2), True),
            ("<=", Integer(2), Integer(2), True),
            (">", String("b"), String("a"), True),
            (">=", String("a"), String("b"), False),
            ("<", Integer(5), String("a"), True),  # ints sort below strings
        ],
    )
    def test_evaluation(self, op, l, r, expected):
        assert Comparison(op, l, r).evaluate() is expected

    def test_non_ground_evaluation_rejected(self):
        with pytest.raises(ValueError):
            Comparison("=", Variable("X"), Integer(1)).evaluate()

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("==", Integer(1), Integer(1))


class TestRuleClassification:
    def test_fact(self):
        assert Rule(Atom("a")).is_fact

    def test_non_ground_head_not_fact(self):
        assert not Rule(Atom("p", (Variable("X"),))).is_fact

    def test_constraint(self):
        assert Rule(None, [Literal(Atom("a"))]).is_constraint

    def test_rule_with_body_not_fact(self):
        assert not Rule(Atom("a"), [Literal(Atom("b"))]).is_fact


@given(st.integers(-50, 50), st.integers(-50, 50))
def test_integer_order_matches_python(a, b):
    assert (term_sort_key(Integer(a)) < term_sort_key(Integer(b))) == (a < b)


@given(st.text("ab", max_size=4), st.text("ab", max_size=4))
def test_string_order_matches_python(a, b):
    assert (term_sort_key(String(a)) < term_sort_key(String(b))) == (a < b)
