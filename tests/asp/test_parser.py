"""ASP text-dialect parser tests."""

import pytest

from repro.asp.parser import AspSyntaxError, parse_program, parse_term
from repro.asp.syntax import (
    Atom,
    ChoiceHead,
    Comparison,
    Function,
    Integer,
    Literal,
    String,
    Symbol,
    Variable,
)


class TestTerms:
    def test_integer(self):
        assert parse_term("42") == Integer(42)

    def test_negative_integer(self):
        assert parse_term("-3") == Integer(-3)

    def test_string(self):
        assert parse_term('"hello world"') == String("hello world")

    def test_string_escapes(self):
        assert parse_term(r'"say \"hi\""') == String('say "hi"')

    def test_symbol(self):
        assert parse_term("mpich") == Symbol("mpich")

    def test_variable(self):
        assert parse_term("Package") == Variable("Package")

    def test_function(self):
        term = parse_term('node("example")')
        assert isinstance(term, Function)
        assert term.name == "node"
        assert term.args == (String("example"),)

    def test_nested_function(self):
        term = parse_term('pkg_fact("x", version_declared("1.0", 3))')
        inner = term.args[1]
        assert isinstance(inner, Function)
        assert inner.args == (String("1.0"), Integer(3))

    def test_anonymous_variables_distinct(self):
        program = parse_program("p(X) :- q(X, _), r(_, X).")
        body_vars = set()
        for element in program.rules[0].body:
            body_vars.update(element.variables())
        anons = [v for v in body_vars if v.startswith("_Anon")]
        assert len(anons) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(AspSyntaxError):
            parse_term("a b")


class TestRules:
    def test_fact(self):
        program = parse_program('node("example").')
        assert program.rules[0].is_fact

    def test_rule_with_body(self):
        program = parse_program("a :- b, not c.")
        rule = program.rules[0]
        assert rule.head == Atom("a")
        pos = [e for e in rule.body if isinstance(e, Literal) and e.positive]
        neg = [e for e in rule.body if isinstance(e, Literal) and not e.positive]
        assert len(pos) == 1 and len(neg) == 1

    def test_constraint(self):
        program = parse_program(":- a, b.")
        assert program.rules[0].is_constraint

    def test_comparison_ops(self):
        program = parse_program("a :- p(X, Y), X != Y, X < 3, Y >= 2.")
        comparisons = [e for e in program.rules[0].body if isinstance(e, Comparison)]
        assert {c.op for c in comparisons} == {"!=", "<", ">="}

    def test_choice_bounds(self):
        program = parse_program("1 { p(X) : q(X) } 1 :- r.")
        head = program.rules[0].head
        assert isinstance(head, ChoiceHead)
        assert head.lower == 1 and head.upper == 1

    def test_choice_upper_only(self):
        program = parse_program("{ p(X) : q(X) } 1 :- r.")
        head = program.rules[0].head
        assert head.lower is None and head.upper == 1

    def test_choice_no_bounds_no_body(self):
        program = parse_program("{ s }.")
        head = program.rules[0].head
        assert isinstance(head, ChoiceHead) and not program.rules[0].body

    def test_choice_multiple_elements(self):
        program = parse_program("{ a ; b ; c : d } 2.")
        assert len(program.rules[0].head.elements) == 3
        assert program.rules[0].head.elements[2].condition

    def test_choice_condition_conjunction(self):
        program = parse_program("{ p(X) : q(X), not r(X) }.")
        element = program.rules[0].head.elements[0]
        assert len(element.condition) == 2

    def test_comments_ignored(self):
        program = parse_program("% comment line\na. % trailing\n% another\nb.")
        assert len(program.rules) == 2

    def test_multiline_rule(self):
        program = parse_program("a :-\n    b,\n    c.")
        assert len(program.rules[0].body) == 2


class TestMinimize:
    def test_basic(self):
        program = parse_program("#minimize { 100, P : build(P) }.")
        element = program.minimizes[0]
        assert element.weight == Integer(100)
        assert element.priority == 0
        assert element.terms == (Variable("P"),)

    def test_priority(self):
        program = parse_program("#minimize { 1@50, P, V : attr(P, V) }.")
        element = program.minimizes[0]
        assert element.priority == 50
        assert len(element.terms) == 2

    def test_multiple_elements(self):
        program = parse_program("#minimize { 1@2, X : a(X) ; 3@1, Y : b(Y) }.")
        assert len(program.minimizes) == 2

    def test_maximize_negates(self):
        program = parse_program("#maximize { 5, X : a(X) }.")
        assert program.minimizes[0].weight == Integer(-5)

    def test_variable_weight(self):
        program = parse_program("#minimize { W, P : vw(P, W) }.")
        assert program.minimizes[0].weight == Variable("W")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "a",            # missing period
            "a :- .",       # empty body
            "a :- b",       # missing period
            "{ a ",          # unclosed brace
            ":- not.",      # not without atom
            "p($).",        # bad character
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(AspSyntaxError):
            parse_program(bad)

    def test_line_numbers_in_errors(self):
        try:
            parse_program("a.\nb.\nc :- $\n")
        except AspSyntaxError as e:
            assert "3" in str(e)
        else:
            pytest.fail("expected AspSyntaxError")
