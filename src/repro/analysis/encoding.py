"""Encoding audits: static checks over the generated ASP program.

Gamblin et al. note that encoding bugs — unsafe variables, rules that
can never fire, predicates nothing consumes — are the dominant failure
mode of logic-program concretizers.  These checkers assemble the same
program :class:`~repro.concretize.concretizer.Concretizer` would solve
(package encodings + request + can_splice rules + the logic files) and
analyze it *without grounding it*.

Codes:

* ASP001 (error) — a rule has unsafe variables: some variable is not
  bound by a positive body literal (or a ``V = expr`` assignment whose
  other side is bound).  The grounder raises ``GroundingError`` on
  these at solve time; the audit finds them before any solve.
* ASP002 (warning) — a predicate is derived but never consumed by any
  rule body, choice condition, or minimize element (dead derivation).
* ASP003 (warning) — a predicate is consumed but can never be derived
  by this program and is not a known solver input (dead consumption —
  usually a typo'd predicate name).
* ASP004 (warning) — a ``can_splice`` rule can never fire against the
  provided reusable specs: no installed spec satisfies its target.
* ENC001 (note) — a package or directive was skipped during program
  assembly because the encoder rejected it (the root cause is reported
  separately by the directive lints).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..asp.syntax import (
    Atom,
    ChoiceHead,
    Comparison,
    Literal,
    Program,
    Rule,
    Variable,
)
from ..concretize.cansplice import CanSpliceCompiler
from ..concretize.concretizer import _load_logic
from ..concretize.encode import Encoder
from ..spec import Spec
from .diagnostics import Diagnostic, Severity
from .registry import checker

__all__ = ["build_audit_program", "LOGIC_FILES", "SOLVER_INPUTS", "SOLVER_OUTPUTS"]

#: the logic files the concretizer assembles for a splicing-enabled
#: solve under the paper's (new) encoding
LOGIC_FILES = ("concretize.lp", "reuse_new.lp", "splice.lp")

#: predicates supplied as facts by the encoders at solve time; any of
#: them may legitimately be absent for a given repo/request/cache, so
#: consuming them without a derivation in the program is not a bug
SOLVER_INPUTS = frozenset(
    {
        "root",
        "requested_node",
        "requested_dep",
        "pkg",
        "pkg_fact",
        "not_buildable",
        "virtual",
        "possible_provider",
        "provides_condition",
        "version_in_set",
        "known_os",
        "known_target",
        "default_os",
        "default_target",
        # reuse inputs: only present when a cache/store contributes specs
        "installed_hash",
        "hash_attr",
        "imposed_constraint",
        # derived per-directive: absent when a repo declares none
        "condition_holds",
        "can_splice",
    }
)

#: predicates that ARE the solver's answer — the model extractor reads
#: them, so deriving them without an in-program consumer is expected
SOLVER_OUTPUTS = frozenset({"attr"})


def build_audit_program(repo) -> Tuple[Program, List[Diagnostic]]:
    """Assemble the program a splicing solve over ``repo`` would use.

    Mirrors ``Concretizer.solve`` (package encodings, a request naming
    every package as a root, can_splice rules, the three logic files)
    but is fault-tolerant: a package or directive the encoder rejects
    is skipped with an ENC001 note instead of aborting, so one broken
    package does not hide findings in the rest of the repository.
    """
    notes: List[Diagnostic] = []
    encoder = Encoder(repo)
    encodable: List[str] = []
    for pkg_cls in repo:
        try:
            encoder.encode_package(pkg_cls)
            encodable.append(pkg_cls.name)
        except Exception as exc:
            notes.append(
                Diagnostic(
                    "ENC001",
                    Severity.NOTE,
                    f"package skipped during program assembly: {exc}",
                    package=pkg_cls.name,
                    checker="encoding.assembly",
                )
            )
    encoder.encode_virtuals()
    try:
        encoder.encode_request([Spec(name) for name in encodable])
    except Exception as exc:
        notes.append(
            Diagnostic(
                "ENC001",
                Severity.NOTE,
                f"request encoding skipped during program assembly: {exc}",
                checker="encoding.assembly",
            )
        )

    compiler = CanSpliceCompiler(repo, encoder)
    splice_rules: List[Rule] = []
    for pkg_cls in repo:
        for index, decl in enumerate(pkg_cls.can_splice_decls):
            try:
                splice_rules.append(compiler.compile_decl(pkg_cls, decl, index))
            except Exception as exc:
                notes.append(
                    Diagnostic(
                        "ENC001",
                        Severity.NOTE,
                        f"can_splice rule skipped during program assembly: "
                        f"{exc}",
                        package=pkg_cls.name,
                        directive=f"can_splice[{index}]",
                        checker="encoding.assembly",
                    )
                )

    program = Program()
    encoder.into_program(program)
    for rule in splice_rules:
        program.add_rule(rule)
    for name in LOGIC_FILES:
        program.extend(_load_logic(name))
    return program, notes


# ---------------------------------------------------------------------------
# ASP001: variable safety (mirrors the grounder's runtime checks)
# ---------------------------------------------------------------------------
def _bound_variables(body: Sequence) -> Set[str]:
    """Variables bound by a rule body: positive literals bind their
    variables; ``V = expr`` comparisons bind one side once the other is
    fully bound (fixpoint, matching the grounder's assignment rule)."""
    bound: Set[str] = set()
    for element in body:
        if isinstance(element, Literal) and element.positive:
            bound.update(element.variables())
    changed = True
    while changed:
        changed = False
        for element in body:
            if not (isinstance(element, Comparison) and element.op == "="):
                continue
            left_vars = set(element.left.variables())
            right_vars = set(element.right.variables())
            if (
                isinstance(element.left, Variable)
                and element.left.name not in bound
                and right_vars <= bound
            ):
                bound.add(element.left.name)
                changed = True
            elif (
                isinstance(element.right, Variable)
                and element.right.name not in bound
                and left_vars <= bound
            ):
                bound.add(element.right.name)
                changed = True
    return bound


def _rule_display(rule: Rule, limit: int = 120) -> str:
    text = repr(rule)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _unsafe_in_rule(rule: Rule) -> List[str]:
    bound = _bound_variables(rule.body)
    unsafe: Set[str] = set()
    if isinstance(rule.head, ChoiceHead):
        for element in rule.head.elements:
            local = _bound_variables(list(rule.body) + list(element.condition))
            element_vars: Set[str] = set(element.atom.variables())
            for cond in element.condition:
                element_vars.update(cond.variables())
            unsafe.update(element_vars - local)
        body_vars: Set[str] = set()
        for part in rule.body:
            body_vars.update(part.variables())
        unsafe.update(body_vars - bound)
    else:
        all_vars = set(rule.variables())
        unsafe.update(all_vars - bound)
    return sorted(unsafe)


@checker(
    "encoding.safety",
    codes=("ASP001",),
    requires=("program",),
    description="every rule variable is bound by a positive body literal",
)
def check_safety(ctx) -> Iterable[Diagnostic]:
    program = ctx.program
    for rule in program.rules:
        unsafe = _unsafe_in_rule(rule)
        if unsafe:
            yield Diagnostic(
                "ASP001",
                Severity.ERROR,
                f"unsafe variables {unsafe} in rule: {_rule_display(rule)}",
            )
    for element in program.minimizes:
        bound = _bound_variables(element.body)
        all_vars = set(element.variables())
        unsafe_m = sorted(all_vars - bound)
        if unsafe_m:
            yield Diagnostic(
                "ASP001",
                Severity.ERROR,
                f"unsafe variables {unsafe_m} in minimize element: "
                f"{element!r}",
            )


# ---------------------------------------------------------------------------
# ASP002/ASP003: predicate dataflow
# ---------------------------------------------------------------------------
def _predicate_flow(program: Program) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(derived, consumed) predicate-name → occurrence count."""
    derived: Dict[str, int] = {}
    consumed: Dict[str, int] = {}

    def consume(parts) -> None:
        for part in parts:
            if isinstance(part, Literal):
                consumed[part.atom.predicate] = (
                    consumed.get(part.atom.predicate, 0) + 1
                )

    for rule in program.rules:
        head = rule.head
        if isinstance(head, Atom):
            derived[head.predicate] = derived.get(head.predicate, 0) + 1
        elif isinstance(head, ChoiceHead):
            for element in head.elements:
                derived[element.atom.predicate] = (
                    derived.get(element.atom.predicate, 0) + 1
                )
                consume(element.condition)
        consume(rule.body)
    for element in program.minimizes:
        consume(element.body)
    return derived, consumed


@checker(
    "encoding.dataflow",
    codes=("ASP002", "ASP003"),
    requires=("program",),
    description="every derived predicate is consumed, and vice versa",
)
def check_dataflow(ctx) -> Iterable[Diagnostic]:
    derived, consumed = _predicate_flow(ctx.program)
    for predicate in sorted(set(derived) - set(consumed) - SOLVER_OUTPUTS):
        yield Diagnostic(
            "ASP002",
            Severity.WARNING,
            f"predicate {predicate!r} is derived ({derived[predicate]} "
            "rules/facts) but never consumed by any rule body, choice "
            "condition, or minimize element",
        )
    for predicate in sorted(set(consumed) - set(derived) - SOLVER_INPUTS):
        yield Diagnostic(
            "ASP003",
            Severity.WARNING,
            f"predicate {predicate!r} is consumed ({consumed[predicate]} "
            "bodies) but never derived and is not a known solver input "
            "(typo'd predicate name?)",
        )


# ---------------------------------------------------------------------------
# ASP004: can_splice reachability against actual reusable specs
# ---------------------------------------------------------------------------
@checker(
    "encoding.splice_reach",
    codes=("ASP004",),
    requires=("repo", "reusable_specs"),
    description="each can_splice rule has a matching installed spec",
)
def check_splice_reach(ctx) -> Iterable[Diagnostic]:
    installed: List[Spec] = []
    for spec in ctx.reusable_specs:
        installed.extend(spec.traverse())
    for pkg_cls in ctx.repo:
        for index, decl in enumerate(pkg_cls.can_splice_decls):
            target = decl.target
            if target.name is None or target.name not in ctx.repo:
                continue  # SPL001 territory
            if not any(
                node.name == target.name and node.satisfies(target)
                for node in installed
            ):
                yield Diagnostic(
                    "ASP004",
                    Severity.WARNING,
                    f"can_splice target {target} matches none of the "
                    f"{len(installed)} reusable spec nodes; the rule can "
                    "never fire in this configuration",
                    package=pkg_cls.name,
                    directive=f"can_splice[{index}]",
                )
