"""repro.analysis — static analysis for repos, encodings, and DAGs.

The paper's splicing machinery fails *silently* when declarations are
wrong: a typo'd ``can_splice`` target or an unsatisfiable ``when``
clause just removes the splice from the solver's choice space, and an
encoding bug (unsafe variable, dead predicate) surfaces as a confusing
UNSAT or a wrong model.  This package is the ``spack audit`` analogue:
a checker registry producing structured diagnostics with stable codes
(``SPL001``, ``ASP002``, ``DAG001``, ...), surfaced via ``repro audit``.

Five checker families (see docs/static_analysis.md for the catalog):

* ``directives.*`` — lints over a :class:`Repository`;
* ``encoding.*``   — audits over the generated ASP program;
* ``dag.*``        — invariant checks over concrete/spliced specs;
* ``abi.*``        — splice-soundness checks cross-referencing
  ``can_splice`` declarations against actual cached/installed binaries;
* ``cache.*``/``store.*`` — full static verification of the on-disk
  buildcache, ground-cache, and install-store formats.

Programmatic entry points::

    from repro.analysis import audit_repository
    report = audit_repository(make_mock_repo())
    assert report.clean, report.render()
"""

from __future__ import annotations

from typing import Optional, Sequence

from .diagnostics import Diagnostic, Report, Severity, REPORT_SCHEMA_VERSION
from .registry import (
    AnalysisError,
    Analyzer,
    AuditContext,
    Checker,
    all_checkers,
    all_codes,
    checker,
)
from .encoding import build_audit_program

__all__ = [
    "AnalysisError",
    "Analyzer",
    "AuditContext",
    "Checker",
    "Diagnostic",
    "Report",
    "REPORT_SCHEMA_VERSION",
    "Severity",
    "all_checkers",
    "all_codes",
    "audit_cache",
    "audit_program",
    "audit_repository",
    "audit_specs",
    "audit_store",
    "build_audit_program",
    "checker",
]


def audit_repository(repo, checks: Optional[Sequence[str]] = None) -> Report:
    """Run the directive lints and encoding audits over ``repo``."""
    return Analyzer(checks).run(AuditContext(repo=repo))


def audit_program(program, checks: Optional[Sequence[str]] = None) -> Report:
    """Run the encoding audits over an already-assembled ASP program."""
    return Analyzer(checks or ["encoding"]).run(AuditContext(program=program))


def audit_specs(
    specs: Sequence, repo=None, checks: Optional[Sequence[str]] = None
) -> Report:
    """Run the concrete-DAG invariant checks over ``specs``."""
    return Analyzer(checks or ["dag"]).run(
        AuditContext(repo=repo, concrete_specs=specs)
    )


def audit_store(
    database, repo=None, checks: Optional[Sequence[str]] = None
) -> Report:
    """Audit an install database: DAG invariants plus store prefixes."""
    specs = database.all_specs()
    return Analyzer(checks or ["dag"]).run(
        AuditContext(
            repo=repo,
            concrete_specs=specs,
            database=database,
            store_root=getattr(database, "root", None),
        )
    )


def audit_cache(
    cache, repo=None, trust=None, checks: Optional[Sequence[str]] = None
) -> Report:
    """Statically verify a buildcache: on-disk format integrity
    (``cache.*``) plus ABI splice soundness against its artifacts
    (``abi.*``) when a repo is given."""
    default = ["cache"] + (["abi"] if repo is not None else [])
    return Analyzer(checks or default).run(
        AuditContext(repo=repo, cache=cache, trust=trust)
    )
