"""Concrete-DAG invariant checks over installed/cached/spliced specs.

Splicing rewrites concrete DAGs after the solve (Section 4), so these
invariants cannot be enforced by construction in one place — the audit
re-derives them from first principles over whatever specs it is given
(a buildcache, an install database, or both).

Codes:

* DAG001 (error) — broken ``build_spec`` provenance: a spliced node's
  build spec must be concrete, name the same package, be provenance-
  free itself (the chain is rooted at the original build, never
  chained), and hash differently from the spliced node.
* DAG002 (error) — a spliced node retains build-only dependency edges;
  splicing must drop them from the runtime DAG (Section 4.1).
* DAG003 (error) — a stored ``dag_hash`` differs from the hash
  recomputed from the DAG's content (stale or tampered hash cache).
* DAG004 (warning) — a concrete node carries a version or variant
  value its package no longer declares (repo drift).
* DAG005 (error) — an install-database record's prefix is missing on
  disk or (for non-external specs) lies outside the store root.
* DAG006 (error) — a node of a supposedly concrete DAG is not actually
  concrete (missing name, version, os, or target).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Tuple

from ..spec import Spec
from ..spec.spec import DEPTYPE_LINK_RUN
from .diagnostics import Diagnostic, Severity
from .registry import checker

__all__ = []


def _nodes(specs) -> Iterator[Tuple[Spec, Spec]]:
    """(root, node) pairs over every node of every given DAG."""
    for root in specs:
        for node in root.traverse():
            yield root, node


@checker(
    "dag.concreteness",
    codes=("DAG006",),
    requires=("concrete_specs",),
    description="every node of a concrete DAG is fully concrete",
)
def check_concreteness(ctx) -> Iterable[Diagnostic]:
    for root, node in _nodes(ctx.concrete_specs):
        problems: List[str] = []
        if node.name is None:
            problems.append("has no name")
        if not node.concrete:
            problems.append("is not marked concrete")
        if node.versions.concrete is None:
            problems.append(f"has no concrete version ({node.versions})")
        if node.os is None:
            problems.append("has no os")
        if node.target is None:
            problems.append("has no target")
        for problem in problems:
            yield Diagnostic(
                "DAG006",
                Severity.ERROR,
                f"node {node.name or '<anonymous>'} of "
                f"{root.short_str()} {problem}",
                package=node.name,
            )


@checker(
    "dag.provenance",
    codes=("DAG001",),
    requires=("concrete_specs",),
    description="build_spec provenance is closed, rooted, and distinct",
)
def check_provenance(ctx) -> Iterable[Diagnostic]:
    for root, node in _nodes(ctx.concrete_specs):
        build_spec = node.build_spec
        if build_spec is None:
            continue
        if not build_spec.concrete:
            yield Diagnostic(
                "DAG001",
                Severity.ERROR,
                f"spliced node {node.short_str()} has a non-concrete "
                "build_spec",
                package=node.name,
            )
            continue
        if build_spec.name != node.name:
            yield Diagnostic(
                "DAG001",
                Severity.ERROR,
                f"spliced node {node.short_str()} has build_spec "
                f"{build_spec.short_str()} naming a different package",
                package=node.name,
            )
        if build_spec.build_spec is not None:
            yield Diagnostic(
                "DAG001",
                Severity.ERROR,
                f"build_spec of {node.short_str()} itself carries "
                "provenance; the chain must stay rooted at the original "
                "build",
                package=node.name,
            )
        if build_spec.dag_hash() == node.dag_hash():
            yield Diagnostic(
                "DAG001",
                Severity.ERROR,
                f"spliced node {node.short_str()} hashes identically to "
                "its build_spec; the splice changed nothing or the hash "
                "ignores provenance",
                package=node.name,
            )


@checker(
    "dag.build_edges",
    codes=("DAG002",),
    requires=("concrete_specs",),
    description="spliced nodes carry no build-only dependency edges",
)
def check_build_edges(ctx) -> Iterable[Diagnostic]:
    for root, node in _nodes(ctx.concrete_specs):
        if not node.spliced:
            continue
        for edge in node.edges():
            if DEPTYPE_LINK_RUN not in edge.deptypes:
                yield Diagnostic(
                    "DAG002",
                    Severity.ERROR,
                    f"spliced node {node.short_str()} retains build-only "
                    f"edge to {edge.spec.name}; splicing must drop it "
                    "from the runtime DAG",
                    package=node.name,
                )


@checker(
    "dag.hashes",
    codes=("DAG003",),
    requires=("concrete_specs",),
    description="stored dag hashes match recomputation from content",
)
def check_hashes(ctx) -> Iterable[Diagnostic]:
    for root in ctx.concrete_specs:
        stored = root.dag_hash()
        recomputed = root.copy().dag_hash()
        if stored != recomputed:
            yield Diagnostic(
                "DAG003",
                Severity.ERROR,
                f"{root.short_str()}: stored dag_hash {stored[:10]} != "
                f"{recomputed[:10]} recomputed from DAG content",
                package=root.name,
            )


@checker(
    "dag.repo_consistency",
    codes=("DAG004",),
    requires=("repo", "concrete_specs"),
    description="concrete nodes use versions/variants the repo declares",
)
def check_repo_consistency(ctx) -> Iterable[Diagnostic]:
    repo = ctx.repo
    for root, node in _nodes(ctx.concrete_specs):
        if node.name is None:
            continue
        if node.name not in repo:
            yield Diagnostic(
                "DAG004",
                Severity.WARNING,
                f"installed node {node.short_str()} is not in the "
                "repository",
                package=node.name,
            )
            continue
        pkg_cls = repo.get(node.name)
        version = node.versions.concrete
        if version is not None and version not in pkg_cls.declared_versions():
            yield Diagnostic(
                "DAG004",
                Severity.WARNING,
                f"installed node {node.short_str()} has version {version} "
                "which the repository no longer declares",
                package=node.name,
            )
        declared = {d.name: d for d in pkg_cls.variant_decls}
        for _, variant in node.variants.items():
            decl = declared.get(variant.name)
            if decl is None:
                yield Diagnostic(
                    "DAG004",
                    Severity.WARNING,
                    f"installed node {node.short_str()} sets variant "
                    f"{variant.name!r} the repository does not declare",
                    package=node.name,
                )
            elif variant.value not in decl.allowed_values():
                yield Diagnostic(
                    "DAG004",
                    Severity.WARNING,
                    f"installed node {node.short_str()} sets "
                    f"{variant.name}={variant.value}, not an allowed value "
                    f"of the declared variant",
                    package=node.name,
                )


@checker(
    "dag.store",
    codes=("DAG005",),
    requires=("database",),
    description="install-database prefixes exist and resolve into the store",
)
def check_store(ctx) -> Iterable[Diagnostic]:
    store_root = Path(ctx.store_root).resolve() if ctx.store_root else None
    for record in ctx.database:
        spec = record.spec
        prefix = Path(record.prefix)
        if not prefix.exists():
            yield Diagnostic(
                "DAG005",
                Severity.ERROR,
                f"installed prefix {prefix} of {spec.short_str()} is "
                "missing on disk",
                package=spec.name,
            )
            continue
        if store_root is not None and not spec.external:
            resolved = prefix.resolve()
            if store_root != resolved and store_root not in resolved.parents:
                yield Diagnostic(
                    "DAG005",
                    Severity.ERROR,
                    f"installed prefix {prefix} of {spec.short_str()} "
                    f"resolves outside the store root {store_root}",
                    package=spec.name,
                )
