"""Checker registry and the Analyzer that drives an audit run.

Checkers are plain functions registered with the :func:`checker`
decorator.  Each declares which inputs it needs (``repo``, ``program``,
``concrete_specs``, ``reusable_specs``, ``database``); the
:class:`Analyzer` runs every applicable checker against an
:class:`AuditContext` and collects the findings into a
:class:`~repro.analysis.diagnostics.Report`.

Every checker executes under an ``analysis.<name>`` obs span, so
``repro audit --profile`` prints per-checker timings for free, and
``analysis.*`` counters record diagnostics by severity (see
docs/observability.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..asp.syntax import Program
from ..obs import metrics, trace
from ..package.repository import Repository
from .diagnostics import Diagnostic, Report, Severity

__all__ = [
    "AnalysisError",
    "AuditContext",
    "Analyzer",
    "Checker",
    "checker",
    "all_checkers",
    "all_codes",
]


class AnalysisError(RuntimeError):
    """Raised for misuse of the analysis framework itself (unknown
    checker names, duplicate registrations) — never for findings."""


@dataclass(frozen=True)
class Checker:
    """A registered checker function plus its metadata."""

    name: str
    family: str
    codes: Tuple[str, ...]
    requires: Tuple[str, ...]
    description: str
    func: Callable

    def applicable(self, context: "AuditContext") -> bool:
        return all(getattr(context, attr) is not None for attr in self.requires)


#: name → Checker; populated by the @checker decorator at import time
_REGISTRY: Dict[str, Checker] = {}


def checker(
    name: str,
    *,
    codes: Sequence[str],
    requires: Sequence[str] = ("repo",),
    description: str = "",
) -> Callable:
    """Register a checker.  ``name`` is ``family.checkname``; ``codes``
    lists every diagnostic code the checker may emit (documented in
    docs/static_analysis.md); ``requires`` names AuditContext attributes
    that must be present for the checker to run."""

    def register(func: Callable) -> Callable:
        if name in _REGISTRY:
            raise AnalysisError(f"duplicate checker {name!r}")
        family = name.split(".", 1)[0]
        doc = (func.__doc__ or "").strip()
        _REGISTRY[name] = Checker(
            name=name,
            family=family,
            codes=tuple(codes),
            requires=tuple(requires),
            description=description or (doc.splitlines()[0] if doc else ""),
            func=func,
        )
        return func

    return register


def all_checkers() -> List[Checker]:
    """Every registered checker, sorted by name (import side effect:
    loading this package registers the built-in families)."""
    _ensure_builtin_checkers()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def all_codes() -> List[str]:
    codes = set()
    for chk in all_checkers():
        codes.update(chk.codes)
    return sorted(codes)


def _ensure_builtin_checkers() -> None:
    # late import so the registry module has no import cycle with the
    # checker modules (they import `checker` from here)
    from . import abi, dag, directives, encoding, storage  # noqa: F401


class AuditContext:
    """Everything an audit run can look at.

    Only ``repo`` is commonly required; the ASP ``program`` is assembled
    lazily from the repo on first access (mirroring the concretizer's
    own program assembly), and DAG/store/cache inputs are optional —
    checkers declare what they need via ``requires`` and are skipped
    when an input is absent.
    """

    def __init__(
        self,
        repo: Optional[Repository] = None,
        program: Optional[Program] = None,
        concrete_specs: Optional[Sequence] = None,
        reusable_specs: Optional[Sequence] = None,
        database=None,
        store_root=None,
        cache=None,
        store=None,
        loader=None,
        trust=None,
        ground_cache_dir=None,
    ):
        self.repo = repo
        self._program = program
        self.concrete_specs = (
            list(concrete_specs) if concrete_specs is not None else None
        )
        self.reusable_specs = (
            list(reusable_specs) if reusable_specs is not None else None
        )
        self.database = database
        self.store_root = store_root if store_root is not None else store
        #: the :class:`~repro.buildcache.cache.BuildCache` under audit
        self.cache = cache
        #: install-store root (alias of ``store_root``, the name the
        #: storage checkers require)
        self.store = self.store_root
        self._loader = loader
        #: optional :class:`~repro.buildcache.signing.TrustStore` for
        #: deep signature verification (CACHE007)
        self.trust = trust
        #: optional ground-program cache directory (STORE001)
        self.ground_cache_dir = ground_cache_dir
        #: notes produced while assembling the program (ENC001)
        self.assembly_diagnostics: List[Diagnostic] = []
        #: memo shared by the ABI checkers: dag_hash -> loaded artifact
        self.artifact_memo: Dict[str, object] = {}

    @property
    def program(self) -> Optional[Program]:
        if self._program is None and self.repo is not None:
            from .encoding import build_audit_program

            with trace.span("analysis.assemble_program"):
                self._program, notes = build_audit_program(self.repo)
            self.assembly_diagnostics.extend(notes)
        return self._program

    @property
    def loader(self):
        """A shared :class:`~repro.binary.loader.Loader` (lazily built
        so its directory-scan cache spans every checker in the run)."""
        if self._loader is None:
            from ..binary.loader import Loader

            self._loader = Loader()
        return self._loader


class Analyzer:
    """Runs a (filtered) set of checkers against a context."""

    def __init__(self, checks: Optional[Sequence[str]] = None):
        selected = all_checkers()
        if checks:
            wanted = list(checks)
            known = {c.name for c in selected}
            families = {c.family for c in selected}
            codes = {code for c in selected for code in c.codes}
            for item in wanted:
                if item not in known and item not in families and item not in codes:
                    raise AnalysisError(
                        f"unknown checker, family, or code {item!r} "
                        f"(see `repro audit --list-checks`)"
                    )
            selected = [
                c
                for c in selected
                if c.name in wanted
                or c.family in wanted
                or any(code in wanted for code in c.codes)
            ]
        self.checkers = selected

    def run(self, context: AuditContext) -> Report:
        report = Report()
        with trace.span("analysis.audit", checkers=len(self.checkers)):
            for chk in self.checkers:
                if not chk.applicable(context):
                    report.checkers_skipped.append(chk.name)
                    continue
                with trace.span(f"analysis.{chk.name}"):
                    found = [
                        Diagnostic(
                            code=d.code,
                            severity=d.severity,
                            message=d.message,
                            package=d.package,
                            directive=d.directive,
                            checker=chk.name,
                        )
                        for d in chk.func(context)
                    ]
                report.checkers_run.append(chk.name)
                metrics.inc("analysis.checkers_run")
                for diag in found:
                    metrics.inc(f"analysis.diagnostics.{diag.severity}")
                    metrics.inc(f"analysis.diagnostics.code.{diag.code}")
                report.extend(found)
            # program-assembly notes surface once, attributed to the
            # encoding family (they only exist if some checker forced
            # program assembly)
            for diag in context.assembly_diagnostics:
                metrics.inc(f"analysis.diagnostics.{diag.severity}")
                metrics.inc(f"analysis.diagnostics.code.{diag.code}")
            report.extend(context.assembly_diagnostics)
        return report.finalize()
