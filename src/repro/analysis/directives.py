"""Directive lints: static checks over a :class:`Repository`.

These run before any encoding.  They catch the declaration mistakes the
paper's splicing machinery is most sensitive to: a typo'd ``can_splice``
target or an unsatisfiable ``when`` clause does not fail a solve — it
silently removes the splice from the solver's choice space (Fig. 4), so
nothing but an auditor ever notices.

Codes (catalog in docs/static_analysis.md):

* PKG001/PKG002/VER001 — version declarations
* VAR001/VAR002       — variant declarations
* DEP001–DEP004       — depends_on targets and constraints
* WHN001–WHN004       — ``when`` clauses on any directive
* CON001              — conflicts that exclude every version
* VIR001/VIR002       — virtual/provider consistency
* SPL001–SPL003       — can_splice declarations
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..spec import Spec
from ..spec.version import VersionList
from .diagnostics import Diagnostic, Severity
from .registry import checker

__all__ = []


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------
def _version_satisfiable(pkg_cls, versions: VersionList) -> bool:
    """Does any declared version of ``pkg_cls`` satisfy ``versions``?"""
    if versions.is_any:
        return True
    return any(
        decl.version.satisfies(versions) for decl in pkg_cls.version_decls
    )


def _variant_problems(pkg_cls, spec: Spec) -> Iterator[str]:
    """Human descriptions of variant constraints in ``spec`` that no
    declaration of ``pkg_cls`` can ever satisfy."""
    decls_by_name: dict = {}
    for decl in pkg_cls.variant_decls:
        decls_by_name.setdefault(decl.name, []).append(decl)
    for _, variant in spec.variants.items():
        decls = decls_by_name.get(variant.name)
        if not decls:
            yield (
                f"constrains variant {variant.name!r} which "
                f"{pkg_cls.name!r} does not declare"
            )
        elif not any(variant.value in d.allowed_values() for d in decls):
            allowed = sorted({v for d in decls for v in d.allowed_values()})
            yield (
                f"requires {variant.name}={variant.value} but "
                f"{pkg_cls.name!r} only allows {allowed}"
            )


def _node_problems(pkg_cls, spec: Spec) -> List[str]:
    """Version + variant constraints of ``spec`` that can never hold on
    a node of ``pkg_cls`` (ignores os/target: those come from requests)."""
    problems: List[str] = []
    if not _version_satisfiable(pkg_cls, spec.versions):
        declared = ", ".join(str(v) for v in pkg_cls.declared_versions())
        problems.append(
            f"version constraint {spec.versions} matches none of "
            f"{pkg_cls.name!r}'s declared versions ({declared or 'none'})"
        )
    problems.extend(_variant_problems(pkg_cls, spec))
    return problems


def _directives(pkg_cls) -> Iterator[Tuple[str, int, object]]:
    """Every directive on a package as (kind, index, decl)."""
    for kind, attr in (
        ("version", "version_decls"),
        ("variant", "variant_decls"),
        ("depends_on", "dependency_decls"),
        ("provides", "provides_decls"),
        ("conflicts", "conflict_decls"),
        ("requires", "requires_decls"),
        ("can_splice", "can_splice_decls"),
    ):
        for index, decl in enumerate(getattr(pkg_cls, attr, ())):
            yield kind, index, decl


def _loc(kind: str, index: int) -> str:
    return f"{kind}[{index}]"


# ---------------------------------------------------------------------------
# versions
# ---------------------------------------------------------------------------
@checker(
    "directives.versions",
    codes=("PKG001", "PKG002", "VER001"),
    description="every package declares usable, non-duplicate versions",
)
def check_versions(ctx) -> Iterable[Diagnostic]:
    for pkg_cls in ctx.repo:
        decls = pkg_cls.version_decls
        if not decls:
            yield Diagnostic(
                "PKG001",
                Severity.ERROR,
                "package declares no versions; it can never concretize",
                package=pkg_cls.name,
            )
            continue
        if all(d.deprecated for d in decls):
            yield Diagnostic(
                "PKG002",
                Severity.WARNING,
                "every declared version is deprecated; "
                "preferred_version() will fail",
                package=pkg_cls.name,
            )
        seen: dict = {}
        for index, decl in enumerate(decls):
            first = seen.setdefault(decl.version, index)
            if first != index:
                yield Diagnostic(
                    "VER001",
                    Severity.WARNING,
                    f"version {decl.version} already declared at "
                    f"version[{first}]",
                    package=pkg_cls.name,
                    directive=_loc("version", index),
                )


# ---------------------------------------------------------------------------
# variants
# ---------------------------------------------------------------------------
@checker(
    "directives.variants",
    codes=("VAR001", "VAR002"),
    description="variant defaults are allowed values; no duplicate variants",
)
def check_variants(ctx) -> Iterable[Diagnostic]:
    for pkg_cls in ctx.repo:
        seen: dict = {}
        for index, decl in enumerate(pkg_cls.variant_decls):
            if not decl.is_bool:
                allowed = decl.allowed_values()
                if str(decl.default) not in allowed:
                    yield Diagnostic(
                        "VAR001",
                        Severity.ERROR,
                        f"variant {decl.name!r} default {decl.default!r} "
                        f"is not among allowed values {sorted(allowed)}",
                        package=pkg_cls.name,
                        directive=_loc("variant", index),
                    )
            key = (decl.name, str(decl.when))
            first = seen.setdefault(key, index)
            if first != index:
                yield Diagnostic(
                    "VAR002",
                    Severity.WARNING,
                    f"variant {decl.name!r} already declared at "
                    f"variant[{first}] with the same `when`",
                    package=pkg_cls.name,
                    directive=_loc("variant", index),
                )


# ---------------------------------------------------------------------------
# dependencies
# ---------------------------------------------------------------------------
@checker(
    "directives.dependencies",
    codes=("DEP001", "DEP002", "DEP003", "DEP004"),
    description="depends_on names known packages and satisfiable constraints",
)
def check_dependencies(ctx) -> Iterable[Diagnostic]:
    repo = ctx.repo
    for pkg_cls in repo:
        for index, decl in enumerate(pkg_cls.dependency_decls):
            loc = _loc("depends_on", index)
            for dep in [decl.spec] + list(decl.spec.traverse(root=False)):
                name = dep.name
                if name is None:
                    yield Diagnostic(
                        "DEP001",
                        Severity.ERROR,
                        "dependency spec does not name a package",
                        package=pkg_cls.name,
                        directive=loc,
                    )
                    continue
                if repo.is_virtual(name):
                    if not dep.versions.is_any or len(dep.variants):
                        yield Diagnostic(
                            "DEP004",
                            Severity.ERROR,
                            f"constraints on virtual dependency {name!r} are "
                            "not supported; constrain a provider instead",
                            package=pkg_cls.name,
                            directive=loc,
                        )
                    continue
                if name not in repo:
                    yield Diagnostic(
                        "DEP001",
                        Severity.ERROR,
                        f"depends on {name!r}, which is neither a package "
                        "nor a provided virtual in this repository",
                        package=pkg_cls.name,
                        directive=loc,
                    )
                    continue
                dep_cls = repo.get(name)
                if not _version_satisfiable(dep_cls, dep.versions):
                    declared = ", ".join(
                        str(v) for v in dep_cls.declared_versions()
                    )
                    yield Diagnostic(
                        "DEP002",
                        Severity.ERROR,
                        f"requires {name}@{dep.versions} but {name!r} only "
                        f"declares [{declared or 'no versions'}]",
                        package=pkg_cls.name,
                        directive=loc,
                    )
                for problem in _variant_problems(dep_cls, dep):
                    yield Diagnostic(
                        "DEP003",
                        Severity.ERROR,
                        f"dependency on {name!r} {problem}",
                        package=pkg_cls.name,
                        directive=loc,
                    )


# ---------------------------------------------------------------------------
# when clauses (all directives)
# ---------------------------------------------------------------------------
@checker(
    "directives.when",
    codes=("WHN001", "WHN002", "WHN003", "WHN004"),
    description="`when` clauses can actually hold on their own package",
)
def check_when_clauses(ctx) -> Iterable[Diagnostic]:
    repo = ctx.repo
    for pkg_cls in repo:
        for kind, index, decl in _directives(pkg_cls):
            when: Optional[Spec] = getattr(decl, "when", None)
            if when is None:
                continue
            loc = _loc(kind, index)
            if when.name is not None and when.name != pkg_cls.name:
                yield Diagnostic(
                    "WHN001",
                    Severity.ERROR,
                    f"`when` spec names {when.name!r}, not the package it "
                    "guards; the encoder rejects this",
                    package=pkg_cls.name,
                    directive=loc,
                )
                continue
            if not _version_satisfiable(pkg_cls, when.versions):
                yield Diagnostic(
                    "WHN002",
                    Severity.WARNING,
                    f"`when` version constraint {when.versions} matches no "
                    "declared version; the directive can never apply",
                    package=pkg_cls.name,
                    directive=loc,
                )
            for problem in _variant_problems(pkg_cls, when):
                yield Diagnostic(
                    "WHN003",
                    Severity.WARNING,
                    f"`when` clause {problem}; the directive can never apply",
                    package=pkg_cls.name,
                    directive=loc,
                )
            for dep in when.dependencies():
                if dep.name is None:
                    continue
                if repo.is_virtual(dep.name):
                    continue
                if dep.name not in repo:
                    yield Diagnostic(
                        "WHN004",
                        Severity.WARNING,
                        f"`when` clause constrains unknown package "
                        f"{dep.name!r}; the condition can never hold",
                        package=pkg_cls.name,
                        directive=loc,
                    )
                    continue
                for problem in _node_problems(repo.get(dep.name), dep):
                    yield Diagnostic(
                        "WHN004",
                        Severity.WARNING,
                        f"`when` clause on ^{dep.name}: {problem}",
                        package=pkg_cls.name,
                        directive=loc,
                    )


# ---------------------------------------------------------------------------
# conflicts
# ---------------------------------------------------------------------------
@checker(
    "directives.conflicts",
    codes=("CON001",),
    description="no unconditional conflict excludes every configuration",
)
def check_conflicts(ctx) -> Iterable[Diagnostic]:
    for pkg_cls in ctx.repo:
        declared = [d.version for d in pkg_cls.version_decls]
        for index, decl in enumerate(pkg_cls.conflict_decls):
            spec = decl.spec
            if decl.when is not None:
                continue
            if spec.name is not None and spec.name != pkg_cls.name:
                continue
            # the conflict is node-local and unconditional: if it covers
            # every declared version with no other constraint, the
            # package can never concretize at all
            unconstrained = (
                not len(spec.variants)
                and spec.os is None
                and spec.target is None
                and not spec.dependencies()
            )
            covers_all = bool(declared) and all(
                v.satisfies(spec.versions) for v in declared
            )
            if unconstrained and covers_all:
                yield Diagnostic(
                    "CON001",
                    Severity.ERROR,
                    f"unconditional conflict {spec} matches every declared "
                    "version; the package can never concretize",
                    package=pkg_cls.name,
                    directive=_loc("conflicts", index),
                )


# ---------------------------------------------------------------------------
# virtuals and providers
# ---------------------------------------------------------------------------
@checker(
    "directives.virtuals",
    codes=("VIR001", "VIR002"),
    description="virtual names and provider preferences are consistent",
)
def check_virtuals(ctx) -> Iterable[Diagnostic]:
    repo = ctx.repo
    for pkg_cls in repo:
        for index, decl in enumerate(pkg_cls.provides_decls):
            virtual = decl.virtual.name
            loc = _loc("provides", index)
            if virtual is None:
                yield Diagnostic(
                    "VIR001",
                    Severity.ERROR,
                    "provides() spec does not name a virtual",
                    package=pkg_cls.name,
                    directive=loc,
                )
            elif virtual in repo:
                yield Diagnostic(
                    "VIR001",
                    Severity.ERROR,
                    f"provides {virtual!r}, which is also a real package; "
                    "the name cannot be both",
                    package=pkg_cls.name,
                    directive=loc,
                )
    for virtual, preferences in sorted(repo.provider_preferences.items()):
        providers = set(repo.providers(virtual)) if repo.is_virtual(virtual) else set()
        if not repo.is_virtual(virtual):
            yield Diagnostic(
                "VIR002",
                Severity.WARNING,
                f"provider preference for {virtual!r}, which no package "
                "provides",
            )
            continue
        for name in preferences:
            if name not in providers:
                yield Diagnostic(
                    "VIR002",
                    Severity.WARNING,
                    f"preferred provider {name!r} for {virtual!r} "
                    "does not provide it",
                )


# ---------------------------------------------------------------------------
# can_splice
# ---------------------------------------------------------------------------
@checker(
    "directives.can_splice",
    codes=("SPL001", "SPL002", "SPL003"),
    description="can_splice targets exist and are satisfiable; no shadowed decls",
)
def check_can_splice(ctx) -> Iterable[Diagnostic]:
    repo = ctx.repo
    for pkg_cls in repo:
        seen: dict = {}
        unconditional: dict = {}
        for index, decl in enumerate(pkg_cls.can_splice_decls):
            if decl.when is None and decl.target.name is not None:
                unconditional.setdefault(str(decl.target), index)
        for index, decl in enumerate(pkg_cls.can_splice_decls):
            loc = _loc("can_splice", index)
            target = decl.target
            name = target.name
            if name is None:
                yield Diagnostic(
                    "SPL001",
                    Severity.ERROR,
                    f"can_splice target {target} does not name a package; "
                    "the rule compiler rejects it",
                    package=pkg_cls.name,
                    directive=loc,
                )
                continue
            if name not in repo:
                kind = "a virtual" if repo.is_virtual(name) else "unknown"
                yield Diagnostic(
                    "SPL001",
                    Severity.ERROR,
                    f"can_splice target names {kind} package {name!r}; the "
                    "splice can never enter the solver's choice space",
                    package=pkg_cls.name,
                    directive=loc,
                )
                continue
            for problem in _node_problems(repo.get(name), target):
                yield Diagnostic(
                    "SPL002",
                    Severity.ERROR,
                    f"can_splice target {problem}; no hash_attr fact can "
                    "ever match, so the rule never fires",
                    package=pkg_cls.name,
                    directive=loc,
                )
            key = (str(target), str(decl.when))
            first = seen.setdefault(key, index)
            if first != index:
                yield Diagnostic(
                    "SPL003",
                    Severity.WARNING,
                    f"duplicate can_splice declaration (same target and "
                    f"`when` as can_splice[{first}])",
                    package=pkg_cls.name,
                    directive=loc,
                )
                continue
            if decl.when is not None:
                broader = unconditional.get(str(target))
                if broader is not None:
                    yield Diagnostic(
                        "SPL003",
                        Severity.WARNING,
                        f"conditional can_splice is shadowed by the "
                        f"unconditional can_splice[{broader}] on the same "
                        "target",
                        package=pkg_cls.name,
                        directive=loc,
                    )
