"""Cache/store integrity checks: full static verification of on-disk
formats.

The buildcache (PR 5–6) and installer verify their formats *lazily*,
one entry at a time, at read time.  These checkers audit the whole
surface at once — every shard, every blob, every sidecar — so silent
corruption and drift are caught before a consumer trips over them.

``CACHE`` codes (over a :class:`~repro.buildcache.cache.BuildCache`):

* CACHE001 (error) — a shard's on-disk bytes do not hash to the digest
  the v3 manifest records for it (or the shard is missing/unparseable).
* CACHE002 (error) — the manifest's own digest does not equal the
  recomputation over its sorted per-shard digest lines.
* CACHE003 — summary sidecar problems: a stale or unparseable sidecar
  is a warning (readers ignore it: slower, never wrong); a sidecar
  whose stamped digest *matches* the manifest but whose content
  disagrees with the shard documents is an error — it would wrongly
  prove hashes absent (false negatives) or present (phantoms).
* CACHE004 (note/warning) — journal entries not yet folded into shards
  (note); an unparseable journal line (warning).
* CACHE005 (error) — blob-entry integrity: a payload file whose bytes
  do not match the signed manifest (torn blob), missing or mismatched
  ``meta.json``, files missing from or not covered by the manifest.
* CACHE006 (warning) — an orphaned blob entry: payload on disk under a
  hash the index does not know.
* CACHE007 — signature problems: an unparseable/malformed
  ``manifest.sig`` is always an error; with a trust store in the
  context, a signature that fails HMAC verification is an error and a
  missing signature is a warning.

``STORE`` codes (over an install store / ground cache):

* STORE001 (error) — ground-cache sidecar inconsistency: incomplete
  payload/sidecar pair, unparseable sidecar, wrong format version, a
  sidecar stamped for a different key, or a payload digest mismatch.
* STORE002 (warning) — install-DB vs install-tree drift: an
  install-prefix-shaped directory in the store no record claims, or a
  leftover ``.staging`` tree.
* STORE003 (error) — an installed binary embeds a path that resolves
  neither into the store nor to any known prefix: an unrelocated
  build-machine prefix leaked through extraction.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..binary.mockelf import BinaryFormatError, MockBinary
from .diagnostics import Diagnostic, Severity
from .registry import checker

__all__ = []


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _get(ctx, key: str) -> Optional[bytes]:
    from ..buildcache.backend import BackendError, MissingBlobError

    try:
        return ctx.cache.backend.get(key)
    except (MissingBlobError, BackendError):
        return None


def _manifest_of(ctx) -> Optional[dict]:
    """The parsed ``index.json`` manifest, memoized on the context
    (several checkers anchor on it).  ``None`` when absent/corrupt —
    the CLI already refuses to open such a cache with a CLIError."""
    if hasattr(ctx, "_audit_manifest"):
        return ctx._audit_manifest
    from ..buildcache.index import INDEX_NAME

    manifest: Optional[dict] = None
    raw = _get(ctx, INDEX_NAME)
    if raw is not None:
        try:
            parsed = json.loads(raw)
            if isinstance(parsed, dict):
                manifest = parsed
        except ValueError:  # bad JSON or bad UTF-8
            manifest = None
    ctx._audit_manifest = manifest
    return manifest


def _shard_documents(ctx) -> Dict[str, Tuple[Optional[dict], Optional[str]]]:
    """prefix -> (parsed shard document or None, content digest or None),
    for every shard the manifest names.  Memoized on the context."""
    if hasattr(ctx, "_audit_shards"):
        return ctx._audit_shards
    from ..buildcache.index import SHARD_DIR

    shards: Dict[str, Tuple[Optional[dict], Optional[str]]] = {}
    manifest = _manifest_of(ctx)
    for prefix in sorted((manifest or {}).get("shards", {})):
        raw = _get(ctx, f"{SHARD_DIR}/{prefix}.json")
        if raw is None:
            shards[prefix] = (None, None)
            continue
        try:
            document = json.loads(raw)
        except ValueError:  # bad JSON or bad UTF-8
            document = None
        shards[prefix] = (document, _sha(raw))
    ctx._audit_shards = shards
    return shards


@checker(
    "cache.shards",
    codes=("CACHE001", "CACHE002"),
    requires=("cache",),
    description="shard bytes match the manifest's content digests",
)
def check_shards(ctx) -> Iterable[Diagnostic]:
    from ..buildcache.index import INDEX_NAME, INDEX_VERSION, ShardedIndex

    manifest = _manifest_of(ctx)
    if manifest is None:
        if _get(ctx, INDEX_NAME) is not None:
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                f"{INDEX_NAME} exists but is not a parseable JSON object; "
                "no shard can be verified",
            )
        return
    if manifest.get("version") != INDEX_VERSION:
        yield Diagnostic(
            "CACHE002",
            Severity.WARNING,
            f"manifest declares version {manifest.get('version')!r}, not "
            f"the supported v{INDEX_VERSION}; digests cannot be verified",
        )
        return
    width = manifest.get("shard_width")
    recorded: Dict[str, str] = {}
    for prefix, entry in sorted(manifest.get("shards", {}).items()):
        recorded[prefix] = str((entry or {}).get("digest", ""))
    documents = _shard_documents(ctx)
    for prefix, digest in sorted(recorded.items()):
        if len(prefix) != width:
            yield Diagnostic(
                "CACHE001",
                Severity.ERROR,
                f"shard prefix {prefix!r} does not match the manifest's "
                f"shard_width {width!r}",
            )
        document, actual = documents.get(prefix, (None, None))
        if actual is None:
            yield Diagnostic(
                "CACHE001",
                Severity.ERROR,
                f"manifest names shard {prefix} but index.d/{prefix}.json "
                "is missing",
            )
            continue
        if document is None:
            yield Diagnostic(
                "CACHE001",
                Severity.ERROR,
                f"shard index.d/{prefix}.json is not parseable JSON",
            )
        if actual != digest:
            yield Diagnostic(
                "CACHE001",
                Severity.ERROR,
                f"shard index.d/{prefix}.json hashes to {actual[:12]} but "
                f"the manifest records {digest[:12]}",
            )
        if document is None:
            continue
        specs = document.get("specs", {})
        count = (manifest.get("shards", {}).get(prefix) or {}).get("specs")
        if count != len(specs):
            yield Diagnostic(
                "CACHE001",
                Severity.ERROR,
                f"manifest records {count!r} spec(s) for shard {prefix} "
                f"but the shard document holds {len(specs)}",
            )
        for h in sorted(specs):
            if not str(h).startswith(prefix):
                yield Diagnostic(
                    "CACHE001",
                    Severity.ERROR,
                    f"shard {prefix} holds spec {str(h)[:12]} that belongs "
                    "in another shard",
                )
    stamped = manifest.get("digest")
    recomputed = ShardedIndex._digest_of(recorded)
    if stamped != recomputed:
        yield Diagnostic(
            "CACHE002",
            Severity.ERROR,
            f"manifest digest {str(stamped)[:12]} does not match "
            f"{recomputed[:12]} recomputed from its sorted per-shard "
            "digest lines",
        )


@checker(
    "cache.summary",
    codes=("CACHE003",),
    requires=("cache",),
    description="summary sidecar agrees with the manifest and shards",
)
def check_summary(ctx) -> Iterable[Diagnostic]:
    from ..buildcache.index import INDEX_VERSION, SUMMARY_NAME
    from ..buildcache.summary import (
        _KINDS,
        SummaryFormatError,
        summary_from_document,
    )

    raw = _get(ctx, SUMMARY_NAME)
    if raw is None:
        return  # no sidecar is a valid (slower) configuration
    manifest = _manifest_of(ctx) or {}
    try:
        sidecar = json.loads(raw)
        if not isinstance(sidecar, dict):
            raise ValueError("sidecar is not an object")
    except ValueError as e:
        yield Diagnostic(
            "CACHE003",
            Severity.WARNING,
            f"summary sidecar {SUMMARY_NAME} is unreadable and will be "
            f"ignored by readers: {e}",
        )
        return
    if sidecar.get("version") != INDEX_VERSION:
        yield Diagnostic(
            "CACHE003",
            Severity.WARNING,
            f"summary sidecar declares version {sidecar.get('version')!r}, "
            f"not the supported v{INDEX_VERSION}; readers ignore it",
        )
        return
    if sidecar.get("kind") not in _KINDS:
        yield Diagnostic(
            "CACHE003",
            Severity.WARNING,
            f"summary sidecar declares unknown kind "
            f"{sidecar.get('kind')!r}; readers ignore it",
        )
        return
    if sidecar.get("digest") != manifest.get("digest"):
        yield Diagnostic(
            "CACHE003",
            Severity.WARNING,
            "summary sidecar is stamped with a digest that does not match "
            "the manifest (stale write or foreign writer); readers fall "
            "back to shard reads",
        )
        return
    # the stamp matches, so readers WILL trust this sidecar: its content
    # must now agree exactly with the shard documents
    documents = _shard_documents(ctx)
    summaries = dict(sidecar.get("shards", {}))
    for prefix in sorted(set(documents) | set(summaries)):
        document, _digest = documents.get(prefix, (None, None))
        shard_hashes: Set[str] = set((document or {}).get("specs", {}))
        summary_doc = summaries.get(prefix)
        if summary_doc is None:
            if shard_hashes:
                yield Diagnostic(
                    "CACHE003",
                    Severity.ERROR,
                    f"summary sidecar covers no entry for shard {prefix}; "
                    f"readers would treat its {len(shard_hashes)} spec(s) "
                    "as absent",
                )
            continue
        try:
            summary = summary_from_document(summary_doc)
        except (SummaryFormatError, AttributeError, TypeError) as e:
            yield Diagnostic(
                "CACHE003",
                Severity.ERROR,
                f"summary entry for shard {prefix} is corrupt despite a "
                f"matching digest stamp: {e}",
            )
            continue
        missing = sorted(h for h in shard_hashes if not summary.contains(h))
        for h in missing:
            yield Diagnostic(
                "CACHE003",
                Severity.ERROR,
                f"summary for shard {prefix} reports spec {h[:12]} absent "
                "although the shard document holds it (a false negative "
                "readers would trust)",
            )
        if summary.enumerable:
            for h in sorted(set(summary.hashes()) - shard_hashes):
                yield Diagnostic(
                    "CACHE003",
                    Severity.ERROR,
                    f"summary for shard {prefix} enumerates spec {h[:12]} "
                    "that the shard document does not hold (a phantom "
                    "entry)",
                )


@checker(
    "cache.journal",
    codes=("CACHE004",),
    requires=("cache",),
    description="push-journal entries still awaiting a save_index fold",
)
def check_journal(ctx) -> Iterable[Diagnostic]:
    from ..buildcache.index import JOURNAL_NAME

    raw = _get(ctx, JOURNAL_NAME)
    if raw is None:
        return
    lines = [line for line in raw.decode(errors="replace").splitlines() if line.strip()]
    bad = 0
    for line in lines:
        try:
            json.loads(line)
        except json.JSONDecodeError:
            bad += 1
    if bad:
        yield Diagnostic(
            "CACHE004",
            Severity.WARNING,
            f"{bad} of {len(lines)} journal line(s) are unparseable and "
            "will be lost at the next replay",
        )
    if len(lines) - bad:
        yield Diagnostic(
            "CACHE004",
            Severity.NOTE,
            f"{len(lines) - bad} pushed entr"
            f"{'y' if len(lines) - bad == 1 else 'ies'} await a "
            "save_index fold into shards (durable, but every open "
            "replays them)",
        )


def _blob_hashes(ctx) -> List[str]:
    from ..buildcache.backend import BackendError, MissingBlobError

    try:
        _files, dirs = ctx.cache.backend.list_tree("blobs")
    except (MissingBlobError, BackendError):
        return []
    return sorted(d for d in dirs if "/" not in d)


@checker(
    "cache.entries",
    codes=("CACHE005", "CACHE006", "CACHE007"),
    requires=("cache",),
    description="blob payloads, metadata, and signatures verify",
)
def check_entries(ctx) -> Iterable[Diagnostic]:
    from ..buildcache.backend import BackendError, MissingBlobError
    from ..buildcache.signing import SignatureError

    indexed: Optional[Set[str]] = None
    try:
        indexed = set(ctx.cache.spec_hash_set())
    except Exception:
        pass  # unreadable index: CACHE001 reports it; skip orphan checks
    for dag_hash in _blob_hashes(ctx):
        entry = f"blobs/{dag_hash}"
        short = dag_hash[:12]
        if indexed is not None and dag_hash not in indexed:
            yield Diagnostic(
                "CACHE006",
                Severity.WARNING,
                f"blob entry {short} is not in the index (orphaned "
                "payload; unreachable by consumers)",
            )
        manifest_bytes = _get(ctx, f"{entry}/manifest.json")
        if manifest_bytes is None:
            yield Diagnostic(
                "CACHE005",
                Severity.ERROR,
                f"blob entry {short} has no manifest.json; nothing about "
                "its payload can be verified",
            )
            continue
        try:
            manifest = json.loads(manifest_bytes)
            if not isinstance(manifest, dict):
                raise ValueError("manifest is not an object")
        except ValueError as e:
            yield Diagnostic(
                "CACHE005",
                Severity.ERROR,
                f"blob entry {short} has an unparseable manifest: {e}",
            )
            continue

        # signature (CACHE007)
        sig_bytes = _get(ctx, f"{entry}/manifest.sig")
        if sig_bytes is not None:
            signature = None
            try:
                signature = json.loads(sig_bytes)
                if not isinstance(signature, dict):
                    raise ValueError("signature is not an object")
                for field in ("key_id", "algorithm", "signature"):
                    if field not in signature:
                        raise ValueError(f"missing field {field!r}")
            except ValueError as e:
                signature = None
                yield Diagnostic(
                    "CACHE007",
                    Severity.ERROR,
                    f"blob entry {short} has a malformed manifest.sig: {e}",
                )
            if signature is not None and signature.get("algorithm") != (
                "hmac-sha256"
            ):
                # TrustStore.verify never reads the algorithm field, so a
                # tampered one would otherwise still "verify"
                yield Diagnostic(
                    "CACHE007",
                    Severity.ERROR,
                    f"blob entry {short}: signature declares unknown "
                    f"algorithm {signature.get('algorithm')!r}",
                )
            if signature is not None and ctx.trust is not None:
                try:
                    ctx.trust.verify(manifest_bytes, signature)
                except SignatureError as e:
                    yield Diagnostic(
                        "CACHE007",
                        Severity.ERROR,
                        f"blob entry {short} fails signature "
                        f"verification: {e}",
                    )
                else:
                    named = [
                        key
                        for key in ctx.trust.keys()
                        if key.key_id == signature.get("key_id")
                    ]
                    if named and signature.get("key_name") != named[0].name:
                        yield Diagnostic(
                            "CACHE007",
                            Severity.ERROR,
                            f"blob entry {short}: signature names key "
                            f"{signature.get('key_name')!r} but its key_id "
                            f"belongs to {named[0].name!r}",
                        )
        elif ctx.trust is not None:
            yield Diagnostic(
                "CACHE007",
                Severity.WARNING,
                f"blob entry {short} is unsigned; consumers with this "
                "trust store will refuse to extract it",
            )

        if manifest.get("hash") != dag_hash:
            yield Diagnostic(
                "CACHE005",
                Severity.ERROR,
                f"blob entry {short} carries a manifest for "
                f"{str(manifest.get('hash'))[:12]} (misfiled entry)",
            )
        meta_bytes = _get(ctx, f"{entry}/meta.json")
        if meta_bytes is None:
            yield Diagnostic(
                "CACHE005",
                Severity.ERROR,
                f"blob entry {short} has no meta.json",
            )
        elif _sha(meta_bytes) != manifest.get("meta"):
            yield Diagnostic(
                "CACHE005",
                Severity.ERROR,
                f"blob entry {short}: meta.json does not match the digest "
                "its manifest records",
            )

        expected: Dict[str, str] = dict(manifest.get("files", {}))
        try:
            names, _dirs = ctx.cache.backend.list_tree(f"{entry}/files")
        except (MissingBlobError, BackendError):
            names = []
        for rel in names:
            digest = expected.pop(rel, None)
            data = _get(ctx, f"{entry}/files/{rel}")
            if digest is None:
                yield Diagnostic(
                    "CACHE005",
                    Severity.ERROR,
                    f"blob entry {short}: file {rel!r} is not covered by "
                    "the manifest",
                )
                continue
            if data is None or _sha(data) != digest:
                yield Diagnostic(
                    "CACHE005",
                    Severity.ERROR,
                    f"blob entry {short}: payload file {rel!r} does not "
                    "match its manifest digest (torn or tampered blob)",
                )
        for rel in sorted(expected):
            yield Diagnostic(
                "CACHE005",
                Severity.ERROR,
                f"blob entry {short}: manifest covers {rel!r} but the "
                "payload does not contain it",
            )


# ---------------------------------------------------------------------------
# store-side checks
# ---------------------------------------------------------------------------
@checker(
    "store.groundcache",
    codes=("STORE001",),
    requires=("ground_cache_dir",),
    description="ground-cache payload/sidecar pairs are consistent",
)
def check_groundcache(ctx) -> Iterable[Diagnostic]:
    from ..concretize.groundcache import CACHE_FORMAT

    directory = Path(ctx.ground_cache_dir)
    if not directory.is_dir():
        return
    stems = sorted(
        {
            p.name[: -len(p.suffix)]
            for p in directory.glob("ground-*")
            if p.suffix in (".pkl", ".json")
        }
    )
    for stem in stems:
        key = stem[len("ground-"):]
        payload_path = directory / f"{stem}.pkl"
        sidecar_path = directory / f"{stem}.json"
        short = key[:12] or stem
        if not payload_path.exists() or not sidecar_path.exists():
            missing = "payload" if not payload_path.exists() else "sidecar"
            yield Diagnostic(
                "STORE001",
                Severity.ERROR,
                f"ground-cache entry {short} is missing its {missing} "
                "(incomplete pair; the solver will ignore it)",
            )
            continue
        try:
            sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
            if not isinstance(sidecar, dict):
                raise ValueError("sidecar is not an object")
        except (OSError, ValueError) as e:
            yield Diagnostic(
                "STORE001",
                Severity.ERROR,
                f"ground-cache entry {short} has an unreadable sidecar: {e}",
            )
            continue
        if sidecar.get("format") != CACHE_FORMAT:
            yield Diagnostic(
                "STORE001",
                Severity.ERROR,
                f"ground-cache entry {short} has unsupported format "
                f"{sidecar.get('format')!r} (expected {CACHE_FORMAT})",
            )
            continue
        if sidecar.get("key") != key:
            yield Diagnostic(
                "STORE001",
                Severity.ERROR,
                f"ground-cache sidecar {sidecar_path.name} is stamped for "
                "a different solve key",
            )
            continue
        try:
            payload = payload_path.read_bytes()
        except OSError as e:
            yield Diagnostic(
                "STORE001",
                Severity.ERROR,
                f"ground-cache entry {short} has an unreadable payload: {e}",
            )
            continue
        if _sha(payload) != sidecar.get("sha256"):
            yield Diagnostic(
                "STORE001",
                Severity.ERROR,
                f"ground-cache entry {short}: payload bytes do not match "
                "the sidecar's digest",
            )


#: what Builder.prefix_name emits: ``name-version-<16 hex chars>``
_PREFIX_NAME_RE = re.compile(r".+-[0-9a-f]{16}$")


@checker(
    "store.tree",
    codes=("STORE002",),
    requires=("database", "store"),
    description="every install-prefix directory is claimed by a record",
)
def check_tree(ctx) -> Iterable[Diagnostic]:
    root = Path(ctx.store)
    if not root.is_dir():
        return
    claimed = {
        str(Path(record.prefix).resolve()) for record in ctx.database
    }
    for entry in sorted(root.iterdir()):
        if not entry.is_dir():
            continue
        if entry.name == ".staging":
            if any(entry.iterdir()):
                yield Diagnostic(
                    "STORE002",
                    Severity.WARNING,
                    f"leftover staging tree {entry} (an interrupted "
                    "install or splice; safe to delete)",
                )
            continue
        if not _PREFIX_NAME_RE.match(entry.name):
            continue
        if str(entry.resolve()) not in claimed:
            yield Diagnostic(
                "STORE002",
                Severity.WARNING,
                f"install prefix {entry.name} exists in the store but no "
                "database record claims it (orphaned install)",
            )


def _collapse_padding(path: str) -> str:
    """Normalize ``/./``-padded prefixes without touching the disk."""
    while "/./" in path:
        path = path.replace("/./", "/")
    if path.endswith("/."):
        path = path[:-2]
    return path


@checker(
    "store.relocation",
    codes=("STORE003",),
    requires=("database",),
    description="installed binaries embed no unrelocated foreign prefixes",
)
def check_relocation(ctx) -> Iterable[Diagnostic]:
    store_root = (
        str(Path(ctx.store_root).resolve()) if ctx.store_root else None
    )
    # every prefix the database knows (install prefixes + externals) is
    # a legitimate embedding; anything else that does not exist on disk
    # is a build-machine leftover that relocation failed to rewrite
    allowed: Set[str] = set()
    for record in ctx.database:
        allowed.add(_collapse_padding(str(record.prefix)))
        for node in record.spec.traverse():
            if node.external and node.external_prefix:
                allowed.add(_collapse_padding(str(node.external_prefix)))

    def sanctioned(path: str) -> bool:
        collapsed = _collapse_padding(path)
        candidates = {path, collapsed}
        for candidate in candidates:
            for base in allowed:
                if candidate == base or candidate.startswith(base + "/"):
                    return True
            if store_root is not None and (
                candidate == store_root
                or candidate.startswith(store_root + "/")
            ):
                return True
            if Path(candidate).exists():
                return True
        return False

    for record in ctx.database:
        if record.spec.external:
            continue
        prefix = Path(record.prefix)
        reported: Set[str] = set()
        for sub in ("lib", "bin"):
            directory = prefix / sub
            if not directory.is_dir():
                continue
            for path in sorted(directory.iterdir()):
                if not path.is_file():
                    continue
                try:
                    binary = MockBinary.read(path)
                except (BinaryFormatError, OSError):
                    continue
                for embedded in list(binary.rpaths) + list(binary.path_blob):
                    if embedded in reported or sanctioned(embedded):
                        continue
                    reported.add(embedded)
                    yield Diagnostic(
                        "STORE003",
                        Severity.ERROR,
                        f"binary {path.name} of {record.spec.short_str()} "
                        f"embeds unrelocated prefix {embedded!r} (not in "
                        "this store and absent on disk)",
                        package=record.spec.name,
                    )
