"""Structured diagnostics: what an audit run produces.

A :class:`Diagnostic` is one finding with a stable code (``SPL001``), a
severity, a human message, and a source location expressed in package
terms (class + directive index, e.g. ``example.can_splice[1]``) rather
than file/line — package repos are Python classes, and the directive
index is stable across reformatting.

A :class:`Report` is an ordered collection with rendering helpers (human
table and a versioned JSON document for CI consumption).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Severity", "Diagnostic", "Report", "REPORT_SCHEMA_VERSION"]

#: bump when the JSON report shape changes incompatibly
#: (2: explicit ``family`` field on every diagnostic; diagnostics are
#: sorted by (family, code, location) instead of severity-first, so
#: output order is stable across checker additions)
REPORT_SCHEMA_VERSION = 2


class Severity(enum.Enum):
    """How bad a finding is.

    * ``ERROR`` — the declaration/encoding/DAG is wrong: a solve will
      fail, silently drop a choice, or admit an unsafe substitution.
    * ``WARNING`` — almost certainly a mistake (dead directive,
      shadowed splice, dead predicate) but nothing crashes.
    * ``NOTE`` — informational (e.g. a package skipped by the encoder).
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One audit finding with a stable, documented code."""

    code: str
    severity: Severity
    message: str
    #: package name the finding anchors to (None for repo/program level)
    package: Optional[str] = None
    #: directive location within the package, e.g. ``can_splice[1]``
    directive: Optional[str] = None
    #: registry name of the checker that produced this (set by Analyzer)
    checker: str = ""

    @property
    def location(self) -> str:
        """``package.directive[index]`` or ``<program>``/``<dag>``."""
        if self.package and self.directive:
            return f"{self.package}.{self.directive}"
        if self.package:
            return self.package
        return "-"

    @property
    def family(self) -> str:
        """The code's alphabetic prefix: ``SPL001`` → ``SPL``,
        ``CACHE003`` → ``CACHE``."""
        return self.code.rstrip("0123456789")

    def sort_key(self) -> Tuple:
        return (self.family, self.code, self.location, self.message)

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "family": self.family,
            "severity": str(self.severity),
            "message": self.message,
            "package": self.package,
            "directive": self.directive,
            "location": self.location,
            "checker": self.checker,
        }

    def __str__(self) -> str:
        return f"{self.severity}: {self.code}: {self.location}: {self.message}"


@dataclass
class Report:
    """The result of one audit run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: checker registry names that actually ran
    checkers_run: List[str] = field(default_factory=list)
    #: checkers skipped because their required inputs were absent
    checkers_skipped: List[str] = field(default_factory=list)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def finalize(self) -> "Report":
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    # ------------------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def notes(self) -> List[Diagnostic]:
        return self.by_severity(Severity.NOTE)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def clean(self) -> bool:
        """No findings of any severity."""
        return not self.diagnostics

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "note": len(self.notes),
        }

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable table plus a one-line summary."""
        lines: List[str] = []
        if self.diagnostics:
            rows = [
                (str(d.severity), d.code, d.location, d.message)
                for d in self.diagnostics
            ]
            headers = ("SEVERITY", "CODE", "LOCATION", "MESSAGE")
            widths = [
                max(len(headers[i]), *(len(r[i]) for r in rows))
                for i in range(3)
            ]
            fmt = "{:<%d}  {:<%d}  {:<%d}  {}" % tuple(widths)
            lines.append(fmt.format(*headers))
            for row in rows:
                lines.append(fmt.format(*row))
            lines.append("")
        counts = self.counts()
        summary = ", ".join(
            f"{n} {sev}{'s' if n != 1 else ''}"
            for sev, n in counts.items()
            if n
        )
        if not summary:
            summary = "clean"
        lines.append(
            f"audit: {summary} "
            f"({len(self.checkers_run)} checkers run"
            + (
                f", {len(self.checkers_skipped)} skipped"
                if self.checkers_skipped
                else ""
            )
            + ")"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "clean": self.clean,
            "summary": self.counts(),
            "codes": self.codes(),
            "checkers_run": list(self.checkers_run),
            "checkers_skipped": list(self.checkers_skipped),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
