"""ABI splice-soundness checks over declarations and real artifacts.

``can_splice`` declarations are *trusted* by the solver: an unsound one
(the classic ``MPI_Comm`` int-vs-struct layout mismatch) only surfaces
as a load-time failure after install and rewire.  These checkers close
that gap statically, in the spirit of Zakaria et al.'s artifact-level
ABI verification: every declaration is cross-checked against the actual
binaries a cache or store holds, and installed spliced specs are
re-resolved through the :class:`~repro.binary.loader.Loader`.

Codes:

* ABI001 (error) — a declared-compatible (replacement, original) pair
  whose artifacts disagree: the replacement is missing defined symbols
  of the original, or an opaque-type layout differs.
* ABI002 (warning) — a ``can_splice`` declaration no cached artifact
  can ever satisfy: nothing in the cache matches the target constraint,
  so the declaration is dead weight (or a typo).
* ABI003 (note) — an undeclared-but-ABI-identical splice opportunity
  between providers of the same virtual, both present in the cache.
* ABI004 (error) — an installed spliced spec whose rewired
  NEEDED/RPATH entries do not resolve through the loader to the spliced
  dependency's install prefix.

Artifact resolution order per spec: the cache payload's primary library
(``blobs/<hash>/files/lib/...``), then the installed prefix, then —
for index-only mirrors that carry no payloads — the package class's
declared ABI surface (the same data the simulated builds bake into
binaries, so verdicts agree).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..binary.abi import check_abi_compatibility
from ..binary.mockelf import BinaryFormatError, MockBinary
from ..spec import Spec
from ..spec.spec import DEPTYPE_LINK_RUN
from .diagnostics import Diagnostic, Severity
from .registry import checker

__all__ = []


def _loc(index: int) -> str:
    return f"can_splice[{index}]"


def _universe(ctx) -> Dict[str, List[Spec]]:
    """Distinct concrete nodes of the artifact universe, by package name.

    The universe is every node of every spec the cache indexes plus
    everything the install database records, deduplicated by
    ``dag_hash`` — the set of artifacts a splice could actually touch.
    """
    cached = getattr(ctx, "_abi_universe", None)
    if cached is not None:
        return cached
    seen: Set[str] = set()
    by_name: Dict[str, List[Spec]] = {}
    roots: List[Spec] = []
    if ctx.concrete_specs is not None:
        roots.extend(ctx.concrete_specs)
    else:
        if ctx.cache is not None:
            try:
                roots.extend(ctx.cache.all_specs())
            except Exception:
                pass  # index corruption is the storage checkers' finding
        if ctx.database is not None:
            roots.extend(ctx.database.all_specs())
    for root in roots:
        for node in root.traverse():
            if node.name is None:
                continue
            h = node.dag_hash()
            if h in seen:
                continue
            seen.add(h)
            by_name.setdefault(node.name, []).append(node)
    ctx._abi_universe = by_name
    return by_name


def _surface_of(ctx, spec: Spec) -> Optional[MockBinary]:
    """The package class's declared ABI surface as a pseudo-binary."""
    if ctx.repo is None or spec.name not in ctx.repo:
        return None
    pkg_cls = ctx.repo.get(spec.name)
    return MockBinary(
        soname=pkg_cls.libraries()[0] if pkg_cls.libraries() else f"lib{spec.name}.so",
        defined_symbols=list(pkg_cls.exported_symbols(spec)),
        type_layouts=dict(pkg_cls.exported_type_layouts(spec)),
    )


def _artifact_of(ctx, spec: Spec) -> Tuple[Optional[MockBinary], str]:
    """The real primary-library binary of ``spec``, or its repo surface.

    Returns ``(binary, source)`` where source is ``"cache"``,
    ``"store"``, ``"surface"``, or ``""`` when nothing is available.
    Memoized per context (the same mpich artifact anchors many pairs).
    """
    h = spec.dag_hash()
    memo = ctx.artifact_memo
    if h in memo:
        return memo[h]
    libname = f"lib{spec.name}.so"
    if ctx.repo is not None and spec.name in ctx.repo:
        libs = ctx.repo.get(spec.name).libraries()
        if libs:
            libname = libs[0]
    result: Tuple[Optional[MockBinary], str] = (None, "")
    if ctx.cache is not None and ctx.cache.has_payload(h):
        try:
            data = ctx.cache.backend.get(f"blobs/{h}/files/lib/{libname}")
            result = (MockBinary.from_bytes(data), "cache")
        except Exception:
            result = (None, "")
    if result[0] is None and ctx.database is not None:
        record = ctx.database.get(h)
        if record is not None:
            path = Path(record.prefix) / "lib" / libname
            if path.is_file():
                try:
                    result = (MockBinary.read(path), "store")
                except (BinaryFormatError, OSError):
                    result = (None, "")
    if result[0] is None:
        surface = _surface_of(ctx, spec)
        if surface is not None:
            result = (surface, "surface")
    memo[h] = result
    return result


def _content_key(binary: MockBinary) -> Tuple:
    return (
        binary.soname,
        tuple(binary.defined_symbols),
        tuple(sorted(binary.type_layouts.items())),
    )


def _compat(ctx, replacement_bin: MockBinary, original_bin: MockBinary):
    """ABI verdict memoized by artifact *content*: a 4k-spec cache holds
    thousands of rebuilds of a handful of distinct ABI surfaces, and the
    verdict only depends on the surfaces."""
    memo = getattr(ctx, "_abi_compat_memo", None)
    if memo is None:
        memo = ctx._abi_compat_memo = {}
    key = (_content_key(replacement_bin), _content_key(original_bin))
    report = memo.get(key)
    if report is None:
        report = memo[key] = check_abi_compatibility(
            replacement_bin, original_bin
        )
    return report


@checker(
    "abi.declarations",
    codes=("ABI001", "ABI002"),
    requires=("repo", "cache"),
    description="can_splice declarations hold against actual artifacts",
)
def check_declarations(ctx) -> Iterable[Diagnostic]:
    universe = _universe(ctx)
    for name in ctx.repo.names():
        pkg_cls = ctx.repo.get(name)
        for index, decl in enumerate(pkg_cls.can_splice_decls):
            target = decl.target
            originals = [
                node
                for node in universe.get(target.name or "", [])
                if node.satisfies(target)
            ]
            if not originals:
                yield Diagnostic(
                    "ABI002",
                    Severity.WARNING,
                    f"declaration can_splice({str(target)!r}) matches no "
                    "artifact in the cache — nothing can ever be spliced "
                    "out by it",
                    package=name,
                    directive=_loc(index),
                )
                continue
            replacements = [
                node
                for node in universe.get(name, [])
                if decl.when is None or node.satisfies(decl.when)
            ]
            reported: Set[Tuple[str, str, str]] = set()
            for replacement in replacements:
                replacement_bin, _ = _artifact_of(ctx, replacement)
                if replacement_bin is None:
                    continue
                for original in originals:
                    original_bin, _ = _artifact_of(ctx, original)
                    if original_bin is None:
                        continue
                    report = _compat(ctx, replacement_bin, original_bin)
                    if report.compatible:
                        continue
                    # one diagnostic per distinct version pair, not per
                    # hash pair: a 4k-spec cache holds many rebuilds of
                    # the same incompatible configuration
                    key = (
                        str(replacement.version),
                        str(original.version),
                        report.explain(),
                    )
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Diagnostic(
                        "ABI001",
                        Severity.ERROR,
                        f"declared splice {name}@{replacement.version} -> "
                        f"{original.name}@{original.version} is unsound: "
                        f"{report.explain()}",
                        package=name,
                        directive=_loc(index),
                    )


@checker(
    "abi.opportunities",
    codes=("ABI003",),
    requires=("repo", "cache"),
    description="undeclared but ABI-identical splice opportunities",
)
def check_opportunities(ctx) -> Iterable[Diagnostic]:
    from ..binary.discovery import _already_declared

    universe = _universe(ctx)
    for virtual in ctx.repo.virtual_names():
        providers = [p for p in ctx.repo.providers(virtual) if p in universe]
        for replacement_name in providers:
            replacement_cls = ctx.repo.get(replacement_name)
            # newest cached configuration represents the replacement
            replacement = max(
                universe[replacement_name], key=lambda s: s.version
            )
            replacement_bin, _ = _artifact_of(ctx, replacement)
            if replacement_bin is None:
                continue
            for target_name in providers:
                if target_name == replacement_name:
                    continue
                seen_versions: Set[str] = set()
                for target in universe[target_name]:
                    version = str(target.version)
                    if version in seen_versions:
                        continue
                    seen_versions.add(version)
                    target_bin, _ = _artifact_of(ctx, target)
                    if target_bin is None:
                        continue
                    if not _compat(ctx, replacement_bin, target_bin).compatible:
                        continue
                    target_text = f"{target_name}@{version}"
                    if _already_declared(replacement_cls, target_text):
                        continue
                    yield Diagnostic(
                        "ABI003",
                        Severity.NOTE,
                        f"cached artifacts show {replacement_name}"
                        f"@{replacement.version} is ABI-compatible with "
                        f"{target_text} but no can_splice declares it",
                        package=replacement_name,
                    )


@checker(
    "abi.splice_links",
    codes=("ABI004",),
    requires=("database",),
    description="installed spliced specs resolve to the spliced prefixes",
)
def check_splice_links(ctx) -> Iterable[Diagnostic]:
    loader = ctx.loader
    for record in ctx.database:
        spec = record.spec
        if spec.build_spec is None:
            continue  # only rewired nodes carry provenance
        prefix = Path(record.prefix)
        deps = {
            f"lib{dep.name}.so": dep
            for dep in spec.dependencies(DEPTYPE_LINK_RUN)
        }
        binaries: List[Path] = []
        for sub in ("lib", "bin"):
            if (prefix / sub).is_dir():
                binaries.extend(sorted((prefix / sub).iterdir()))
        for path in binaries:
            if not path.is_file():
                continue
            try:
                binary = MockBinary.read(path)
            except (BinaryFormatError, OSError):
                continue
            for soname in binary.needed:
                resolved = loader.resolve(soname, binary.rpaths)
                if resolved is None:
                    yield Diagnostic(
                        "ABI004",
                        Severity.ERROR,
                        f"rewired binary {path.name} of "
                        f"{spec.short_str()} needs {soname} but no RPATH "
                        "entry provides it",
                        package=spec.name,
                    )
                    continue
                dep = deps.get(soname)
                if dep is None:
                    continue
                dep_record = ctx.database.get(dep.dag_hash())
                if dep_record is None:
                    yield Diagnostic(
                        "ABI004",
                        Severity.ERROR,
                        f"spliced dependency {dep.short_str()} of "
                        f"{spec.short_str()} is not in the install "
                        "database",
                        package=spec.name,
                    )
                    continue
                dep_prefix = Path(dep_record.prefix).resolve()
                resolved_path = Path(resolved).resolve()
                if dep_prefix != resolved_path and (
                    dep_prefix not in resolved_path.parents
                ):
                    yield Diagnostic(
                        "ABI004",
                        Severity.ERROR,
                        f"rewired binary {path.name} of {spec.short_str()} "
                        f"resolves {soname} to {resolved}, outside the "
                        f"spliced dependency's prefix {dep_record.prefix}",
                        package=spec.name,
                    )
