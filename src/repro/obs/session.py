"""Session telemetry: one JSONL record per CLI invocation, plus analysis.

A site operator running thousands of ``repro install`` jobs needs a
fleet-level view — cache hit rates, mirror fallbacks, per-phase time,
failure taxonomy — that outlives any single process.  This module is
the persistence tier on top of :mod:`repro.obs`:

* **sink** — when a telemetry directory is configured (the
  ``REPRO_TELEMETRY_DIR`` environment variable or the CLI's
  ``--telemetry-dir`` flag; off otherwise), every CLI invocation
  appends one JSON line to ``<dir>/sessions.jsonl`` describing the
  command, its outcome, wall time, the tracer's per-phase aggregates,
  and a metrics snapshot.  Appends are single atomic ``O_APPEND``
  writes; the file rotates to ``sessions.jsonl.1`` once it crosses
  ``REPRO_TELEMETRY_MAX_BYTES`` (default 4 MiB), so the sink is
  size-capped, not append-forever.
* **analysis** — :func:`read_sessions` / :func:`aggregate_sessions`
  and the renderers behind the ``repro obs report|show|diff`` verbs
  (see :mod:`repro.cli` and docs/observability.md).

Corrupt lines (a crash mid-append, a truncated rotation) are skipped
and counted under ``obs.session_corrupt_lines`` — telemetry must never
take the CLI down.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .metrics import metrics
from .trace import trace

__all__ = [
    "SESSIONS_FILE",
    "DEFAULT_MAX_BYTES",
    "telemetry_dir",
    "phase_delta",
    "metrics_delta",
    "session_record",
    "append_session",
    "read_sessions",
    "resolve_session",
    "aggregate_sessions",
    "report_text",
    "session_text",
    "diff_text",
]

SESSIONS_FILE = "sessions.jsonl"
#: rotation threshold for sessions.jsonl (``REPRO_TELEMETRY_MAX_BYTES``)
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


def telemetry_dir(flag: Optional[str] = None) -> Optional[Path]:
    """Resolve the telemetry directory: CLI flag wins, then the
    ``REPRO_TELEMETRY_DIR`` environment variable; ``None`` = disabled."""
    if flag:
        return Path(flag)
    env = os.environ.get("REPRO_TELEMETRY_DIR", "").strip()
    return Path(env) if env else None


def _max_bytes() -> int:
    raw = os.environ.get("REPRO_TELEMETRY_MAX_BYTES", "")
    try:
        return max(4096, int(raw)) if raw else DEFAULT_MAX_BYTES
    except ValueError:
        return DEFAULT_MAX_BYTES


def phase_delta(
    before: Dict[str, Dict[str, float]], after: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-phase aggregates accumulated *between* two ``phase_stats``
    snapshots — what one invocation did, even when several invocations
    share a process (tests, library embedding).  ``min_s``/``max_s``
    are carried from the later snapshot (extrema don't subtract)."""
    out: Dict[str, Dict[str, float]] = {}
    for name, stats in after.items():
        prev = before.get(name)
        count = stats["count"] - (prev["count"] if prev else 0)
        total = stats["total_s"] - (prev["total_s"] if prev else 0.0)
        if count <= 0:
            continue
        out[name] = {
            "count": count,
            "total_s": total,
            "mean_s": total / count,
            "min_s": stats["min_s"],
            "max_s": stats["max_s"],
        }
    return out


def metrics_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Counters accumulated between two ``metrics.snapshot()`` calls
    (gauges and histograms pass through: they don't subtract)."""
    counters_before = before.get("counters") or {}
    counters = {
        name: value - counters_before.get(name, 0)
        for name, value in (after.get("counters") or {}).items()
        if value - counters_before.get(name, 0) > 0
    }
    return {
        "counters": counters,
        "gauges": after.get("gauges") or {},
        "histograms": after.get("histograms") or {},
    }


#: per-process record sequence, mixed into session ids (GIL-atomic)
_SEQUENCE = itertools.count(1)


def session_record(
    command: str,
    argv: Sequence[str],
    exit_code: int,
    wall_s: float,
    outcome: str,
    error: Optional[str] = None,
    phases: Optional[Dict[str, Any]] = None,
    metrics_snapshot: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the one-line session document for a finished invocation.

    By default the per-phase aggregates and metrics snapshot are read
    from the process-global tracer/registry (what ``--profile`` would
    have printed); the CLI passes :func:`phase_delta` /
    :func:`metrics_delta` results instead so each record covers one
    invocation even in a shared process.
    """
    from . import SCHEMA_VERSION  # late: avoid import cycle
    from .. import __version__

    now = time.time()
    argv = [str(a) for a in argv]
    digest = hashlib.sha256(" ".join(argv).encode()).hexdigest()
    record = {
        "schema_version": SCHEMA_VERSION,
        "kind": "session",
        # the sequence number keeps ids distinct even when two records
        # for the same argv land in the same clock microsecond
        "id": hashlib.sha256(
            f"{now:.6f}:{os.getpid()}:{next(_SEQUENCE)}:{digest}".encode()
        ).hexdigest()[:12],
        "ts": now,
        "iso_time": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "host": platform.node(),
        "pid": os.getpid(),
        "version": __version__,
        "command": command,
        "argv": argv,
        "argv_digest": digest[:12],
        "exit_code": exit_code,
        "outcome": outcome,
        "wall_s": round(wall_s, 6),
        "phases": trace.phase_stats() if phases is None else phases,
        "metrics": metrics.snapshot() if metrics_snapshot is None else metrics_snapshot,
    }
    if error:
        record["error"] = error
    return record


def append_session(
    directory, record: Dict[str, Any], max_bytes: Optional[int] = None
) -> Path:
    """Atomically append one session line, rotating past the size cap.

    The line is written with a single ``O_APPEND`` ``os.write`` (atomic
    offset under POSIX, so concurrent CLI processes sharing one
    telemetry dir interleave whole lines, never halves) and fsynced —
    one fsync per process exit is cheap.  Rotation renames the full
    file to ``sessions.jsonl.1`` (replacing any previous rotation)
    before the append, capping total disk use at ~2× the threshold.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / SESSIONS_FILE
    cap = _max_bytes() if max_bytes is None else max_bytes
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    with trace.span("obs.session_append", bytes=len(line)):
        try:
            if path.stat().st_size + len(line) > cap:
                os.replace(path, path.with_name(SESSIONS_FILE + ".1"))
                metrics.inc("obs.session_rotations")
        except OSError:
            pass  # no file yet: nothing to rotate
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)
    metrics.inc("obs.sessions_written")
    return path


def read_sessions(directory, include_rotated: bool = True) -> List[Dict[str, Any]]:
    """All decodable session records, oldest first (rotated file first)."""
    directory = Path(directory)
    names = [SESSIONS_FILE + ".1", SESSIONS_FILE] if include_rotated else [SESSIONS_FILE]
    sessions: List[Dict[str, Any]] = []
    for name in names:
        path = directory / name
        if not path.is_file():
            continue
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                metrics.inc("obs.session_corrupt_lines")
                continue
            if isinstance(record, dict) and record.get("kind") == "session":
                sessions.append(record)
    return sessions


def resolve_session(
    sessions: Sequence[Dict[str, Any]], key: str
) -> Dict[str, Any]:
    """Find one session by ``last``, an index (``-1``, ``0``, ...), or
    an id prefix.  Raises ``LookupError`` with a one-line reason."""
    if not sessions:
        raise LookupError("no recorded sessions")
    if key == "last":
        return sessions[-1]
    try:
        return sessions[int(key)]
    except ValueError:
        pass
    except IndexError:
        raise LookupError(
            f"session index {key} out of range (have {len(sessions)})"
        )
    matches = [s for s in sessions if str(s.get("id", "")).startswith(key)]
    if not matches:
        raise LookupError(f"no session with id prefix {key!r}")
    if len(matches) > 1:
        ids = ", ".join(str(s["id"]) for s in matches[:5])
        raise LookupError(f"session id prefix {key!r} is ambiguous ({ids})")
    return matches[0]


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (same rule as obs histograms)."""
    if not values:
        return 0.0
    values = sorted(values)
    rank = max(1, -(-len(values) * p // 100))
    return values[int(rank) - 1]


#: counter names whose fleet-wide sums become the report's rate lines
_RATE_SPECS = [
    ("cache_hit_rate", "buildcache.hits", "buildcache.misses"),
    ("mirror_hit_rate", "buildcache.mirror_hits", "buildcache.mirror_misses"),
]


def aggregate_sessions(sessions: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fleet rollup: per-command wall/phase percentiles, outcome
    taxonomy, and summed counters with derived hit/fallback rates."""
    commands: Dict[str, Dict[str, Any]] = {}
    errors: Dict[str, int] = {}
    counters: Dict[str, float] = {}
    for s in sessions:
        cmd = s.get("command") or "?"
        entry = commands.setdefault(
            cmd, {"runs": 0, "outcomes": {}, "walls": [], "phases": {}}
        )
        entry["runs"] += 1
        outcome = s.get("outcome", "?")
        entry["outcomes"][outcome] = entry["outcomes"].get(outcome, 0) + 1
        entry["walls"].append(float(s.get("wall_s", 0.0)))
        for phase, stats in (s.get("phases") or {}).items():
            entry["phases"].setdefault(phase, []).append(
                float(stats.get("total_s", 0.0))
            )
        if outcome not in ("ok",):
            label = s.get("error") or outcome
            errors[label] = errors.get(label, 0) + 1
        for name, value in ((s.get("metrics") or {}).get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
    for entry in commands.values():
        walls = entry.pop("walls")
        entry["wall"] = {
            "p50_s": _percentile(walls, 50),
            "p95_s": _percentile(walls, 95),
            "mean_s": sum(walls) / len(walls) if walls else 0.0,
        }
        entry["phases"] = {
            phase: {
                "runs": len(totals),
                "p50_s": _percentile(totals, 50),
                "p95_s": _percentile(totals, 95),
                "total_s": sum(totals),
            }
            for phase, totals in entry["phases"].items()
        }
    rates: Dict[str, float] = {}
    for label, hit_name, miss_name in _RATE_SPECS:
        hits, misses = counters.get(hit_name, 0), counters.get(miss_name, 0)
        if hits + misses:
            rates[label] = hits / (hits + misses)
    lookups = counters.get("buildcache.mirror_hits", 0) + counters.get(
        "buildcache.mirror_misses", 0
    )
    if lookups:
        rates["mirror_fallback_rate"] = (
            counters.get("buildcache.mirror_fallbacks", 0) / lookups
        )
    return {
        "sessions": len(sessions),
        "commands": commands,
        "errors": errors,
        "counters": counters,
        "rates": rates,
    }


def _table(rows: List[Dict[str, Any]], columns: List[str]) -> str:
    if not rows:
        return "(no rows)"
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = [
        "  ".join(c.ljust(widths[c]) for c in columns),
        "  ".join("-" * widths[c] for c in columns),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


def report_text(sessions: Sequence[Dict[str, Any]], top_phases: int = 12) -> str:
    """The ``repro obs report`` rendering: commands, phases, rates, errors."""
    if not sessions:
        return "(no recorded sessions)"
    agg = aggregate_sessions(sessions)
    parts = [f"== telemetry report: {agg['sessions']} session(s) =="]
    cmd_rows = []
    for cmd in sorted(agg["commands"]):
        entry = agg["commands"][cmd]
        outcomes = entry["outcomes"]
        cmd_rows.append(
            {
                "command": cmd,
                "runs": entry["runs"],
                "ok": outcomes.get("ok", 0),
                "failed": entry["runs"] - outcomes.get("ok", 0),
                "wall_p50_ms": _ms(entry["wall"]["p50_s"]),
                "wall_p95_ms": _ms(entry["wall"]["p95_s"]),
            }
        )
    parts.append(_table(cmd_rows, ["command", "runs", "ok", "failed",
                                   "wall_p50_ms", "wall_p95_ms"]))
    phase_rows = []
    for cmd in sorted(agg["commands"]):
        phases = agg["commands"][cmd]["phases"]
        ranked = sorted(
            phases.items(), key=lambda kv: (-kv[1]["total_s"], kv[0])
        )[:top_phases]
        for phase, stats in ranked:
            phase_rows.append(
                {
                    "command": cmd,
                    "phase": phase,
                    "runs": stats["runs"],
                    "p50_ms": _ms(stats["p50_s"]),
                    "p95_ms": _ms(stats["p95_s"]),
                    "total_s": f"{stats['total_s']:.4f}",
                }
            )
    if phase_rows:
        parts.append("")
        parts.append("== phases (p50/p95 of per-session totals) ==")
        parts.append(_table(phase_rows, ["command", "phase", "runs",
                                         "p50_ms", "p95_ms", "total_s"]))
    if agg["rates"] or agg["counters"]:
        parts.append("")
        parts.append("== cache ==")
        cache_rows = [
            {"metric": name, "value": f"{int(value):d}"}
            for name, value in sorted(agg["counters"].items())
            if name.startswith("buildcache.")
            and name.count(".") == 1  # fold out per-mirror .<label> variants
        ]
        for label in sorted(agg["rates"]):
            cache_rows.append(
                {"metric": label, "value": f"{agg['rates'][label]:.3f}"}
            )
        parts.append(_table(cache_rows, ["metric", "value"]))
    parts.append("")
    parts.append("== errors ==")
    if agg["errors"]:
        error_rows = [
            {"error": name, "count": count}
            for name, count in sorted(
                agg["errors"].items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        parts.append(_table(error_rows, ["error", "count"]))
    else:
        parts.append("(none)")
    return "\n".join(parts)


def session_text(record: Dict[str, Any], top_phases: int = 20) -> str:
    """The ``repro obs show`` rendering of one session record."""
    head = [
        f"session {record.get('id', '?')}  ({record.get('iso_time', '?')})",
        f"  command: {record.get('command', '?')}  "
        f"argv: {' '.join(record.get('argv') or [])}",
        f"  outcome: {record.get('outcome', '?')}  "
        f"exit: {record.get('exit_code', '?')}  "
        f"wall: {_ms(float(record.get('wall_s', 0.0)))} ms  "
        f"host: {record.get('host', '?')}  "
        f"version: {record.get('version', '?')}",
    ]
    if record.get("error"):
        head.append(f"  error: {record['error']}")
    phases = record.get("phases") or {}
    rows = []
    for phase in sorted(
        phases, key=lambda p: (-phases[p].get("total_s", 0.0), p)
    )[:top_phases]:
        stats = phases[phase]
        rows.append(
            {
                "phase": phase,
                "count": stats.get("count", 0),
                "total_ms": _ms(stats.get("total_s", 0.0)),
                "mean_ms": _ms(stats.get("mean_s", 0.0)),
                "max_ms": _ms(stats.get("max_s", 0.0)),
            }
        )
    body = _table(rows, ["phase", "count", "total_ms", "mean_ms", "max_ms"])
    counters = (record.get("metrics") or {}).get("counters") or {}
    tail = [
        f"  {name} = {value}"
        for name, value in sorted(counters.items())
        if name.startswith(("buildcache.", "install", "obs."))
    ]
    parts = head + ["", body]
    if tail:
        parts += ["", "counters:"] + tail
    return "\n".join(parts)


def diff_text(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """The ``repro obs diff`` rendering: per-phase delta table A → B."""
    phases_a = a.get("phases") or {}
    phases_b = b.get("phases") or {}
    names = sorted(set(phases_a) | set(phases_b))
    rows = []
    for name in names:
        ta = float(phases_a.get(name, {}).get("total_s", 0.0))
        tb = float(phases_b.get(name, {}).get("total_s", 0.0))
        delta = tb - ta
        pct = (delta / ta * 100.0) if ta else (float("inf") if tb else 0.0)
        rows.append(
            {
                "_sort": abs(delta),
                "phase": name,
                "a_ms": _ms(ta),
                "b_ms": _ms(tb),
                "delta_ms": f"{delta * 1e3:+.1f}",
                "delta_pct": "n/a" if pct == float("inf") else f"{pct:+.1f}",
            }
        )
    rows.sort(key=lambda r: (-r["_sort"], r["phase"]))
    head = [
        f"A: session {a.get('id', '?')} ({a.get('command', '?')}, "
        f"{a.get('iso_time', '?')})",
        f"B: session {b.get('id', '?')} ({b.get('command', '?')}, "
        f"{b.get('iso_time', '?')})",
        f"wall: {_ms(float(a.get('wall_s', 0.0)))} ms -> "
        f"{_ms(float(b.get('wall_s', 0.0)))} ms",
        "",
    ]
    return "\n".join(
        head + [_table(rows, ["phase", "a_ms", "b_ms", "delta_ms", "delta_pct"])]
    )
