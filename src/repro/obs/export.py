"""Exporters: Chrome trace-event JSON and a plain-text phase table.

The Chrome format is the lingua franca of timeline viewers — load the
emitted file in ``chrome://tracing`` or https://ui.perfetto.dev and the
nested spans (one lane per thread) render as a flame chart.  Each span
becomes one complete event (``"ph": "X"``) with microsecond ``ts``/
``dur`` relative to the tracer's epoch.

The phase table is the terminal-friendly view (`--profile`): one row
per span name aggregated over the whole run, sorted by total time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from .metrics import metrics as _global_metrics
from .trace import Tracer, trace as _global_trace

__all__ = [
    "SCHEMA_VERSION",
    "chrome_trace",
    "write_chrome_trace",
    "phase_table",
    "metrics_table",
]

#: bumped whenever the exported span/metric naming or layout changes;
#: embedded in traces and BENCH_*.json so tooling can tell vintages apart
#: (2: buildcache.shard_*/journal_*/fetch and installer.fetch* names
#: added with the sharded index + pipelined fetch path)
#: (3: analysis.* spans and counters added with the audit subsystem)
#: (4: buildcache.mirror_* spans and per-mirror hit/miss/fallback/retry
#: counters added with storage backends + MirrorGroup)
#: (5: federated index v3 — buildcache.summary_{hits,false_positives,
#: saves,stale,corrupt,enumerations}, index_refresh(es)/
#: shards_invalidated, and the mirror_union_rebuild(s) span/counter
#: added with per-shard summaries + the digest-keyed merged view)
#: (6: persistent telemetry — obs.session_append/crash_dump spans,
#: obs.sessions_written/session_rotations/session_corrupt_lines/
#: crash_reports counters, span ids in retained events, and the
#: session/crash-report JSON documents themselves)
#: (7: environment-scale concretization — the asp.ground_delta span and
#: concretize.batch_roots/ground_cache_{hits,misses,stale}/
#: incremental_resolves counters added with batch solve + the ground
#: program cache)
#: (8: audit families — per-checker analysis.<checker-name> spans for
#: the new abi.*/cache.*/store.* checkers, and per-code
#: analysis.diagnostics.code.<CODE> counters alongside the existing
#: per-severity analysis.diagnostics.<severity> counters)
#: (9: networked cache pair — buildcache.http_request/http_publish
#: spans and buildcache.http_{requests,304s,range_bytes_saved,
#: pool_reuse} client counters plus buildcache.http_server_{requests,
#: 304s,range_requests} server counters added with HTTPBackend +
#: `repro buildcache serve`)
SCHEMA_VERSION = 9


def chrome_trace(tracer: Optional[Tracer] = None) -> Dict:
    """Render the tracer's events as a Chrome trace-event document."""
    tracer = tracer if tracer is not None else _global_trace
    events = []
    for record in tracer.events():
        args = dict(record["args"])
        if record["parent"]:
            args["parent"] = record["parent"]
        events.append(
            {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "X",
                "ts": round(record["ts"], 3),
                "dur": round(record["dur"], 3),
                "pid": 1,
                "tid": record["tid"],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": SCHEMA_VERSION},
    }


def write_chrome_trace(path, tracer: Optional[Tracer] = None) -> Path:
    """Write the Chrome trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1))
    return path


def phase_table(tracer: Optional[Tracer] = None) -> str:
    """Aggregate phase times as an aligned text table (for --profile).

    ``%`` is each phase's share of the sum over all phases; nested
    spans count toward both themselves and their parents, so the
    column is a ranking aid, not a partition of wall-clock.
    """
    tracer = tracer if tracer is not None else _global_trace
    stats = tracer.phase_stats()
    if not stats:
        return "(no spans recorded)"
    grand_total = sum(s["total_s"] for s in stats.values()) or 1.0
    columns = ["phase", "count", "total_s", "mean_ms", "min_ms", "max_ms", "%"]
    rows = []
    # name breaks total_s ties so equal-cost phases render in one
    # deterministic order (repro obs diff and CI diffs depend on it)
    for name in sorted(stats, key=lambda n: (-stats[n]["total_s"], n)):
        s = stats[name]
        rows.append(
            {
                "phase": name,
                "count": s["count"],
                "total_s": f"{s['total_s']:.4f}",
                "mean_ms": f"{s['mean_s'] * 1e3:.2f}",
                "min_ms": f"{s['min_s'] * 1e3:.2f}",
                "max_ms": f"{s['max_s'] * 1e3:.2f}",
                "%": f"{s['total_s'] / grand_total * 100:.1f}",
            }
        )
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns
    }
    lines = [
        "  ".join(c.ljust(widths[c]) for c in columns),
        "  ".join("-" * widths[c] for c in columns),
    ]
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def metrics_table(registry=None) -> str:
    """Counters and gauges as an aligned text table (for --profile).

    Complements :func:`phase_table`: phases say where the time went,
    counters say what happened — cache hits, mirror fallbacks, bytes
    moved.  Histograms are summarized by count/p50/max.
    """
    registry = registry if registry is not None else _global_metrics
    snap = registry.snapshot()
    rows = []
    for name, value in snap["counters"].items():
        rows.append({"metric": name, "kind": "counter", "value": str(value)})
    for name, value in snap["gauges"].items():
        rows.append({"metric": name, "kind": "gauge", "value": f"{value:g}"})
    for name, summary in snap["histograms"].items():
        rows.append(
            {
                "metric": name,
                "kind": "histogram",
                "value": (
                    f"n={summary['count']} p50={summary['p50']:g} "
                    f"max={summary['max']:g}"
                ),
            }
        )
    if not rows:
        return "(no metrics recorded)"
    columns = ["metric", "kind", "value"]
    widths = {c: max(len(c), *(len(r[c]) for r in rows)) for c in columns}
    lines = [
        "  ".join(c.ljust(widths[c]) for c in columns),
        "  ".join("-" * widths[c] for c in columns),
    ]
    # (metric, kind) so a name reused across instrument kinds still
    # renders in one deterministic order
    for row in sorted(rows, key=lambda r: (r["metric"], r["kind"])):
        lines.append("  ".join(row[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)
