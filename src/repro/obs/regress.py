"""Bench regression gate: phase-by-phase comparison of bench JSON files.

``bench_results/*.json`` (written by :mod:`repro.bench.report`) carry
per-row timing columns — ``mean_s`` plus the per-phase ``setup_s`` /
``ground_s`` / ``translate_s`` / ``solve_s`` breakdown — but until now
nothing compared two vintages mechanically.  ``repro obs bench-diff
old.json new.json --budget-pct N`` matches rows by (label, spec) or by
(phase, mirror) for the ms-style benches, computes the percent change
of every shared timing column, and flags anything slower than the
budget; the CLI exits non-zero on any regression, which is what the CI
``obs-regression-gate`` job runs twice (self-vs-self must pass, a
synthetically inflated copy must fail).

Sub-millisecond-scale phases below ``min_seconds`` are compared but
never flagged: at that scale percent changes are timer noise, and a
gate that cries wolf gets deleted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["BenchDiffError", "PhaseDelta", "BenchDiff", "load_bench", "bench_diff"]

#: timing columns are recognized by suffix: seconds or milliseconds
_SECOND_SUFFIX = "_s"
_MS_KEYS = ("ms",)
#: row-identity keys tried in order (figure benches vs. mirror benches)
_KEY_FIELDS = ("label", "spec", "phase", "mirror")
#: below this many seconds a phase is reported but never flagged
DEFAULT_MIN_SECONDS = 1e-3


class BenchDiffError(Exception):
    """A bench file that cannot be compared (missing, unparseable,
    or lacking rows) — a usage problem, not a regression."""


class PhaseDelta:
    """One (row, column) comparison between two bench vintages."""

    __slots__ = ("key", "column", "old_s", "new_s", "pct", "regressed")

    def __init__(self, key: str, column: str, old_s: float, new_s: float,
                 pct: float, regressed: bool):
        self.key = key
        self.column = column
        self.old_s = old_s
        self.new_s = new_s
        self.pct = pct
        self.regressed = regressed

    def row(self) -> Dict[str, str]:
        return {
            "row": self.key,
            "column": self.column,
            "old_s": f"{self.old_s:.4f}",
            "new_s": f"{self.new_s:.4f}",
            "delta_pct": f"{self.pct:+.1f}",
            "verdict": "REGRESSED" if self.regressed else "ok",
        }

    def __repr__(self):
        return f"<PhaseDelta {self.key}:{self.column} {self.pct:+.1f}%>"


class BenchDiff:
    """All deltas for one old-vs-new comparison, plus the verdict."""

    def __init__(self, figure: str, deltas: List[PhaseDelta],
                 only_old: List[str], only_new: List[str],
                 provenance: Tuple[Optional[Dict], Optional[Dict]]):
        self.figure = figure
        self.deltas = deltas
        self.only_old = only_old
        self.only_new = only_new
        self.provenance = provenance

    @property
    def regressions(self) -> List[PhaseDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, show_ok: bool = True) -> str:
        def _label(prov: Optional[Dict]) -> str:
            if not prov:
                return "(no provenance)"
            return (
                f"{prov.get('git_sha') or '?'} @ {prov.get('timestamp') or '?'}"
                f" on {prov.get('hostname') or '?'}"
            )

        old_prov, new_prov = self.provenance
        lines = [
            f"== bench-diff: {self.figure} ==",
            f"old: {_label(old_prov)}",
            f"new: {_label(new_prov)}",
            "",
        ]
        shown = self.deltas if show_ok else self.regressions
        if not shown:
            lines.append("(no comparable timing columns)"
                         if not self.deltas else "(no regressions)")
        else:
            columns = ["row", "column", "old_s", "new_s", "delta_pct", "verdict"]
            rows = [d.row() for d in sorted(
                shown, key=lambda d: (-d.pct if d.regressed else 0, d.key, d.column)
            )]
            widths = {c: max(len(c), *(len(r[c]) for r in rows)) for c in columns}
            lines.append("  ".join(c.ljust(widths[c]) for c in columns))
            lines.append("  ".join("-" * widths[c] for c in columns))
            lines.extend(
                "  ".join(r[c].ljust(widths[c]) for c in columns) for r in rows
            )
        for key, only in (("old", self.only_old), ("new", self.only_new)):
            if only:
                lines.append(f"rows only in {key}: {', '.join(sorted(only)[:8])}")
        n = len(self.regressions)
        lines.append("")
        lines.append(
            f"{n} regression(s)" if n else "no regressions within budget"
        )
        return "\n".join(lines)


def load_bench(path) -> Dict[str, Any]:
    """Read + validate one ``bench_results``-style JSON document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as e:
        raise BenchDiffError(f"cannot read bench file {path}: {e}")
    except json.JSONDecodeError as e:
        raise BenchDiffError(f"bench file {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("rows"), list):
        raise BenchDiffError(f"bench file {path} has no 'rows' list")
    return doc


def _row_key(row: Dict[str, Any]) -> str:
    parts = [str(row[f]) for f in _KEY_FIELDS if f in row]
    return "/".join(parts) if parts else json.dumps(row, sort_keys=True)[:40]


def _timing_columns(row: Dict[str, Any]) -> Dict[str, float]:
    """Timing columns of one row, normalized to seconds."""
    out: Dict[str, float] = {}
    for key, value in row.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key.endswith(_SECOND_SUFFIX) and key not in ("stdev_s",):
            out[key] = float(value)
        elif key in _MS_KEYS:
            out[key] = float(value) / 1e3
    return out


def bench_diff(
    old_doc: Dict[str, Any],
    new_doc: Dict[str, Any],
    budget_pct: float = 25.0,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    columns: Optional[Sequence[str]] = None,
) -> BenchDiff:
    """Compare two bench documents phase-by-phase.

    A (row, column) pair REGRESSES when the new time exceeds the old by
    more than ``budget_pct`` percent *and* the old time is at least
    ``min_seconds`` (noise floor).  Rows present on only one side are
    reported but are not regressions — benches grow legs over time.
    """
    old_rows = {_row_key(r): r for r in old_doc["rows"]}
    new_rows = {_row_key(r): r for r in new_doc["rows"]}
    deltas: List[PhaseDelta] = []
    for key in sorted(set(old_rows) & set(new_rows)):
        old_t = _timing_columns(old_rows[key])
        new_t = _timing_columns(new_rows[key])
        for column in sorted(set(old_t) & set(new_t)):
            if columns and column not in columns:
                continue
            old_s, new_s = old_t[column], new_t[column]
            pct = ((new_s - old_s) / old_s * 100.0) if old_s else 0.0
            regressed = (
                old_s >= min_seconds
                and new_s > old_s * (1.0 + budget_pct / 100.0)
            )
            deltas.append(PhaseDelta(key, column, old_s, new_s, pct, regressed))
    return BenchDiff(
        figure=str(new_doc.get("figure") or old_doc.get("figure") or "?"),
        deltas=deltas,
        only_old=sorted(set(old_rows) - set(new_rows)),
        only_new=sorted(set(new_rows) - set(old_rows)),
        provenance=(old_doc.get("provenance"), new_doc.get("provenance")),
    )
