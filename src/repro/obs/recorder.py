"""Flight recorder: always-on ring buffer of recent spans + crash dumps.

The tracer's aggregates say *how much* time each phase took over a
whole run; the flight recorder says *what just happened* — the last N
finished spans in order, kept in a bounded, lock-protected ring buffer
that is cheap enough to leave enabled everywhere (one deque append of
a small dict per span; the overhead guard in
``tests/obs/test_recorder.py`` pins the cost with the same idiom as
the PR 2 event-retention guard).

When a CLI command dies on an uncaught exception, :func:`crash_report`
assembles a post-hoc diagnosis — traceback, the ring's recent spans,
phase aggregates, and a metrics snapshot — and
:func:`write_crash_report` lands it in the telemetry directory as
``crash-<utc>-<pid>.json`` so "it failed last night" is answerable
without a re-run.  See docs/observability.md.

Knobs:

* ``REPRO_FLIGHT_RECORDER_SPANS`` — ring capacity (default 256;
  ``0`` disables recording entirely).
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback as _traceback
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from .metrics import metrics
from .trace import Span, trace

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "flight_recorder",
    "crash_report",
    "write_crash_report",
]

#: default ring capacity; small enough that the ring's memory is
#: bounded at a few hundred tiny dicts, large enough to cover the
#: final DAG wave before a crash
DEFAULT_CAPACITY = 256


def _capacity_from_env() -> int:
    raw = os.environ.get("REPRO_FLIGHT_RECORDER_SPANS", "")
    try:
        return max(0, int(raw)) if raw else DEFAULT_CAPACITY
    except ValueError:
        return DEFAULT_CAPACITY


class FlightRecorder:
    """Bounded ring of recently finished spans (newest last)."""

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = _capacity_from_env() if capacity is None else capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity or None)
        self._enabled = self.capacity > 0

    def record_span(self, span: Span) -> None:
        """Tap installed via ``trace.set_recorder`` — hot path, keep cheap."""
        if not self._enabled:
            return
        record = {
            "name": span.name,
            "id": span.id,
            "start_s": span.start,
            "duration_s": span.duration,
            "tid": span.tid,
            "parent": span.parent,
        }
        error = span.attributes.get("error")
        if error is not None:
            record["error"] = error
        with self._lock:
            self._ring.append(record)

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The last ``n`` (default: all retained) spans, oldest first."""
        with self._lock:
            records = list(self._ring)
        return records if n is None else records[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __repr__(self):
        return f"<FlightRecorder {len(self)}/{self.capacity}>"


#: the process-global ring the global tracer feeds (wired in
#: repro.obs.__init__ so importing the package is enough)
flight_recorder = FlightRecorder()


def crash_report(
    exc: BaseException,
    command: Optional[str] = None,
    argv: Optional[List[str]] = None,
    recorder: Optional[FlightRecorder] = None,
) -> Dict[str, Any]:
    """Assemble the post-mortem document for one uncaught exception."""
    from . import SCHEMA_VERSION  # late: avoid a cycle at import time

    recorder = recorder if recorder is not None else flight_recorder
    now = time.time()
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "crash_report",
        "ts": now,
        "iso_time": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "pid": os.getpid(),
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "exception": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": _traceback.format_exception(
                type(exc), exc, exc.__traceback__
            ),
        },
        "recent_spans": recorder.recent(),
        "phases": trace.phase_stats(),
        "metrics": metrics.snapshot(),
    }


def write_crash_report(directory, report: Dict[str, Any]) -> Path:
    """Atomically persist ``report`` under ``directory`` and return the path.

    File name is ``crash-<utcstamp>-<pid>.json`` (stamp to the
    microsecond so two crashes in one second don't collide); written
    via temp-file + rename so a reader never sees a torn document.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(report.get("ts", time.time())))
    micros = int((report.get("ts", 0.0) % 1) * 1e6)
    path = directory / f"crash-{stamp}.{micros:06d}-{report.get('pid', os.getpid())}.json"
    with trace.span("obs.crash_dump"):
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(report, indent=1, sort_keys=True))
        os.replace(tmp, path)
    metrics.inc("obs.crash_reports")
    return path
