"""Metrics: counters, gauges, and histograms with percentile summaries.

Instruments are named with the same ``<subsystem>.<operation>``
convention as spans (``buildcache.hits``, ``relocate.prefixes_replaced``)
and live in a process-global :class:`MetricsRegistry`::

    from repro.obs import metrics

    metrics.inc("buildcache.hits")
    metrics.observe("asp.solve_seconds", dt)
    metrics.gauge("install.max_concurrency").set(high_water)

Every instrument is individually locked, so concurrent installer
workers can bump the same counter without a global bottleneck.
``snapshot()`` renders everything to plain dicts for JSON emission
(the bench runner embeds it in ``BENCH_*.json``).
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metrics"]


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (use a gauge)")
        with self._lock:
            self.value += amount

    def __repr__(self):
        return f"<Counter {self.value}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def max(self, value: float) -> None:
        """Keep the high-water mark of all ``max()`` calls."""
        with self._lock:
            if value > self.value:
                self.value = value

    def __repr__(self):
        return f"<Gauge {self.value}>"


class Histogram:
    """Observed samples with nearest-rank percentile summaries."""

    __slots__ = ("_lock", "values")

    def __init__(self):
        self._lock = threading.Lock()
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(value)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) over all samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of [0, 100]")
        with self._lock:
            values = sorted(self.values)
        if not values:
            return 0.0
        rank = max(1, -(-len(values) * p // 100))  # ceil without math
        return values[int(rank) - 1]

    def summary(self) -> Dict[str, float]:
        with self._lock:
            values = sorted(self.values)
        if not values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        total = sum(values)

        def rank(p: float) -> float:
            r = max(1, -(-len(values) * p // 100))
            return values[int(r) - 1]

        return {
            "count": len(values),
            "sum": total,
            "min": values[0],
            "max": values[-1],
            "mean": total / len(values),
            "p50": rank(50),
            "p90": rank(90),
            "p99": rank(99),
        }

    def __repr__(self):
        return f"<Histogram n={len(self.values)}>"


class MetricsRegistry:
    """Get-or-create registry for all instruments (the global ``metrics``)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    # -- conveniences ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """All instruments rendered to plain (JSON-serializable) dicts."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}

    def __repr__(self):
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


#: the process-global registry every instrumented subsystem reports to
metrics = MetricsRegistry()
