"""Thread-safe tracing spans: timed, nested, attribute-carrying.

A span names one operation using the package-wide convention
``<subsystem>.<operation>`` (``asp.ground``, ``buildcache.extract``,
``install.build``, ...) and is used as a context manager::

    from repro.obs import trace

    with trace.span("asp.solve", atoms=n) as sp:
        outcome = optimizer.optimize()
        sp.set(models=outcome.models_seen)

The tracer keeps two tiers of data:

* **aggregates** — per-name count/total/min/max, *always* maintained.
  They cost two clock reads and one locked dict update per span, which
  is why the concretizer can report per-phase times (and the bench
  runner per-phase breakdowns) without any opt-in.
* **events** — full per-span records (timestamp, duration, thread,
  attributes, parent) retained only while :meth:`Tracer.enable` is in
  effect.  These feed the Chrome trace-event exporter.  Disabled by
  default so long-lived library use never grows memory.

Nesting is tracked per thread: entering a span pushes it on the calling
thread's stack, so children record their parent's name and the
parallel installer's workers each get their own lane (``tid``) in the
exported trace.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "PhaseStat", "Tracer", "trace"]


class PhaseStat:
    """Always-on aggregate over every finished span of one name."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def add(self, duration: float) -> None:
        if self.count == 0 or duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration
        self.count += 1
        self.total += duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min,
            "max_s": self.max,
        }

    def __repr__(self):
        return f"<PhaseStat n={self.count} total={self.total:.4f}s>"


class Span:
    """One timed operation; a context manager handed out by the tracer.

    ``duration`` is 0.0 until the span exits; attributes may be added
    mid-flight with :meth:`set` (e.g. an atom count known only after
    grounding).  A span that exits via an exception records the
    exception type under the ``error`` attribute — the timing data of
    failed operations is often the most interesting kind.
    """

    __slots__ = (
        "tracer", "name", "attributes", "tid", "parent",
        "start", "duration", "id", "_t0",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.tid = 0
        self.parent: Optional[str] = None
        self.start = 0.0
        self.duration = 0.0
        self.id = 0
        self._t0 = 0.0

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.tid = threading.get_ident()
        self.id = next(self.tracer._ids)
        self._t0 = time.perf_counter()
        self.start = self._t0 - self.tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.tracer._record(self)
        return False

    def __repr__(self):
        return f"<Span {self.name} {self.duration * 1e3:.3f}ms>"


class Tracer:
    """Process-global span collector (the module-level ``trace``)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._enabled = False
        self._events: List[Dict[str, Any]] = []
        self._aggregates: Dict[str, PhaseStat] = {}
        self._epoch = time.perf_counter()
        # span ids are monotonically increasing per tracer; next() on a
        # count is atomic under the GIL, so no extra lock is needed
        self._ids = itertools.count(1)
        self._on_record: Optional[Callable[[Span], None]] = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Start retaining full span events (for Chrome-trace export)."""
        with self._lock:
            self._enabled = True

    def disable(self) -> None:
        with self._lock:
            self._enabled = False

    def clear(self) -> None:
        """Drop all recorded events and aggregates; reset the epoch."""
        with self._lock:
            self._events = []
            self._aggregates = {}
            self._epoch = time.perf_counter()

    def set_recorder(self, callback: Optional[Callable[[Span], None]]) -> None:
        """Install a callback invoked with every finished span.

        This is the flight recorder's tap (see
        :mod:`repro.obs.recorder`): the callback runs outside the
        tracer's lock and must be cheap — it is on the always-on path.
        ``None`` uninstalls.
        """
        self._on_record = callback

    # -- recording ---------------------------------------------------------
    def span(self, name: str, /, **attributes: Any) -> Span:
        # `name` is positional-only so "name" stays usable as a span
        # attribute (e.g. trace.span("install.build", name=node.name))
        return Span(self, name, attributes)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _record(self, span: Span) -> None:
        with self._lock:
            stat = self._aggregates.get(span.name)
            if stat is None:
                stat = self._aggregates[span.name] = PhaseStat()
            stat.add(span.duration)
            if self._enabled:
                self._events.append(
                    {
                        "name": span.name,
                        "id": span.id,
                        "ts": span.start * 1e6,
                        "dur": span.duration * 1e6,
                        "tid": span.tid,
                        "parent": span.parent,
                        "args": dict(span.attributes),
                    }
                )
        callback = self._on_record
        if callback is not None:
            callback(span)

    # -- reads -------------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """Finished span records (only populated while enabled)."""
        with self._lock:
            return list(self._events)

    def phase_times(self) -> Dict[str, float]:
        """Total seconds per span name (always available)."""
        with self._lock:
            return {name: stat.total for name, stat in self._aggregates.items()}

    def phase_stats(self) -> Dict[str, Dict[str, float]]:
        """Count/total/mean/min/max per span name (always available)."""
        with self._lock:
            return {
                name: stat.as_dict() for name, stat in self._aggregates.items()
            }

    def __repr__(self):
        state = "enabled" if self._enabled else "disabled"
        return f"<Tracer {state} events={len(self._events)}>"


#: the process-global tracer every instrumented subsystem reports to
trace = Tracer()
