"""repro.obs — structured tracing, metrics, and logging for every layer.

The paper's evaluation is a timing story (encoding overhead, grounding
vs. solving, scaling in splice candidates); this package is the shared
substrate those numbers flow through.  Three pieces:

* :mod:`repro.obs.trace` — thread-safe nested spans
  (``with trace.span("asp.solve", atoms=n):``), with always-on
  per-phase aggregates and opt-in full event retention;
* :mod:`repro.obs.metrics` — counters / gauges / histograms
  (``metrics.inc("buildcache.hits")``);
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in
  ``chrome://tracing`` or Perfetto) and a plain-text phase table.

Naming convention for spans and metrics: ``<subsystem>.<operation>``,
e.g. ``concretize.setup``, ``asp.ground``, ``buildcache.extract``,
``install.build``, ``relocate.prefixes_replaced``.

CLI integration: every subcommand accepts ``--trace FILE`` (write a
Chrome trace), ``--profile`` (print the phase table), and ``-v/-vv``
(INFO/DEBUG logging).  See :mod:`repro.cli` and docs/observability.md.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Dict, Optional

from .trace import PhaseStat, Span, Tracer, trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .export import (
    SCHEMA_VERSION,
    chrome_trace,
    metrics_table,
    phase_table,
    write_chrome_trace,
)

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "PhaseStat",
    "Tracer",
    "trace",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "chrome_trace",
    "write_chrome_trace",
    "phase_table",
    "metrics_table",
    "snapshot",
    "reset",
    "configure_logging",
]


def span(name: str, /, **attributes: Any) -> Span:
    """Shorthand for ``trace.span(...)`` on the global tracer."""
    return trace.span(name, **attributes)


def snapshot() -> Dict[str, Any]:
    """One JSON-serializable view of everything observed so far."""
    return {
        "schema_version": SCHEMA_VERSION,
        "phases": trace.phase_stats(),
        "metrics": metrics.snapshot(),
    }


def reset() -> None:
    """Drop all recorded spans and metrics (tests, bench isolation)."""
    trace.clear()
    metrics.reset()


#: marker attribute so repeated configure_logging calls don't stack handlers
_HANDLER_FLAG = "_repro_obs_handler"


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Wire the package's stdlib loggers to stderr.

    ``verbosity`` 0 keeps the default (WARNING — silent in normal
    operation), 1 (``-v``) shows INFO progress lines, 2+ (``-vv``)
    shows DEBUG detail.  Idempotent: re-configuring adjusts the level
    on the existing handler instead of adding another.
    """
    level = (
        logging.WARNING if verbosity <= 0
        else logging.INFO if verbosity == 1
        else logging.DEBUG
    )
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler: Optional[logging.Handler] = None
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_FLAG, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    handler.setLevel(level)
    return logger
