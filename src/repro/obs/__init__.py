"""repro.obs — structured tracing, metrics, and logging for every layer.

The paper's evaluation is a timing story (encoding overhead, grounding
vs. solving, scaling in splice candidates); this package is the shared
substrate those numbers flow through.  Three pieces:

* :mod:`repro.obs.trace` — thread-safe nested spans
  (``with trace.span("asp.solve", atoms=n):``), with always-on
  per-phase aggregates and opt-in full event retention;
* :mod:`repro.obs.metrics` — counters / gauges / histograms
  (``metrics.inc("buildcache.hits")``);
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in
  ``chrome://tracing`` or Perfetto) and a plain-text phase table;
* :mod:`repro.obs.recorder` — always-on flight recorder (bounded ring
  of recent spans) and crash-report dumps for uncaught CLI errors;
* :mod:`repro.obs.session` — persistent per-invocation telemetry
  (``sessions.jsonl``) behind ``REPRO_TELEMETRY_DIR``/``--telemetry-dir``
  plus the aggregation feeding ``repro obs report|show|diff``;
* :mod:`repro.obs.regress` — bench-JSON comparison backing
  ``repro obs bench-diff`` and the CI perf-regression gate.

Naming convention for spans and metrics: ``<subsystem>.<operation>``,
e.g. ``concretize.setup``, ``asp.ground``, ``buildcache.extract``,
``install.build``, ``relocate.prefixes_replaced``.

CLI integration: every subcommand accepts ``--trace FILE`` (write a
Chrome trace), ``--profile`` (print the phase table), and ``-v/-vv``
(INFO/DEBUG logging).  See :mod:`repro.cli` and docs/observability.md.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Dict, Optional

from .trace import PhaseStat, Span, Tracer, trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .export import (
    SCHEMA_VERSION,
    chrome_trace,
    metrics_table,
    phase_table,
    write_chrome_trace,
)
from .recorder import (
    FlightRecorder,
    crash_report,
    flight_recorder,
    write_crash_report,
)

#: the flight recorder is the always-on tier: importing repro.obs is
#: enough to start retaining the last-N spans for crash diagnosis
trace.set_recorder(flight_recorder.record_span)

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "PhaseStat",
    "Tracer",
    "trace",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "chrome_trace",
    "write_chrome_trace",
    "phase_table",
    "metrics_table",
    "FlightRecorder",
    "flight_recorder",
    "crash_report",
    "write_crash_report",
    "snapshot",
    "reset",
    "configure_logging",
    "SpanContextFilter",
]


def span(name: str, /, **attributes: Any) -> Span:
    """Shorthand for ``trace.span(...)`` on the global tracer."""
    return trace.span(name, **attributes)


def snapshot() -> Dict[str, Any]:
    """One JSON-serializable view of everything observed so far."""
    return {
        "schema_version": SCHEMA_VERSION,
        "phases": trace.phase_stats(),
        "metrics": metrics.snapshot(),
    }


def reset() -> None:
    """Drop all recorded spans and metrics (tests, bench isolation)."""
    trace.clear()
    metrics.reset()


#: marker attribute so repeated configure_logging calls don't stack handlers
_HANDLER_FLAG = "_repro_obs_handler"


class SpanContextFilter(logging.Filter):
    """Stamp every log record with the active span (``name#id``).

    This is the log/trace correlation layer: a ``-vv`` DEBUG line
    emitted inside ``buildcache.fetch`` renders as
    ``... [buildcache.fetch#42] ...``, and span 42 is findable in the
    flight recorder's ring, the Chrome trace, and crash reports.
    Records logged outside any span get ``-``.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        current = trace.current_span()
        record.span = f"{current.name}#{current.id}" if current else "-"
        return True


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Wire the package's stdlib loggers to stderr.

    ``verbosity`` 0 keeps the default (WARNING — silent in normal
    operation), 1 (``-v``) shows INFO progress lines, 2+ (``-vv``)
    shows DEBUG detail.  Idempotent: re-configuring adjusts the level
    on the existing handler instead of adding another.  Every record
    carries the active span as ``%(span)s`` (see
    :class:`SpanContextFilter`) so verbose output lines up with traces.
    """
    level = (
        logging.WARNING if verbosity <= 0
        else logging.INFO if verbosity == 1
        else logging.DEBUG
    )
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler: Optional[logging.Handler] = None
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_FLAG, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s [%(span)s]: %(message)s")
        )
        handler.addFilter(SpanContextFilter())
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    handler.setLevel(level)
    return logger
