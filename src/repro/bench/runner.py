"""Benchmark runner: timed concretizations with summary statistics.

The paper times the *concretization* step (not builds) over 30 runs per
configuration (Section 6.1.4).  Pure-Python solving is orders of
magnitude slower than clingo, so run counts and cache sizes are scaled
by environment knobs (see :mod:`repro.bench.scenarios`); all reported
comparisons are relative, which survives the scaling.

Each sample also records the setup/ground/translate/solve breakdown,
read from :mod:`repro.obs`'s always-on phase aggregates (deltas across
the solve), so ``BENCH_*.json`` can attribute a regression to a phase
instead of a single wall-clock total.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..concretize import Concretizer
from ..obs import trace
from ..package.repository import Repository
from ..spec import Spec

__all__ = ["TimingSample", "ConfigTiming", "time_concretization", "percent_increase"]

#: span names whose per-run deltas become the per-phase breakdown
PHASE_SPANS = {
    "setup": "concretize.setup",
    "ground": "asp.ground",
    "translate": "asp.translate",
    "solve": "asp.solve",
}


@dataclass
class TimingSample:
    """One timed solve."""

    seconds: float
    built: int
    spliced: int
    reused: int
    #: per-phase seconds (setup/ground/translate/solve) for this run,
    #: read from the obs tracer's aggregates rather than re-timed
    phases: Dict[str, float] = field(default_factory=dict)


@dataclass
class ConfigTiming:
    """Repeated solves of one (spec, configuration) pair."""

    label: str
    spec: str
    samples: List[TimingSample] = field(default_factory=list)

    @property
    def times(self) -> List[float]:
        return [s.seconds for s in self.samples]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    @property
    def min(self) -> float:
        return min(self.times)

    @property
    def max(self) -> float:
        return max(self.times)

    def phase_mean(self, phase: str) -> float:
        """Mean seconds spent in one phase (0.0 if never sampled)."""
        values = [s.phases[phase] for s in self.samples if phase in s.phases]
        return statistics.fmean(values) if values else 0.0

    def row(self) -> Dict[str, float]:
        row = {
            "label": self.label,
            "spec": self.spec,
            "runs": len(self.samples),
            "mean_s": round(self.mean, 4),
            "median_s": round(self.median, 4),
            "stdev_s": round(self.stdev, 4),
            "min_s": round(self.min, 4),
            "max_s": round(self.max, 4),
            "built": self.samples[-1].built if self.samples else 0,
            "spliced": self.samples[-1].spliced if self.samples else 0,
        }
        for phase in PHASE_SPANS:
            row[f"{phase}_s"] = round(self.phase_mean(phase), 4)
        return row


def time_concretization(
    repo: Repository,
    reusable: Sequence[Spec],
    spec: str,
    runs: int = 3,
    encoding: str = "new",
    splicing: bool = False,
    forbidden: Sequence[str] = (),
    label: str = "",
) -> ConfigTiming:
    """Time ``runs`` fresh concretizations of ``spec``.

    A fresh Concretizer per run, as each paper measurement is a fresh
    ``spack spec`` invocation.
    """
    timing = ConfigTiming(label=label or f"{encoding}{'+splice' if splicing else ''}",
                          spec=spec)
    for _ in range(runs):
        concretizer = Concretizer(
            repo, reusable_specs=reusable, encoding=encoding, splicing=splicing
        )
        before = trace.phase_times()
        start = time.perf_counter()
        result = concretizer.solve([spec], forbidden=forbidden)
        elapsed = time.perf_counter() - start
        after = trace.phase_times()
        phases = {
            phase: after.get(span, 0.0) - before.get(span, 0.0)
            for phase, span in PHASE_SPANS.items()
        }
        timing.samples.append(
            TimingSample(
                seconds=elapsed,
                built=len(result.built),
                spliced=len(result.spliced),
                reused=len(result.reused),
                phases=phases,
            )
        )
    return timing


def percent_increase(baseline: float, measured: float) -> float:
    """(measured - baseline) / baseline, in percent."""
    if baseline == 0:
        return 0.0
    return (measured - baseline) / baseline * 100.0
