"""Benchmark runner: timed concretizations with summary statistics.

The paper times the *concretization* step (not builds) over 30 runs per
configuration (Section 6.1.4).  Pure-Python solving is orders of
magnitude slower than clingo, so run counts and cache sizes are scaled
by environment knobs (see :mod:`repro.bench.scenarios`); all reported
comparisons are relative, which survives the scaling.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..concretize import Concretizer
from ..package.repository import Repository
from ..spec import Spec

__all__ = ["TimingSample", "ConfigTiming", "time_concretization", "percent_increase"]


@dataclass
class TimingSample:
    """One timed solve."""

    seconds: float
    built: int
    spliced: int
    reused: int


@dataclass
class ConfigTiming:
    """Repeated solves of one (spec, configuration) pair."""

    label: str
    spec: str
    samples: List[TimingSample] = field(default_factory=list)

    @property
    def times(self) -> List[float]:
        return [s.seconds for s in self.samples]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    @property
    def min(self) -> float:
        return min(self.times)

    @property
    def max(self) -> float:
        return max(self.times)

    def row(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "spec": self.spec,
            "runs": len(self.samples),
            "mean_s": round(self.mean, 4),
            "median_s": round(self.median, 4),
            "stdev_s": round(self.stdev, 4),
            "min_s": round(self.min, 4),
            "max_s": round(self.max, 4),
            "built": self.samples[-1].built if self.samples else 0,
            "spliced": self.samples[-1].spliced if self.samples else 0,
        }


def time_concretization(
    repo: Repository,
    reusable: Sequence[Spec],
    spec: str,
    runs: int = 3,
    encoding: str = "new",
    splicing: bool = False,
    forbidden: Sequence[str] = (),
    label: str = "",
) -> ConfigTiming:
    """Time ``runs`` fresh concretizations of ``spec``.

    A fresh Concretizer per run, as each paper measurement is a fresh
    ``spack spec`` invocation.
    """
    timing = ConfigTiming(label=label or f"{encoding}{'+splice' if splicing else ''}",
                          spec=spec)
    for _ in range(runs):
        concretizer = Concretizer(
            repo, reusable_specs=reusable, encoding=encoding, splicing=splicing
        )
        start = time.perf_counter()
        result = concretizer.solve([spec], forbidden=forbidden)
        elapsed = time.perf_counter() - start
        timing.samples.append(
            TimingSample(
                seconds=elapsed,
                built=len(result.built),
                spliced=len(result.spliced),
                reused=len(result.reused),
            )
        )
    return timing


def percent_increase(baseline: float, measured: float) -> float:
    """(measured - baseline) / baseline, in percent."""
    if baseline == 0:
        return 0.0
    return (measured - baseline) / baseline * 100.0
