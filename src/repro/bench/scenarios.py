"""Shared experimental setup for the Figure 5/6/7 benchmarks.

Scaling knobs (environment variables), with laptop-friendly defaults:

======================  =======  ==========================================
variable                default  paper value
======================  =======  ==========================================
``REPRO_BENCH_RUNS``    3        30 runs per configuration
``REPRO_PUBLIC_SPECS``  300      ~20,000 specs in the public buildcache
``REPRO_LOCAL_CONFIGS`` 3        1 configuration (~200 specs incl. deps)
``REPRO_BENCH_SPECS``   subset   all 32 RADIUSS roots / all 14 MPI roots
======================  =======  ==========================================

The local/public caches keep the paper's ~2-orders-of-magnitude size
relationship at reduced absolute scale.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from ..buildcache import generate_cache_specs, vary_configurations
from ..package.repository import Repository
from ..repos.radiuss import (
    MPI_DEPENDENT_ROOTS,
    RADIUSS_ROOTS,
    make_radiuss_repo,
)
from ..spec import Spec

__all__ = [
    "bench_runs",
    "bench_roots",
    "mpi_bench_roots",
    "local_cache_specs",
    "public_cache_specs",
    "SPLICE_TARGET_MPICH",
]

#: the cached stacks are built against this mpich (the splice target)
SPLICE_TARGET_MPICH = "3.4.3"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def bench_runs() -> int:
    """Repetitions per configuration (paper: 30)."""
    return _env_int("REPRO_BENCH_RUNS", 3)


def bench_roots() -> List[str]:
    """RADIUSS roots timed by Figure 5 (subset by default for speed)."""
    if os.environ.get("REPRO_BENCH_SPECS") == "all":
        return list(RADIUSS_ROOTS)
    return [
        "raja", "umpire", "chai", "caliper", "py-shroud", "zfp",
        "hypre", "mfem", "conduit", "sundials", "axom", "visit",
    ]


def mpi_bench_roots() -> List[str]:
    """MPI-dependent roots timed by Figures 6 and 7."""
    if os.environ.get("REPRO_BENCH_SPECS") == "all":
        return list(MPI_DEPENDENT_ROOTS)
    return ["hypre", "sundials", "conduit", "mfem", "axom", "glvis", "visit"]


@lru_cache(maxsize=1)
def _shared_repo() -> Repository:
    return make_radiuss_repo()


def bench_repo() -> Repository:
    return _shared_repo()


@lru_cache(maxsize=1)
def local_cache_specs() -> Tuple[Spec, ...]:
    """The local buildcache: the RADIUSS stack built consistently against
    mpich@3.4.3, in a few variant configurations (~150-250 nodes)."""
    repo = _shared_repo()
    configs = _env_int("REPRO_LOCAL_CONFIGS", 3)
    specs: List[Spec] = []
    variations: List[Dict] = [
        {},  # all defaults
        {("hdf5", "cxx"): "True", ("raja", "openmp"): "False"},
        {("conduit", "hdf5"): "False", ("mfem", "zlib"): "False"},
        {("zlib", "optimize"): "False", ("hdf5", "shared"): "False"},
    ]
    from ..buildcache.generate import greedy_concretize

    seen = set()
    for variant_choice in variations[:configs]:
        for root in RADIUSS_ROOTS:
            spec = greedy_concretize(
                repo,
                root,
                versions={"mpich": SPLICE_TARGET_MPICH},
                variants=variant_choice,
                include_build_deps=False,
            )
            h = spec.dag_hash()
            if h not in seen:
                seen.add(h)
                specs.append(spec)
    return tuple(specs)


@lru_cache(maxsize=1)
def public_cache_specs() -> Tuple[Spec, ...]:
    """The public buildcache: many configurations of the stack (scaled
    from the paper's 20k; keep ≳1.5 orders of magnitude above local)."""
    repo = _shared_repo()
    count = _env_int("REPRO_PUBLIC_SPECS", 300)
    specs = list(
        vary_configurations(
            repo,
            RADIUSS_ROOTS,
            count=count,
            seed=42,
            providers=[
                {"mpi": "mpich"},
                {"mpi": "mpich"},
                {"mpi": "openmpi"},
                {"mpi": "mvapich2"},
            ],
        )
    )
    # the public cache also contains the consistently-built local stack
    # (the paper's public cache includes RADIUSS configurations)
    specs.extend(local_cache_specs())
    return tuple(specs)
