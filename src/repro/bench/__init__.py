"""Benchmark harness shared by the benchmarks/ suite."""

from .runner import (
    TimingSample,
    ConfigTiming,
    time_concretization,
    percent_increase,
)
from .report import format_table, aggregate_percent, write_results, FigureReport
from .scenarios import (
    bench_runs,
    bench_roots,
    mpi_bench_roots,
    bench_repo,
    local_cache_specs,
    public_cache_specs,
    SPLICE_TARGET_MPICH,
)

__all__ = [
    "TimingSample",
    "ConfigTiming",
    "time_concretization",
    "percent_increase",
    "format_table",
    "aggregate_percent",
    "write_results",
    "FigureReport",
    "bench_runs",
    "bench_roots",
    "mpi_bench_roots",
    "bench_repo",
    "local_cache_specs",
    "public_cache_specs",
    "SPLICE_TARGET_MPICH",
]
