"""Benchmark reporting: the tables/series the paper's figures plot.

Each figure's bench prints (a) per-spec timing rows matching the
figure's series and (b) the aggregate percentages quoted in the text
(Sections 6.2–6.4), so paper-vs-measured comparison is one diff away.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs import SCHEMA_VERSION
from .runner import ConfigTiming, percent_increase

__all__ = [
    "format_table",
    "aggregate_percent",
    "write_results",
    "provenance",
    "FigureReport",
]

#: git SHA is stable for the life of the process; probe it once
_GIT_SHA: Optional[str] = None
_GIT_SHA_PROBED = False


def _git_sha() -> Optional[str]:
    global _GIT_SHA, _GIT_SHA_PROBED
    if not _GIT_SHA_PROBED:
        _GIT_SHA_PROBED = True
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = None  # not a checkout (tarball install): fine
    return _GIT_SHA


def provenance() -> Dict[str, Optional[str]]:
    """Who/when/where labels embedded in every bench JSON so
    ``repro obs bench-diff`` can say *what* it is comparing.  The
    timestamp is stamped here, by the runner, at save time."""
    from .. import __version__

    return {
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "hostname": platform.node(),
        "repro_version": __version__,
    }


def format_table(rows: Sequence[Dict], columns: Optional[List[str]] = None) -> str:
    """Plain-text table for terminal output."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def aggregate_percent(
    baselines: Sequence[ConfigTiming], measured: Sequence[ConfigTiming]
) -> float:
    """Mean per-spec percent increase (the aggregation the paper quotes:
    'across all specs ... we see an X percent increase')."""
    by_spec = {t.spec: t for t in baselines}
    increases = [
        percent_increase(by_spec[t.spec].mean, t.mean)
        for t in measured
        if t.spec in by_spec
    ]
    return sum(increases) / len(increases) if increases else 0.0


class FigureReport:
    """Collects rows + headline numbers for one figure, and persists
    them as JSON next to the bench outputs (consumed by EXPERIMENTS.md
    updates and regression checks)."""

    def __init__(self, figure: str, title: str):
        self.figure = figure
        self.title = title
        self.rows: List[Dict] = []
        self.headlines: Dict[str, float] = {}

    def add_timing(self, timing: ConfigTiming) -> None:
        self.rows.append(timing.row())

    def headline(self, key: str, value: float) -> None:
        self.headlines[key] = round(value, 2)

    def render(self) -> str:
        parts = [f"== {self.figure}: {self.title} ==", format_table(self.rows)]
        for key, value in self.headlines.items():
            parts.append(f"{key}: {value}")
        return "\n".join(parts)

    def save(self, directory: Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.figure}.json"
        path.write_text(
            json.dumps(
                {
                    "figure": self.figure,
                    "title": self.title,
                    "obs_schema": SCHEMA_VERSION,
                    "provenance": provenance(),
                    "rows": self.rows,
                    "headlines": self.headlines,
                },
                indent=1,
                sort_keys=True,
            )
        )
        return path


def write_results(report: FigureReport, directory: str = "bench_results") -> None:
    print(report.render())
    report.save(Path(directory))
