"""Command-line interface — a miniature ``spack``.

Run as ``python -m repro <command>``::

    python -m repro spec "hdf5 ^mpich"            # concretize + print tree
    python -m repro spec --splice "hdf5 ^mpiabi"  # allow spliced solutions
    python -m repro install --store /tmp/store "hdf5"
    python -m repro find --store /tmp/store       # list installed specs
    python -m repro buildcache create --store /tmp/store --cache /tmp/bc hdf5
    python -m repro suggest-splices               # ABI discovery report

Packages come from the built-in RADIUSS repository by default
(``--repo mock`` switches to the paper's Figure-1 toy packages).
A ``--cache DIR`` buildcache and the ``--store DIR`` install database
both contribute reusable specs to the concretizer.

Multiple binary mirrors (the local + public two-cache setup of the
paper's Section 6) compose with ``--mirror [NAME=]DIR[:ro]``
(repeatable; ``:ro`` marks a mirror read-only) or ``--mirrors-file
FILE`` (one mirror per line, ``#`` comments).  A mirror may also be an
``http://host:port/path`` URL pointing at a ``repro buildcache serve``
process — the networked cache pair.  Mirrors are consulted in order,
first-hit-wins, with ``--cache`` as the primary write target; see
docs/buildcache.md.

Observability flags (every subcommand, see docs/observability.md):

* ``--trace FILE`` — write a Chrome trace-event JSON of all spans
  (open in ``chrome://tracing`` or https://ui.perfetto.dev);
* ``--profile``    — print a per-phase time table after the command;
* ``-v`` / ``-vv`` — INFO / DEBUG logging to stderr;
* ``--telemetry-dir DIR`` (or ``REPRO_TELEMETRY_DIR``) — append one
  session record per invocation to ``DIR/sessions.jsonl`` and land
  crash reports there; analyzed with the ``repro obs`` verbs::

      python -m repro obs report               # fleet rollup
      python -m repro obs show last            # one session
      python -m repro obs diff -2 last         # per-phase delta
      python -m repro obs bench-diff a.json b.json --budget-pct 20
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import traceback
from pathlib import Path
from typing import List, Optional

from .binary.discovery import discover_provider_splices
from .buildcache import BuildCache, BuildCacheError, LocalFSBackend, MirrorGroup
from .concretize import Concretizer, UnsatisfiableError
from .installer import InstallError, Installer
from .obs import (
    configure_logging,
    crash_report,
    metrics_table,
    phase_table,
    trace,
    write_chrome_trace,
    write_crash_report,
)
from .obs.regress import BenchDiffError, bench_diff, load_bench
from .obs.session import (
    aggregate_sessions,
    append_session,
    diff_text,
    metrics_delta,
    phase_delta,
    read_sessions,
    report_text,
    resolve_session,
    session_record,
    session_text,
    telemetry_dir,
)
from .package.repository import Repository
from .repos.mock import make_mock_repo
from .repos.radiuss import make_radiuss_repo
from .spec import tree
from .spec.diff import diff_specs

__all__ = ["main"]


class CLIError(Exception):
    """A user-input problem: reported as one line on stderr, exit 2 —
    never a traceback (tracebacks are for bugs, not for a typo'd
    mirror path)."""


def _load_repo(name: str) -> Repository:
    if name == "mock":
        return make_mock_repo()
    if name == "radiuss":
        return make_radiuss_repo()
    path = Path(name)
    if path.is_dir():
        from .package.repo_dir import load_repository

        return load_repository(path)
    raise SystemExit(
        f"unknown repository {name!r} (use 'radiuss', 'mock', or a directory)"
    )


def _parse_mirror(entry: str):
    """``[NAME=]PATH-or-URL[:ro]`` -> ``(name_or_None, path, read_only)``.

    Parsing is scheme-aware: a ``scheme://`` before the first ``=``
    means the whole entry is a URL, so ``http://h/p?a=b`` keeps its
    query string instead of being split into a bogus label (and only a
    *trailing* ``:ro`` is a read-only marker — ``http://h:8080/p`` keeps
    its port).  Empty labels (``NAME=`` / ``=path``) are user mistakes,
    rejected with the exit-2 :class:`CLIError` taxonomy rather than
    colliding later in the duplicate-label check.
    """
    original = entry.strip()
    entry = original
    name = None
    eq = entry.find("=")
    scheme = entry.find("://")
    if eq != -1 and (scheme == -1 or eq < scheme):
        name, entry = entry[:eq].strip(), entry[eq + 1:].strip()
        if not name:
            raise CLIError(
                f"invalid mirror entry {original!r}: empty label before '='"
            )
    read_only = False
    if entry.endswith(":ro"):
        read_only = True
        entry = entry[: -len(":ro")].strip()
    if not entry:
        raise CLIError(
            f"invalid mirror entry {original!r}: no path or URL"
        )
    return name, entry, read_only


def _is_url(path: str) -> bool:
    return path.startswith(("http://", "https://"))


def _mirror_label(path: str) -> str:
    """A human label for an unnamed mirror: directory basename for
    paths, ``host:port[/last-segment]`` for URLs."""
    if _is_url(path):
        from urllib.parse import urlsplit

        parsed = urlsplit(path)
        tail = parsed.path.strip("/").rsplit("/", 1)[-1]
        return tail or parsed.netloc or path
    return Path(path).name or str(path)


def _open_caches(args) -> list:
    """Open ``--cache`` plus every ``--mirror``/``--mirrors-file`` entry.

    One source -> ``[BuildCache]``; several -> a single-element list
    holding a :class:`MirrorGroup` (first entry = primary write
    target), so the installer and concretizer see one cache object
    either way.

    User mistakes — an unreadable mirrors file, two mirrors explicitly
    given the same name, a corrupt index manifest — raise
    :class:`CLIError` (one line, exit 2).  Labels *derived* from
    directory basenames are uniquified with ``-2``-style suffixes
    instead: ``--mirror a/cache --mirror b/cache`` is legitimate.
    """
    entries = []
    if getattr(args, "cache", None):
        entries.append((None, str(args.cache), False))
    for raw in getattr(args, "mirror", None) or []:
        entries.append(_parse_mirror(raw))
    mirrors_file = getattr(args, "mirrors_file", None)
    if mirrors_file:
        try:
            listing = Path(mirrors_file).read_text()
        except OSError as e:
            raise CLIError(f"cannot read mirrors file {mirrors_file}: {e}")
        for line in listing.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(_parse_mirror(line))
    caches = []
    used: set = set()
    explicit: set = set()
    for name, path, read_only in entries:
        if name is not None:
            if name in explicit:
                raise CLIError(
                    f"duplicate mirror label {name!r} (every NAME= label "
                    "must be unique)"
                )
            explicit.add(name)
        label = name or _mirror_label(path)
        base, n = label, 2
        while label in used:  # keep MirrorGroup labels unique
            label, n = f"{base}-{n}", n + 1
        used.add(label)
        if _is_url(path):
            from .buildcache.httpbackend import HTTPBackend

            try:
                backend = HTTPBackend(path, name=label, writable=not read_only)
            except BuildCacheError as e:
                raise CLIError(f"invalid mirror URL {path}: {e}")
        else:
            backend = LocalFSBackend(
                Path(path), name=label, writable=not read_only
            )
        try:
            caches.append(BuildCache(backend=backend, name=label))
        except BuildCacheError as e:
            raise CLIError(f"cannot open mirror {label} at {path}: {e}")
    if len(caches) > 1:
        return [MirrorGroup(caches)]
    return caches


def _reusable(args, caches=None) -> list:
    specs = []
    if caches is None:
        caches = _open_caches(args)
    for cache in caches:
        specs.extend(cache.all_specs())
    if getattr(args, "store", None):
        store = Path(args.store)
        if (store / "db.json").exists():
            from .installer.database import Database

            specs.extend(Database(store).all_specs())
    return specs


def _reuse_digest(args, caches):
    """O(1) digest of the reuse set, when one cache is its only source.

    The ground-program cache keys on the reuse set; a single
    ``BuildCache`` can answer in O(1) via its index manifest digest.
    When an install store also contributes reusable specs (or several
    mirrors do), return None so the concretizer falls back to hashing
    the spec list itself — slower but always correct.
    """
    if len(caches) != 1 or not hasattr(caches[0], "content_digest"):
        return None
    if getattr(args, "store", None):
        store = Path(args.store)
        if (store / "db.json").exists():
            return None
    return caches[0].content_digest()


def cmd_spec(args) -> int:
    """`repro spec`: concretize and print trees, builds, and splices."""
    repo = _load_repo(args.repo)
    caches = _open_caches(args)
    concretizer = Concretizer(
        repo,
        reusable_specs=_reusable(args, caches),
        splicing=args.splice,
        reuse_digest=_reuse_digest(args, caches),
    )
    try:
        result = concretizer.solve_all(args.specs, forbidden=args.forbid or [])
    except UnsatisfiableError as e:
        print(f"error: {e}", file=sys.stderr)
        diagnosis = concretizer.explain(args.specs, forbidden=args.forbid or [])
        print(diagnosis.explain(), file=sys.stderr)
        return 1
    for root in result.roots:
        print(tree(root))
        print()
    built = sorted(s.name for s in result.built)
    spliced = sorted(s.name for s in result.spliced)
    print(f"to build: {built or 'nothing'}")
    if spliced:
        print(f"to splice (relink, no rebuild): {spliced}")
    if args.time:
        print(f"concretization time: {result.stats['total_time']:.3f}s")
    return 0


def cmd_install(args) -> int:
    """`repro install`: concretize then build/extract/rewire into a store."""
    repo = _load_repo(args.repo)
    caches = _open_caches(args)
    concretizer = Concretizer(
        repo,
        reusable_specs=_reusable(args, caches),
        splicing=args.splice,
        reuse_digest=_reuse_digest(args, caches),
    )
    try:
        result = concretizer.solve_all(args.specs, forbidden=args.forbid or [])
    except UnsatisfiableError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    installer = Installer(
        Path(args.store), repo, caches=caches, fetch_jobs=args.fetch_jobs
    )
    for root in result.roots:
        report = installer.install(root)
        print(f"{root.name}: {report.summary()}")
        print(f"  prefix: {installer.database.prefix_of(root)}")
    return 0


def cmd_find(args) -> int:
    """`repro find`: list installed specs (explicit ones starred)."""
    from .installer.database import Database

    db = Database(Path(args.store))
    if not len(db):
        print("no installed specs")
        return 0
    for record in db:
        spec = record.spec
        marker = " [spliced]" if spec.spliced else ""
        explicit = "*" if record.explicit else " "
        print(f"{explicit} {spec.dag_hash(7)}  {spec.short_str()}{marker}")
    return 0


def cmd_buildcache(args) -> int:
    """`repro buildcache create|list|serve`: push/show/serve a cache."""
    if args.action == "serve":
        return _cmd_buildcache_serve(args)
    if not args.cache:
        raise CLIError(f"buildcache {args.action} needs --cache DIR")
    repo = _load_repo(args.repo)
    cache = BuildCache(Path(args.cache))
    if args.action == "list":
        for spec in cache.all_specs():
            print(f"{spec.dag_hash(7)}  {spec.short_str()}")
        return 0
    # create: push installed specs matching the given names
    installer = Installer(Path(args.store), repo)
    pushed = 0
    for name in args.specs:
        for record in installer.database.query(name):
            installer.push_to_cache(cache, record.spec)
            pushed += 1
    cache.save_index()
    print(f"pushed {pushed} spec(s); cache now holds {len(cache)}")
    return 0


def _cmd_buildcache_serve(args) -> int:
    """`repro buildcache serve DIR`: run the HTTP cache server until
    interrupted (the networked half of an ``http://`` mirror)."""
    from .buildcache.server import BuildCacheHTTPServer

    directory = (args.specs[0] if args.specs else None) or args.cache
    if not directory:
        raise CLIError("buildcache serve needs a cache directory "
                       "(repro buildcache serve DIR)")
    path = Path(directory)
    if not path.is_dir():
        raise CLIError(f"buildcache {path} does not exist")
    try:
        server = BuildCacheHTTPServer(
            path, host=args.host, port=args.port, read_only=args.read_only
        )
    except OSError as e:
        raise CLIError(f"cannot bind {args.host}:{args.port}: {e}")
    mode = " (read-only)" if args.read_only else ""
    print(f"serving buildcache {path} at {server.url}{mode}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def cmd_uninstall(args) -> int:
    """`repro uninstall`: remove installs (refuses with dependents)."""
    from .installer.database import Database

    repo = _load_repo(args.repo)
    installer = Installer(Path(args.store), repo)
    matches = installer.database.query(args.spec)
    if not matches:
        print(f"error: {args.spec} is not installed", file=sys.stderr)
        return 1
    try:
        for record in matches:
            installer.uninstall(record.spec, force=args.force)
            print(f"uninstalled {record.spec.short_str()}")
    except InstallError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


def cmd_gc(args) -> int:
    """`repro gc`: drop installs unreachable from explicit roots."""
    repo = _load_repo(args.repo)
    installer = Installer(Path(args.store), repo)
    removed = installer.gc()
    if removed:
        print(f"removed: {', '.join(removed)}")
    else:
        print("nothing to remove")
    return 0


def cmd_verify(args) -> int:
    """`repro verify`: loader-check every installed binary."""
    repo = _load_repo(args.repo)
    installer = Installer(Path(args.store), repo)
    problems = installer.verify()
    if not problems:
        print("store is healthy")
        return 0
    for name, issues in sorted(problems.items()):
        print(f"{name}:")
        for issue in issues:
            print(f"  {issue}")
    return 1


def cmd_env(args) -> int:
    """`repro env create|add|concretize|install|status`."""
    from .environment import Environment, EnvironmentError

    repo = _load_repo(args.repo)
    path = Path(args.env)
    if args.action == "create":
        env = Environment(path, repo)
        for spec in args.specs:
            env.add(spec)
        env.splicing = args.splice
        env.write()
        print(f"created environment at {path} with {len(env.roots)} root(s)")
        return 0
    try:
        env = Environment.read(path, repo)
    except EnvironmentError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if args.action == "add":
        for spec in args.specs:
            env.add(spec)
        env.write()
        print(f"roots: {env.roots}")
        return 0
    if args.action == "concretize":
        env.concretize(reusable_specs=_reusable(args, _open_caches(args)))
        env.write()
        for root in env.concrete_roots:
            print(tree(root))
            print()
        return 0
    if args.action == "install":
        caches = _open_caches(args)
        if not env.concretized:
            env.concretize(reusable_specs=_reusable(args, caches))
            env.write()
        installer = Installer(
            Path(args.store), repo, caches=caches,
            fetch_jobs=getattr(args, "fetch_jobs", 1),
        )
        report = installer.install_all(env.concrete_roots, jobs=args.jobs)
        print(report.summary())
        return 0
    if args.action == "status":
        state = "concretized" if env.concretized else "abstract"
        print(f"{len(env.roots)} root(s), {state}, splicing={'on' if env.splicing else 'off'}")
        for root in env.roots:
            print(f"  {root}")
        return 0
    raise SystemExit(f"unknown env action {args.action!r}")


def cmd_diff(args) -> int:
    """`repro diff`: concretize two specs and show what differs."""
    repo = _load_repo(args.repo)
    concretizer = Concretizer(repo, reusable_specs=_reusable(args))
    try:
        left = concretizer.solve([args.left]).roots[0]
        right = concretizer.solve([args.right]).roots[0]
    except UnsatisfiableError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    print(diff_specs(left, right).summary())
    return 0


def cmd_audit(args) -> int:
    """`repro audit`: static-analysis of the repo, encoding, and stores."""
    from .analysis import AnalysisError, Analyzer, AuditContext, all_checkers

    if args.list_checks:
        for chk in all_checkers():
            codes = ",".join(chk.codes)
            print(f"{chk.name:<26} {codes:<24} {chk.description}")
        return 0
    repo = _load_repo(args.repo)
    concrete: list = []
    cache = None
    database = None
    if args.cache:
        cache_path = Path(args.cache)
        if not cache_path.is_dir():
            raise CLIError(f"buildcache {cache_path} does not exist")
        try:
            cache = BuildCache(cache_path)
        except BuildCacheError as e:
            raise CLIError(f"cannot open buildcache {cache_path}: {e}")
        try:
            concrete.extend(cache.all_specs())
        except BuildCacheError:
            # a partially-unreadable index: the cache.* checkers report
            # the corruption as diagnostics instead of aborting the run
            pass
    if args.store:
        store = Path(args.store)
        if not store.is_dir():
            raise CLIError(f"install store {store} does not exist")
        if (store / "db.json").exists():
            from .installer.database import Database, DatabaseError

            try:
                database = Database(store)
                concrete.extend(database.all_specs())
            except (DatabaseError, ValueError) as e:
                raise CLIError(f"cannot open install database in {store}: {e}")
    ground_cache_dir = args.ground_cache or os.environ.get(
        "REPRO_GROUND_CACHE_DIR"
    )
    if ground_cache_dir and not Path(ground_cache_dir).is_dir():
        raise CLIError(f"ground cache {ground_cache_dir} does not exist")
    auditing_specs = bool(args.cache or args.store)
    context = AuditContext(
        repo=repo,
        concrete_specs=concrete if auditing_specs else None,
        reusable_specs=concrete if auditing_specs else None,
        cache=cache,
        database=database,
        store_root=Path(args.store) if args.store else None,
        ground_cache_dir=ground_cache_dir,
    )
    try:
        analyzer = Analyzer(args.checks)
    except AnalysisError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    report = analyzer.run(context)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    failing = report.has_errors or (args.strict and report.warnings)
    return 1 if failing else 0


def _require_telemetry_dir(args) -> Path:
    directory = telemetry_dir(getattr(args, "telemetry_dir", None))
    if directory is None:
        raise CLIError(
            "no telemetry directory configured (set REPRO_TELEMETRY_DIR "
            "or pass --telemetry-dir DIR)"
        )
    return directory


def cmd_obs(args) -> int:
    """`repro obs report|show|diff|bench-diff`: the telemetry verbs."""
    action = args.obs_action
    if action == "bench-diff":
        try:
            new_doc = load_bench(args.new)
            if args.old is not None:
                old_doc = load_bench(args.old)
            elif args.baseline_dir:
                # resolve the baseline by figure name: a CI job can point
                # --baseline-dir at a checked-out bench_results/ and
                # compare whatever figure the candidate file claims to be
                figure = str(new_doc.get("figure") or "")
                if not figure:
                    raise CLIError(
                        f"{args.new} has no 'figure' name; pass the "
                        "baseline file explicitly"
                    )
                old_doc = load_bench(Path(args.baseline_dir) / f"{figure}.json")
            else:
                raise CLIError(
                    "bench-diff needs a baseline: pass OLD or --baseline-dir DIR"
                )
            diff = bench_diff(
                old_doc,
                new_doc,
                budget_pct=args.budget_pct,
                min_seconds=args.min_seconds,
                columns=args.columns,
            )
        except BenchDiffError as e:
            raise CLIError(str(e))
        print(diff.render())
        return 0 if diff.ok else 1
    sessions = read_sessions(_require_telemetry_dir(args))
    if action == "report":
        if args.json:
            print(json.dumps(aggregate_sessions(sessions), indent=1, sort_keys=True))
        else:
            print(report_text(sessions))
        return 0
    try:
        if action == "show":
            print(session_text(resolve_session(sessions, args.session)))
            return 0
        if action == "diff":
            print(
                diff_text(
                    resolve_session(sessions, args.a),
                    resolve_session(sessions, args.b),
                )
            )
            return 0
    except LookupError as e:
        raise CLIError(str(e))
    raise SystemExit(f"unknown obs action {action!r}")


def cmd_suggest_splices(args) -> int:
    """`repro suggest-splices`: the automatic ABI-discovery report."""
    repo = _load_repo(args.repo)
    suggestions = discover_provider_splices(
        repo, args.virtual, include_existing=args.all
    )
    if not suggestions:
        print("no new ABI-compatible splices discovered")
        return 0
    for s in sorted(suggestions, key=lambda s: (s.splicer, s.target)):
        print(f"{s.splicer}: {s.directive_source()}")
        print(f"    # {s.reason}")
    return 0


def _add_mirror_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mirror", action="append", metavar="[NAME=]DIR|URL[:ro]",
        help="additional binary mirror — a directory or an "
             "http(s):// buildcache server — consulted after --cache "
             "in first-hit-wins order (repeatable; ':ro' = read-only)",
    )
    parser.add_argument(
        "--mirrors-file", metavar="FILE",
        help="file listing one mirror per line (same syntax as --mirror; "
             "blank lines and # comments ignored)",
    )


def _obs_parent() -> argparse.ArgumentParser:
    """Observability flags shared by every subcommand.

    Defaults are SUPPRESS so a flag given *before* the subcommand (on
    the top-level parser) is not clobbered when the subparser runs.
    """
    parent = argparse.ArgumentParser(add_help=False)
    _add_obs_arguments(parent, argparse.SUPPRESS)
    return parent


def _add_obs_arguments(parser: argparse.ArgumentParser, default) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=default,
        help="write a Chrome trace-event JSON of all spans to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        default=False if default is None else default,
        help="print per-phase time and metrics tables when the command "
             "finishes",
    )
    parser.add_argument(
        "-v", "--verbose", action="count",
        default=0 if default is None else default,
        help="-v shows INFO progress, -vv shows DEBUG detail",
    )
    parser.add_argument(
        "--telemetry-dir", metavar="DIR", default=default,
        help="append one session record per invocation to DIR/sessions.jsonl "
             "and land crash reports there (REPRO_TELEMETRY_DIR does the "
             "same; unset = telemetry off)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="miniature Spack with splicing (SC'25 reproduction)",
    )
    parser.add_argument(
        "--repo", default="radiuss", help="package repository (radiuss|mock)"
    )
    _add_obs_arguments(parser, None)
    obs = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    p_spec = sub.add_parser("spec", help="concretize specs and print the DAG",
                            parents=[obs])
    p_spec.add_argument("specs", nargs="+")
    p_spec.add_argument("--splice", action="store_true", help="enable splicing")
    p_spec.add_argument("--forbid", action="append", help="forbid a package")
    p_spec.add_argument("--cache", help="buildcache directory to reuse from")
    _add_mirror_arguments(p_spec)
    p_spec.add_argument("--store", help="install store to reuse from")
    p_spec.add_argument("--time", action="store_true", help="print solve time")
    p_spec.set_defaults(func=cmd_spec)

    p_install = sub.add_parser("install", help="concretize and install",
                               parents=[obs])
    p_install.add_argument("specs", nargs="+")
    p_install.add_argument("--store", required=True, help="install store root")
    p_install.add_argument("--cache", help="buildcache to extract from")
    _add_mirror_arguments(p_install)
    p_install.add_argument("--splice", action="store_true")
    p_install.add_argument("--forbid", action="append")
    p_install.add_argument(
        "--fetch-jobs", type=int, default=1, metavar="N",
        help="pipeline cache fetch/verify/extract with N workers "
             "(overlaps independent DAG nodes; default 1 = serial)",
    )
    p_install.set_defaults(func=cmd_install)

    p_find = sub.add_parser("find", help="list installed specs", parents=[obs])
    p_find.add_argument("--store", required=True)
    p_find.set_defaults(func=cmd_find)

    p_cache = sub.add_parser("buildcache", help="manage a binary cache",
                             parents=[obs])
    p_cache.add_argument("action", choices=["create", "list", "serve"])
    p_cache.add_argument(
        "specs", nargs="*", metavar="SPEC|DIR",
        help="specs to push (create) or the cache directory to serve",
    )
    p_cache.add_argument("--cache", help="cache directory (create/list)")
    p_cache.add_argument("--store", help="store to read binaries from")
    p_cache.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for serve (default 127.0.0.1)",
    )
    p_cache.add_argument(
        "--port", type=int, default=8080,
        help="port for serve (default 8080; 0 = ephemeral)",
    )
    p_cache.add_argument(
        "--read-only", action="store_true",
        help="serve rejects every mutating request with 403",
    )
    p_cache.set_defaults(func=cmd_buildcache)

    p_uninstall = sub.add_parser("uninstall", help="remove an installed spec",
                                 parents=[obs])
    p_uninstall.add_argument("spec", help="package name to uninstall")
    p_uninstall.add_argument("--store", required=True)
    p_uninstall.add_argument("--force", action="store_true",
                             help="remove even with installed dependents")
    p_uninstall.set_defaults(func=cmd_uninstall)

    p_gc = sub.add_parser("gc", help="remove installs unreachable from roots",
                          parents=[obs])
    p_gc.add_argument("--store", required=True)
    p_gc.set_defaults(func=cmd_gc)

    p_verify = sub.add_parser("verify", help="integrity-check the store",
                              parents=[obs])
    p_verify.add_argument("--store", required=True)
    p_verify.set_defaults(func=cmd_verify)

    p_env = sub.add_parser("env", help="manage environments", parents=[obs])
    p_env.add_argument("action",
                       choices=["create", "add", "concretize", "install", "status"])
    p_env.add_argument("--env", required=True, help="environment directory")
    p_env.add_argument("specs", nargs="*")
    p_env.add_argument("--splice", action="store_true")
    p_env.add_argument("--cache")
    _add_mirror_arguments(p_env)
    p_env.add_argument("--store", help="install store (for env install)")
    p_env.add_argument("--jobs", type=int, default=1)
    p_env.add_argument(
        "--fetch-jobs", type=int, default=1, metavar="N",
        help="pipeline cache fetch/verify/extract with N workers",
    )
    p_env.set_defaults(func=cmd_env)

    p_diff = sub.add_parser("diff", help="compare two concretized specs",
                            parents=[obs])
    p_diff.add_argument("left")
    p_diff.add_argument("right")
    p_diff.add_argument("--cache")
    p_diff.add_argument("--store")
    p_diff.set_defaults(func=cmd_diff)

    p_audit = sub.add_parser(
        "audit", help="static-analysis of repo, encoding, and stores",
        parents=[obs],
    )
    p_audit.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON report")
    p_audit.add_argument("--cache", help="buildcache whose specs to audit")
    p_audit.add_argument("--store", help="install store to audit")
    p_audit.add_argument(
        "--ground-cache", metavar="DIR",
        help="ground-program cache directory to audit "
             "(default: $REPRO_GROUND_CACHE_DIR)",
    )
    p_audit.add_argument(
        "--check", action="append", dest="checks", metavar="NAME",
        help="run only this checker, family, or code (repeatable)",
    )
    p_audit.add_argument("--strict", action="store_true",
                         help="exit nonzero on warnings, not just errors")
    p_audit.add_argument("--list-checks", action="store_true",
                         help="list registered checkers and exit")
    p_audit.set_defaults(func=cmd_audit)

    p_suggest = sub.add_parser(
        "suggest-splices", help="automatic ABI discovery report", parents=[obs]
    )
    p_suggest.add_argument("--virtual", default=None)
    p_suggest.add_argument(
        "--all", action="store_true", help="include already-declared splices"
    )
    p_suggest.set_defaults(func=cmd_suggest_splices)

    p_obs = sub.add_parser(
        "obs", help="session telemetry: report, inspect, diff, and the "
                    "bench regression gate",
        parents=[obs],
    )
    obs_sub = p_obs.add_subparsers(dest="obs_action", required=True)
    o_report = obs_sub.add_parser(
        "report", help="aggregate recorded sessions: per-command phase "
                       "p50/p95, cache hit/fallback rates, error taxonomy",
        parents=[obs],
    )
    o_report.add_argument("--json", action="store_true",
                          help="emit the aggregate as JSON")
    o_show = obs_sub.add_parser(
        "show", help="print one recorded session", parents=[obs]
    )
    o_show.add_argument(
        "session", nargs="?", default="last",
        help="session id prefix, index (-1, 0, ...), or 'last' (default)",
    )
    o_diff = obs_sub.add_parser(
        "diff", help="per-phase delta table between two sessions",
        parents=[obs],
    )
    o_diff.add_argument("a", help="session id prefix, index, or 'last'")
    o_diff.add_argument("b", help="session id prefix, index, or 'last'")
    o_bench = obs_sub.add_parser(
        "bench-diff", help="compare two bench_results JSON files "
                           "phase-by-phase; exit 1 on regressions",
        parents=[obs],
    )
    o_bench.add_argument(
        "old", nargs="?", default=None,
        help="baseline bench JSON (omit when using --baseline-dir)",
    )
    o_bench.add_argument("new", help="candidate bench JSON")
    o_bench.add_argument(
        "--baseline-dir", metavar="DIR",
        help="directory holding baseline JSONs; the file named after the "
             "candidate's figure (<figure>.json) becomes the baseline",
    )
    o_bench.add_argument(
        "--budget-pct", type=float, default=25.0, metavar="N",
        help="flag a phase slower than the baseline by more than N%% "
             "(default 25)",
    )
    o_bench.add_argument(
        "--min-seconds", type=float, default=1e-3, metavar="S",
        help="noise floor: baseline phases under S seconds are compared "
             "but never flagged (default 0.001)",
    )
    o_bench.add_argument(
        "--column", action="append", dest="columns", metavar="NAME",
        help="compare only this timing column, e.g. mean_s or solve_s "
             "(repeatable; default: every shared timing column)",
    )
    p_obs.set_defaults(func=cmd_obs)
    return parser


def _command_label(args) -> str:
    command = getattr(args, "command", None) or "?"
    obs_action = getattr(args, "obs_action", None)
    return f"{command} {obs_action}" if obs_action else command


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Besides dispatching, this is where the observability tier hooks
    every invocation: ``--trace``/``--profile`` output, the session
    telemetry sink (one JSONL record per run when a telemetry dir is
    configured), and the crash path — any uncaught exception becomes a
    one-line stderr message with exit 2 plus a crash report (traceback,
    the flight recorder's recent spans, metrics) dumped to the
    telemetry dir; ``-vv`` also prints the traceback.
    """
    from .obs import metrics

    argv_list = list(sys.argv[1:]) if argv is None else [str(a) for a in argv]
    args = build_parser().parse_args(argv_list)
    verbosity = getattr(args, "verbose", 0)
    configure_logging(verbosity)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        trace.enable()
    tdir = telemetry_dir(getattr(args, "telemetry_dir", None))
    phases_before = trace.phase_stats() if tdir else {}
    metrics_before = metrics.snapshot() if tdir else {}
    start = time.perf_counter()
    exit_code = 0
    outcome = "ok"
    error_label = None
    try:
        exit_code = args.func(args) or 0
        if exit_code:
            outcome = "error"
        return exit_code
    except CLIError as e:
        print(f"error: {e}", file=sys.stderr)
        exit_code, outcome, error_label = 2, "usage-error", type(e).__name__
        return 2
    except KeyboardInterrupt:
        exit_code, outcome, error_label = 130, "interrupted", "KeyboardInterrupt"
        raise
    except SystemExit as e:
        exit_code = e.code if isinstance(e.code, int) else (0 if e.code is None else 1)
        if exit_code:
            outcome, error_label = "error", "SystemExit"
        raise
    except BrokenPipeError:
        # downstream closed the pipe (`repro obs report | head`): a
        # normal event, not a crash — mute stdout so the interpreter's
        # exit-time flush stays quiet, and skip the crash report
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):
            pass  # stdout already gone or not a real fd (test capture)
        exit_code, outcome, error_label = 1, "interrupted", "BrokenPipeError"
        return 1
    except Exception as e:
        # a bug, not a usage problem: route through the crash-report
        # path (flight recorder + traceback + metrics), keep stderr to
        # one line, exit 2 — same taxonomy as CLIError
        exit_code, outcome, error_label = 2, "crash", type(e).__name__
        crash_path = None
        if tdir is not None:
            try:
                crash_path = write_crash_report(
                    tdir,
                    crash_report(e, command=_command_label(args), argv=argv_list),
                )
            except OSError:
                pass  # a full disk must not mask the real failure
        if verbosity >= 2:
            traceback.print_exc()
        where = (
            f" (crash report: {crash_path})" if crash_path
            else "" if verbosity >= 2 else " (rerun with -vv for the traceback)"
        )
        print(
            f"error: internal error: {type(e).__name__}: {e}{where}",
            file=sys.stderr,
        )
        return 2
    finally:
        wall_s = time.perf_counter() - start
        if trace_path:
            write_chrome_trace(trace_path)
            trace.disable()
            print(f"trace written to {trace_path}", file=sys.stderr)
        if getattr(args, "profile", False):
            print()
            print(phase_table())
            print()
            print(metrics_table())
        if tdir is not None:
            try:
                append_session(
                    tdir,
                    session_record(
                        command=_command_label(args),
                        argv=argv_list,
                        exit_code=exit_code,
                        wall_s=wall_s,
                        outcome=outcome,
                        error=error_label,
                        phases=phase_delta(phases_before, trace.phase_stats()),
                        metrics_snapshot=metrics_delta(
                            metrics_before, metrics.snapshot()
                        ),
                    ),
                )
            except OSError as e:
                # telemetry must never take the command down with it
                print(f"warning: telemetry append failed: {e}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
