"""Storage backends: the byte-level seam under the buildcache.

A :class:`BuildCache` is logically "an index plus a blob store"; this
module makes the *where the bytes live* part pluggable.  Everything the
cache and its :class:`~repro.buildcache.index.ShardedIndex` persist
goes through a :class:`StorageBackend` keyed by posix-relative strings
(``"index.json"``, ``"index.d/ab.json"``, ``"blobs/<hash>/meta.json"``,
``"blobs/<hash>/files/lib/libz.so"``) instead of touching ``Path``
directly — the substitutes model of Guix, where a binary mirror is an
unreliable remote service, not a trusted local disk.

Two implementations ship:

* :class:`LocalFSBackend` — the classic directory layout.  Every write
  is atomic **and durable**: data is written to a temp file, fsynced,
  renamed over the target, and the containing directory is fsynced.
  (The old ``_atomic_write`` helpers renamed without any fsync — a
  crash shortly after could surface an empty shard or manifest on
  common filesystems, defeating the fsynced journal one line away.)
* :class:`SimulatedRemoteBackend` — wraps any backend with per-op
  latency, injectable faults (timeouts, missing blobs), and a
  read-only mode, so mirror fallback and retry behaviour can be
  exercised deterministically in tests and benchmarks.

The **atomic-publish contract** (:meth:`StorageBackend.publish_tree`)
is what makes an interrupted ``push`` safe: the entire cache entry —
payload files *and* ``meta.json``/``manifest.json``/``manifest.sig`` —
is staged to the side and swapped in last, so a re-push that dies
mid-copy leaves the previous entry fully intact (old-entry-or-new-entry,
never a signed manifest over a partial payload).

Error taxonomy (all subclasses of :class:`BuildCacheError`, which lives
here — the lowest-level buildcache module — so every layer above can
raise and catch it without import cycles):

* :class:`MissingBlobError` — the key does not exist; the per-key
  analogue of ``FileNotFoundError``.
* :class:`TransientBackendError` — timeouts and flaky-network faults;
  the only error class :class:`~repro.buildcache.mirror.MirrorGroup`
  retries before falling through to the next mirror.
* :class:`ReadOnlyBackendError` — a write hit a read-only mirror.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BuildCacheError",
    "BackendError",
    "MissingBlobError",
    "TransientBackendError",
    "ReadOnlyBackendError",
    "StorageBackend",
    "LocalFSBackend",
    "SimulatedRemoteBackend",
    "fsync_write",
]


class BuildCacheError(RuntimeError):
    """Raised for corrupt, missing, unsigned, or untrusted cache state."""


class BackendError(BuildCacheError):
    """Raised when a storage backend operation fails."""


class MissingBlobError(BackendError):
    """The requested key does not exist in the backend."""


class TransientBackendError(BackendError):
    """A retryable fault (timeout, flaky connection).  MirrorGroup
    retries these with backoff before degrading to the next mirror."""


class ReadOnlyBackendError(BackendError):
    """A write was attempted against a read-only backend."""


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry table (best effort: not every filesystem
    supports opening directories, and a failure here only weakens
    durability back to the pre-fsync behaviour)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_write(path: Path, data: bytes) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    tmp write -> fsync(tmp) -> rename -> fsync(parent dir).  Readers
    see the old bytes or the new bytes, and once this returns the new
    bytes survive a crash — the contract both the index shards and the
    entry manifests rely on (the journal alone was fsynced before).
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class StorageBackend:
    """Byte storage under posix-relative string keys.

    Implementations must make :meth:`put` atomic+durable and
    :meth:`publish_tree` old-tree-or-new-tree atomic; everything else
    is plain KV.  ``writable=False`` backends raise
    :class:`ReadOnlyBackendError` from every mutating method.
    """

    #: short human label used in spans, counters, and error messages
    name: str = "backend"
    writable: bool = True

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> bytes:
        """The bytes at ``key``; :class:`MissingBlobError` if absent."""
        raise NotImplementedError

    def get_range(self, key: str, start: int, length: int) -> bytes:
        """``length`` bytes of ``key`` starting at offset ``start``
        (shorter at EOF, empty past it) — the partial-blob-fetch seam.

        The default reads the whole blob and slices; remote backends
        override it with a real ranged read (``Range:`` header) so a
        consumer inspecting the head of a large payload never pays for
        the tail.
        """
        data = self.get(key)
        return data[start:start + length]

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def tree_exists(self, prefix: str) -> bool:
        """Does anything (even an empty published tree) live under
        ``prefix``?"""
        raise NotImplementedError

    def list_tree(self, prefix: str) -> Tuple[List[str], List[str]]:
        """``(files, dirs)`` under ``prefix``, as sorted relative posix
        paths (dirs includes empty directories so payload trees
        round-trip exactly)."""
        raise NotImplementedError

    # -- writes --------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        """Atomically + durably write ``data`` at ``key``."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove ``key`` (missing keys are not an error)."""
        raise NotImplementedError

    def append_line(self, key: str, line: bytes) -> None:
        """Durably append one line to ``key`` (the journal contract:
        fsynced before return, created if absent)."""
        raise NotImplementedError

    def publish_tree(
        self,
        prefix: str,
        files: Dict[str, bytes],
        dirs: Sequence[str] = (),
    ) -> None:
        """Atomically replace everything under ``prefix`` with the
        given tree.  Readers observe the previous tree or the new one,
        never a mixture — and an exception mid-publish leaves the
        previous tree untouched."""
        raise NotImplementedError

    # -- description ---------------------------------------------------
    def describe(self) -> str:
        """Display string for spans and error messages."""
        return self.name

    def _require_writable(self) -> None:
        if not self.writable:
            raise ReadOnlyBackendError(f"backend {self.describe()} is read-only")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class LocalFSBackend(StorageBackend):
    """The on-disk directory layout, with durable atomic writes."""

    def __init__(self, root, name: Optional[str] = None, writable: bool = True):
        self.root = Path(root)
        self.name = name or self.root.name or str(self.root)
        self.writable = writable
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if not str(path).startswith(str(self.root.resolve())):
            raise BackendError(f"key {key!r} escapes backend root {self.root}")
        return path

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise MissingBlobError(
                f"{self.describe()}: no blob at {key!r}"
            ) from None
        except OSError as e:
            raise BackendError(f"{self.describe()}: cannot read {key!r}: {e}") from e

    def get_range(self, key: str, start: int, length: int) -> bytes:
        try:
            with open(self._path(key), "rb") as fh:
                fh.seek(start)
                return fh.read(length)
        except FileNotFoundError:
            raise MissingBlobError(
                f"{self.describe()}: no blob at {key!r}"
            ) from None
        except OSError as e:
            raise BackendError(f"{self.describe()}: cannot read {key!r}: {e}") from e

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def tree_exists(self, prefix: str) -> bool:
        return self._path(prefix).is_dir()

    def list_tree(self, prefix: str) -> Tuple[List[str], List[str]]:
        root = self._path(prefix)
        if not root.is_dir():
            raise MissingBlobError(f"{self.describe()}: no tree at {prefix!r}")
        files: List[str] = []
        dirs: List[str] = []
        for path in sorted(root.rglob("*")):
            rel = path.relative_to(root).as_posix()
            if path.is_dir():
                dirs.append(rel)
            elif path.is_file():
                files.append(rel)
        return files, dirs

    # -- writes --------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        self._require_writable()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fsync_write(path, data)

    def delete(self, key: str) -> None:
        self._require_writable()
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def append_line(self, key: str, line: bytes) -> None:
        self._require_writable()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        created = not path.exists()
        with open(path, "ab") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            # the first append *creates* the journal: without flushing
            # the parent's entry table a crash can lose the whole file
            # despite the fsynced data above (fsync_write already does
            # this for renames; creation needs it just the same)
            _fsync_dir(path.parent)

    # -- atomic publish -----------------------------------------------
    def _stage_file(self, path: Path, data: bytes) -> None:
        """One staged write during publish_tree (a test seam: fault
        injection here models a copy dying mid-push)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def publish_tree(
        self,
        prefix: str,
        files: Dict[str, bytes],
        dirs: Sequence[str] = (),
    ) -> None:
        self._require_writable()
        final = self._path(prefix)
        staging = final.with_name(final.name + ".publish.tmp")
        previous = final.with_name(final.name + ".publish.old")
        # heal the (tiny) crash window of a previous publish: the old
        # tree was moved aside but the new one never landed
        if previous.exists() and not final.exists():
            previous.rename(final)
        for stale in (staging, previous):
            if stale.exists():
                shutil.rmtree(stale)
        staging.mkdir(parents=True)
        try:
            for rel in dirs:
                (staging / rel).mkdir(parents=True, exist_ok=True)
            for rel, data in files.items():
                self._stage_file(staging / rel, data)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        # swap: the previous tree stays recoverable until the new one
        # is in place, so every crash point is old-tree-or-new-tree
        if final.exists():
            final.rename(previous)
        staging.rename(final)
        _fsync_dir(final.parent)
        shutil.rmtree(previous, ignore_errors=True)

    def describe(self) -> str:
        return str(self.root)


class SimulatedRemoteBackend(StorageBackend):
    """Any backend, made remote-shaped: latency, faults, read-only.

    * ``latency`` — seconds slept before every operation (one simulated
      round-trip); ``latency_per_op`` overrides individual ops, e.g.
      ``{"get": 0.05}``.
    * :meth:`fail` — queue deterministic faults: the next ``times``
      calls of ``op`` raise ``error`` (an exception instance or class).
      The default :class:`TransientBackendError` models a timeout.
    * :meth:`drop` — keys (or key prefixes) that report missing even
      though the inner backend holds them: the "index says yes, blob
      fetch 404s" mirror pathology.
    * ``read_only`` — every mutating op raises
      :class:`ReadOnlyBackendError`.

    ``op_counts`` tallies operations per name so tests and benchmarks
    can assert how many round-trips a code path cost.
    """

    def __init__(
        self,
        inner: StorageBackend,
        name: Optional[str] = None,
        latency: float = 0.0,
        latency_per_op: Optional[Dict[str, float]] = None,
        read_only: bool = False,
    ):
        self.inner = inner
        self.name = name or f"sim:{inner.name}"
        self.latency = latency
        self.latency_per_op = dict(latency_per_op or {})
        self.read_only = read_only
        self.op_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._faults: Dict[str, List[BaseException]] = {}
        self._dropped: List[str] = []

    @property
    def writable(self) -> bool:  # type: ignore[override]
        return not self.read_only and self.inner.writable

    # -- simulation controls ------------------------------------------
    def fail(self, op: str, error=None, times: int = 1) -> None:
        """Make the next ``times`` calls of ``op`` raise ``error``."""
        if error is None:
            error = TransientBackendError(
                f"{self.describe()}: simulated timeout in {op}"
            )
        if isinstance(error, type):
            error = error(f"{self.describe()}: simulated {op} failure")
        with self._lock:
            self._faults.setdefault(op, []).extend([error] * times)

    def drop(self, key_prefix: str) -> None:
        """Report ``key_prefix`` (a key or a whole subtree) missing."""
        with self._lock:
            self._dropped.append(key_prefix)

    def _is_dropped(self, key: str) -> bool:
        with self._lock:
            dropped = list(self._dropped)
        return any(
            key == d or key.startswith(d.rstrip("/") + "/") for d in dropped
        )

    def _enter(self, op: str) -> None:
        with self._lock:
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            queued = self._faults.get(op)
            fault = queued.pop(0) if queued else None
        delay = self.latency_per_op.get(op, self.latency)
        if delay > 0:
            time.sleep(delay)
        if fault is not None:
            raise fault

    def _enter_write(self, op: str) -> None:
        self._enter(op)
        if self.read_only:
            raise ReadOnlyBackendError(
                f"mirror backend {self.describe()} is read-only"
            )

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> bytes:
        self._enter("get")
        if self._is_dropped(key):
            raise MissingBlobError(f"{self.describe()}: no blob at {key!r}")
        return self.inner.get(key)

    def get_range(self, key: str, start: int, length: int) -> bytes:
        self._enter("get_range")
        if self._is_dropped(key):
            raise MissingBlobError(f"{self.describe()}: no blob at {key!r}")
        return self.inner.get_range(key, start, length)

    def exists(self, key: str) -> bool:
        self._enter("exists")
        if self._is_dropped(key):
            return False
        return self.inner.exists(key)

    def tree_exists(self, prefix: str) -> bool:
        self._enter("tree_exists")
        if self._is_dropped(prefix):
            return False
        return self.inner.tree_exists(prefix)

    def list_tree(self, prefix: str) -> Tuple[List[str], List[str]]:
        self._enter("list_tree")
        if self._is_dropped(prefix):
            raise MissingBlobError(f"{self.describe()}: no tree at {prefix!r}")
        files, dirs = self.inner.list_tree(prefix)
        files = [f for f in files if not self._is_dropped(f"{prefix}/{f}")]
        return files, dirs

    # -- writes --------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        self._enter_write("put")
        self.inner.put(key, data)

    def delete(self, key: str) -> None:
        self._enter_write("delete")
        self.inner.delete(key)

    def append_line(self, key: str, line: bytes) -> None:
        self._enter_write("append_line")
        self.inner.append_line(key, line)

    def publish_tree(
        self,
        prefix: str,
        files: Dict[str, bytes],
        dirs: Sequence[str] = (),
    ) -> None:
        self._enter_write("publish_tree")
        self.inner.publish_tree(prefix, files, dirs)

    def describe(self) -> str:
        return f"{self.name}({self.inner.describe()})"
