"""HTTP storage backend: a buildcache mirror over real sockets.

The :class:`~repro.buildcache.backend.StorageBackend` contract spoken
to a :mod:`repro.buildcache.server` (or anything serving the same
content-addressed GET/PUT protocol), over stdlib :mod:`http.client`:

* **connection pool** — a small per-backend pool of keep-alive
  connections; reuse is counted (``buildcache.http_pool_reuse``) so
  benchmarks can prove the warm path never pays TCP setup per shard.
* **conditional GET** — ``index.json``/``index.sum.json`` responses are
  cached with their ETag (the server's ``index.json`` ETag *is* the v3
  manifest digest); revalidation sends ``If-None-Match``, and an
  unchanged mirror costs exactly one 304 per ``refresh()`` — zero
  shard re-downloads (``buildcache.http_304s``).
* **range reads** — :meth:`HTTPBackend.get_range` issues a ``Range:``
  request; a 206 transfers only the slice, and the bytes *not* shipped
  land in ``buildcache.http_range_bytes_saved``.
* **bounded timeouts + error taxonomy** — every request carries a
  socket timeout (``REPRO_HTTP_TIMEOUT_S``, default 10s); socket
  faults, timeouts, and 5xx responses raise
  :class:`~repro.buildcache.backend.TransientBackendError`, so
  :class:`~repro.buildcache.mirror.MirrorGroup`'s existing
  retry-with-backoff / degrade-to-next-mirror machinery applies to a
  real network exactly as it does to the simulated one.  404 is
  :class:`~repro.buildcache.backend.MissingBlobError`; 403 (a
  ``--read-only`` server) is :class:`~repro.buildcache.backend.
  ReadOnlyBackendError`.
* **atomic publish** — :meth:`HTTPBackend.publish_tree` opens a
  staged-publish transaction, uploads the parts in parallel (multiple
  pooled connections), and commits last; the server swaps the staged
  tree in through its local backend's old-tree-or-new-tree publish, so
  the client-visible contract matches ``LocalFSBackend`` byte for
  byte.  Any failed part aborts the transaction — the previous entry
  survives untouched.

Every request runs under a ``buildcache.http_request`` span and bumps
``buildcache.http_requests`` (obs schema 9; see docs/observability.md).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import quote, urlsplit

from ..obs import metrics, trace
from .backend import (
    BackendError,
    MissingBlobError,
    ReadOnlyBackendError,
    StorageBackend,
    TransientBackendError,
)

__all__ = ["HTTPBackend"]

#: keys revalidated with If-None-Match instead of refetched: the small,
#: frequently re-read index documents (shards are immutable-by-digest,
#: so refresh() never re-reads an unchanged one anyway)
_CONDITIONAL_KEYS = ("index.json", "index.sum.json")

_DEFAULT_TIMEOUT_S = 10.0


def _timeout_from_env() -> float:
    try:
        return float(os.environ.get("REPRO_HTTP_TIMEOUT_S", ""))
    except ValueError:
        return _DEFAULT_TIMEOUT_S


class HTTPBackend(StorageBackend):
    """Byte storage behind an HTTP buildcache server.

    ``url`` is ``http://host:port[/base-path]`` — the base path allows
    a server mounted behind a prefix; ``repro buildcache serve``
    serves at the root.  ``writable=False`` short-circuits every
    mutating verb client-side (the ``:ro`` mirror suffix); a server
    started ``--read-only`` enforces the same thing with 403s.
    """

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        writable: bool = True,
        timeout: Optional[float] = None,
        pool_size: int = 4,
    ):
        parsed = urlsplit(url)
        if parsed.scheme not in ("http", "https"):
            raise BackendError(f"HTTPBackend needs an http(s) URL, got {url!r}")
        if not parsed.hostname:
            raise BackendError(f"HTTP mirror URL {url!r} has no host")
        self.scheme = parsed.scheme
        self.host = parsed.hostname
        self.port = parsed.port or (443 if parsed.scheme == "https" else 80)
        self.base = parsed.path.rstrip("/")
        self.url = f"{parsed.scheme}://{parsed.netloc}{self.base}"
        self.name = name or f"{self.host}:{self.port}{self.base}"
        self.writable = writable
        self.timeout = timeout if timeout is not None else _timeout_from_env()
        self.pool_size = max(int(pool_size), 1)
        self._pool: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        #: conditional-GET cache: key -> (etag, bytes)
        self._etag_cache: Dict[str, Tuple[str, bytes]] = {}

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection
            if self.scheme == "https"
            else http.client.HTTPConnection
        )
        conn = cls(self.host, self.port, timeout=self.timeout)
        try:
            conn.connect()
        except OSError as e:
            raise TransientBackendError(
                f"{self.describe()}: cannot connect: {e}"
            ) from e
        # disable Nagle: index probes and journal appends are small
        # two-segment writes, and coalescing them costs a delayed-ACK
        # round (a measured 40ms-per-request stall on loopback)
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _acquire(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._pool:
                metrics.inc("buildcache.http_pool_reuse")
                return self._pool.pop()
        return self._connect()

    def _release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Drop every pooled connection (tests; optional otherwise)."""
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    # ------------------------------------------------------------------
    # one request
    # ------------------------------------------------------------------
    def _url_for(self, key: str, query: str = "") -> str:
        for part in key.split("/"):
            if part in ("", ".", ".."):
                raise BackendError(
                    f"key {key!r} escapes backend root {self.url}"
                )
        path = f"{self.base}/{quote(key)}"
        return f"{path}?{query}" if query else path

    def _request(
        self,
        method: str,
        key: str,
        query: str = "",
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One round-trip; returns (status, lowercase headers, body).

        Socket-level faults close the connection and surface as
        :class:`TransientBackendError`; 5xx responses do the same, so
        the mirror retry/degrade machinery treats a struggling server
        like a flaky one.
        """
        url = self._url_for(key, query)
        conn = self._acquire()
        reused = True  # only for cleanup: a broken conn is never pooled
        with trace.span(
            "buildcache.http_request", method=method, key=key
        ) as sp:
            try:
                conn.request(method, url, body=body or None, headers=headers or {})
                response = conn.getresponse()
                payload = response.read()
            except (socket.timeout, TimeoutError) as e:
                conn.close()
                raise TransientBackendError(
                    f"{self.describe()}: timeout after {self.timeout}s "
                    f"during {method} {key!r}"
                ) from e
            except (OSError, http.client.HTTPException) as e:
                conn.close()
                raise TransientBackendError(
                    f"{self.describe()}: {method} {key!r} failed: {e}"
                ) from e
            status = response.status
            sp.set(status=status, bytes=len(payload))
            if response.will_close:
                conn.close()
                reused = False
            if reused:
                self._release(conn)
        metrics.inc("buildcache.http_requests")
        if status >= 500:
            raise TransientBackendError(
                f"{self.describe()}: server error {status} for "
                f"{method} {key!r}: {payload.decode(errors='replace').strip()}"
            )
        if status == 403:
            raise ReadOnlyBackendError(
                f"mirror backend {self.describe()} is read-only "
                f"({method} {key!r} rejected)"
            )
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        return status, response_headers, payload

    @staticmethod
    def _unexpected(status: int, method: str, key: str, payload: bytes):
        return BackendError(
            f"unexpected HTTP {status} for {method} {key!r}: "
            f"{payload.decode(errors='replace').strip()}"
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        conditional = key.rsplit("/", 1)[-1] in _CONDITIONAL_KEYS
        headers: Dict[str, str] = {}
        cached: Optional[Tuple[str, bytes]] = None
        if conditional:
            cached = self._etag_cache.get(key)
            if cached is not None:
                headers["If-None-Match"] = cached[0]
        status, response_headers, payload = self._request(
            "GET", key, headers=headers
        )
        if status == 304 and cached is not None:
            metrics.inc("buildcache.http_304s")
            return cached[1]
        if status == 404:
            self._etag_cache.pop(key, None)
            raise MissingBlobError(f"{self.describe()}: no blob at {key!r}")
        if status != 200:
            raise self._unexpected(status, "GET", key, payload)
        if conditional:
            etag = response_headers.get("etag")
            if etag:
                self._etag_cache[key] = (etag, payload)
        return payload

    def get_range(self, key: str, start: int, length: int) -> bytes:
        if length <= 0:
            return b""
        headers = {"Range": f"bytes={start}-{start + length - 1}"}
        status, response_headers, payload = self._request(
            "GET", key, headers=headers
        )
        if status == 404:
            raise MissingBlobError(f"{self.describe()}: no blob at {key!r}")
        if status == 416:
            return b""  # past EOF: same answer as slicing locally
        if status == 206:
            content_range = response_headers.get("content-range", "")
            total_s = content_range.rpartition("/")[2]
            if total_s.isdigit():
                metrics.inc(
                    "buildcache.http_range_bytes_saved",
                    max(int(total_s) - len(payload), 0),
                )
            return payload
        if status == 200:
            # a server without range support shipped the whole blob
            return payload[start:start + length]
        raise self._unexpected(status, "GET", key, payload)

    def exists(self, key: str) -> bool:
        status, _headers, payload = self._request("HEAD", key)
        if status == 200:
            return True
        if status == 404:
            return False
        raise self._unexpected(status, "HEAD", key, payload)

    def tree_exists(self, prefix: str) -> bool:
        status, _headers, payload = self._request("HEAD", prefix, query="op=tree")
        if status == 200:
            return True
        if status == 404:
            return False
        raise self._unexpected(status, "HEAD", prefix, payload)

    def list_tree(self, prefix: str) -> Tuple[List[str], List[str]]:
        status, _headers, payload = self._request("GET", prefix, query="op=list")
        if status == 404:
            raise MissingBlobError(f"{self.describe()}: no tree at {prefix!r}")
        if status != 200:
            raise self._unexpected(status, "GET", prefix, payload)
        try:
            listing = json.loads(payload)
            return list(listing["files"]), list(listing["dirs"])
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            raise BackendError(
                f"{self.describe()}: malformed tree listing for {prefix!r}: {e}"
            ) from e

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        self._require_writable()
        status, _headers, payload = self._request("PUT", key, body=data)
        if status not in (200, 201):
            raise self._unexpected(status, "PUT", key, payload)
        self._etag_cache.pop(key, None)

    def delete(self, key: str) -> None:
        self._require_writable()
        status, _headers, payload = self._request("DELETE", key)
        if status not in (200, 204, 404):
            raise self._unexpected(status, "DELETE", key, payload)
        self._etag_cache.pop(key, None)

    def append_line(self, key: str, line: bytes) -> None:
        self._require_writable()
        status, _headers, payload = self._request(
            "POST", key, query="op=append", body=line
        )
        if status != 200:
            raise self._unexpected(status, "POST", key, payload)

    # ------------------------------------------------------------------
    # atomic publish: begin -> parallel staged parts -> commit
    # ------------------------------------------------------------------
    def _stage_part(self, prefix: str, txn: str, rel: str, data: bytes) -> None:
        """Upload one staged file (a test seam: fault injection here
        models an upload dying mid-publish)."""
        status, _headers, payload = self._request(
            "PUT", prefix, query=f"op=stage&txn={quote(txn)}&path={quote(rel)}",
            body=data,
        )
        if status != 200:
            raise self._unexpected(status, "PUT", f"{prefix}#{rel}", payload)

    def publish_tree(
        self,
        prefix: str,
        files: Dict[str, bytes],
        dirs: Sequence[str] = (),
    ) -> None:
        self._require_writable()
        status, _headers, payload = self._request(
            "POST", prefix, query="op=publish-begin"
        )
        if status != 200:
            raise self._unexpected(status, "POST", prefix, payload)
        txn = str(json.loads(payload)["txn"])
        with trace.span(
            "buildcache.http_publish", prefix=prefix, files=len(files)
        ) as sp:
            try:
                workers = min(self.pool_size, max(len(files), 1))
                if workers > 1:
                    with ThreadPoolExecutor(
                        max_workers=workers, thread_name_prefix="http-publish"
                    ) as pool:
                        futures = [
                            pool.submit(self._stage_part, prefix, txn, rel, data)
                            for rel, data in files.items()
                        ]
                        for future in futures:
                            future.result()
                else:
                    for rel, data in files.items():
                        self._stage_part(prefix, txn, rel, data)
                body = json.dumps({"dirs": list(dirs)}).encode()
                status, _headers, payload = self._request(
                    "POST", prefix, query=f"op=publish-commit&txn={quote(txn)}",
                    body=body,
                )
                if status != 200:
                    raise self._unexpected(status, "POST", prefix, payload)
            except BaseException:
                # best-effort abort: the server's previous tree is
                # intact either way (nothing swapped before commit)
                try:
                    self._request(
                        "POST", prefix,
                        query=f"op=publish-abort&txn={quote(txn)}",
                    )
                except BackendError:
                    pass
                raise
            sp.set(bytes=sum(len(d) for d in files.values()))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return self.url

    def __repr__(self) -> str:
        return f"<HTTPBackend {self.url} pool={len(self._pool)}/{self.pool_size}>"
