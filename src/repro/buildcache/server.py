"""``repro buildcache serve``: the networked half of the cache pair.

A threaded stdlib :mod:`http.server` process that exposes one cache
directory as a content-addressed HTTP blob store — the protocol
:class:`~repro.buildcache.httpbackend.HTTPBackend` speaks.  Together
they turn the simulated remote of the mirror benchmarks into a *real*
networked mirror: the paper's central workload (clients resolving
installs against a shared public binary cache) measured over actual
sockets instead of injected latency.

Protocol (URL path = backend key, query ``op`` selects non-blob verbs):

=====================================  ==================================
``GET /<key>``                         blob bytes; strong ``ETag``;
                                       honors ``If-None-Match`` (304)
                                       and single-range ``Range:`` (206)
``HEAD /<key>``                        existence probe + ``ETag``
``PUT /<key>``                         atomic durable write (via
                                       :func:`~repro.buildcache.backend.
                                       fsync_write`)
``DELETE /<key>``                      idempotent delete
``GET /<prefix>?op=list``              JSON ``{"files": [...], "dirs":
                                       [...]}`` tree listing
``HEAD /<prefix>?op=tree``             tree existence probe
``POST /<key>?op=append``              durable journal append (body =
                                       one line)
``POST /<prefix>?op=publish-begin``    open a staged-publish
                                       transaction -> ``{"txn": id}``
``PUT /<prefix>?op=stage&txn=&path=``  stage one file of the new tree
                                       (parts may arrive in parallel)
``POST /<prefix>?op=publish-commit``   atomically swap the staged tree
                                       in (body = ``{"dirs": [...]}``)
``POST /<prefix>?op=publish-abort``    drop a transaction
=====================================  ==================================

**ETag semantics.**  Every blob's ETag is the sha256 of its bytes —
except ``index.json``, whose ETag is the v3 *manifest digest* when the
document carries one, so a client that already knows a mirror's digest
can revalidate the whole index with one conditional GET: an unchanged
mirror costs exactly one 304 per ``refresh()``, zero shard re-reads.

**Atomic publish.**  The staged-PUT transaction preserves the
old-tree-or-new-tree :meth:`~repro.buildcache.backend.StorageBackend.
publish_tree` contract *server-side*: parts accumulate in a per-txn
staging area and only ``publish-commit`` swaps them in (through the
local backend's tested publish path), so a client that dies mid-upload
— or aborts after a failed part — leaves the previous entry fully
intact and the staging garbage collected.

``--read-only`` turns every mutating verb into a 403, which the HTTP
backend maps to :class:`~repro.buildcache.backend.ReadOnlyBackendError`
— the same taxonomy a read-only local mirror raises.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from ..obs import metrics
from .backend import BackendError, LocalFSBackend, MissingBlobError

__all__ = ["BuildCacheHTTPServer", "start_server"]

logger = logging.getLogger(__name__)

#: keys whose ETag is the embedded v3 manifest digest (cheap digest-level
#: revalidation) rather than a hash of the raw bytes
_MANIFEST_KEYS = ("index.json",)


def _etag_for(key: str, data: bytes) -> str:
    """The strong ETag served for ``key``: the v3 manifest digest for
    ``index.json`` documents that carry one, sha256 of the bytes
    otherwise."""
    if key.rsplit("/", 1)[-1] in _MANIFEST_KEYS:
        try:
            document = json.loads(data)
            digest = document.get("digest")
            if document.get("version") == 3 and digest:
                return f'"{digest}"'
        except (json.JSONDecodeError, AttributeError):
            pass
    return f'"{hashlib.sha256(data).hexdigest()}"'


class _PublishTxn:
    """One staged publish: parts accumulate under a lock until commit."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.files: Dict[str, bytes] = {}
        self.lock = threading.Lock()


class BuildCacheHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server over one buildcache directory.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server_address``.  ``read_only`` rejects every mutating verb with
    403.  ``request_log`` records ``(method, path, status)`` per
    request — how tests and benchmarks assert exact round-trip counts
    (the server-side twin of ``SimulatedRemoteBackend.op_counts``).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        root,
        host: str = "127.0.0.1",
        port: int = 0,
        read_only: bool = False,
    ):
        self.backend = LocalFSBackend(Path(root), name="serve")
        self.read_only = read_only
        self.request_log: List[Tuple[str, str, int]] = []
        self._log_lock = threading.Lock()
        self._txns: Dict[str, _PublishTxn] = {}
        self._txn_lock = threading.Lock()
        self._txn_ids = itertools.count(1)
        #: queued fault injection: each entry fails one request with 500
        #: (the HTTP twin of ``SimulatedRemoteBackend.fail``); a non-None
        #: entry only fires on a request whose path contains it
        self._fail_requests: List[Optional[str]] = []
        super().__init__((host, port), _Handler)

    # -- addressing ----------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- test / bench seams --------------------------------------------
    def fail_next(self, times: int = 1, path_contains: Optional[str] = None) -> None:
        """Make the next ``times`` requests fail with 500 (a transient
        server fault, retried by ``MirrorGroup`` through the backend's
        :class:`~repro.buildcache.backend.TransientBackendError`).

        ``path_contains`` scopes each queued fault to the first request
        whose URL path contains the substring — how tests land a fault
        on a payload fetch without tripping the unretried cold open.
        """
        with self._log_lock:
            self._fail_requests.extend([path_contains] * times)

    def _take_fault(self, path: str) -> bool:
        with self._log_lock:
            for i, required in enumerate(self._fail_requests):
                if required is None or required in path:
                    del self._fail_requests[i]
                    return True
        return False

    def _record(self, method: str, path: str, status: int) -> None:
        with self._log_lock:
            self.request_log.append((method, path, status))

    def requests_served(self, method: Optional[str] = None) -> int:
        with self._log_lock:
            return sum(
                1 for m, _p, _s in self.request_log
                if method is None or m == method
            )

    # -- publish transactions ------------------------------------------
    def begin_txn(self, prefix: str) -> str:
        with self._txn_lock:
            txn_id = f"txn{next(self._txn_ids)}"
            self._txns[txn_id] = _PublishTxn(prefix)
        return txn_id

    def get_txn(self, txn_id: str) -> Optional[_PublishTxn]:
        with self._txn_lock:
            return self._txns.get(txn_id)

    def drop_txn(self, txn_id: str) -> None:
        with self._txn_lock:
            self._txns.pop(txn_id, None)


class _Handler(BaseHTTPRequestHandler):
    """Request handler: every verb ends in exactly one ``_reply``."""

    protocol_version = "HTTP/1.1"
    # headers and body go out as separate small writes; with Nagle on,
    # the second write waits out the peer's delayed ACK (~40ms per
    # request on a reused keep-alive connection, measured on loopback)
    disable_nagle_algorithm = True
    server: BuildCacheHTTPServer

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        logger.debug("%s %s", self.address_string(), fmt % args)

    def _reply(
        self,
        status: int,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        # record *before* writing the response: the client unblocks the
        # moment the body lands, and tests assert on request_log right
        # after a call returns — logging afterwards would race them
        self.server._record(self.command, self.path, status)
        metrics.inc("buildcache.http_server_requests")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD" and body:
            self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, message.encode() + b"\n", "text/plain")

    def _key(self) -> str:
        return unquote(urlsplit(self.path).path).lstrip("/")

    def _query(self) -> Dict[str, str]:
        return {
            name: values[0]
            for name, values in parse_qs(urlsplit(self.path).query).items()
        }

    #: per-request body, drained eagerly by the mutating dispatchers
    _cached_body = b""

    def _drain_body(self) -> None:
        # the verb dispatchers drain the body *before* handling, so an
        # early error reply (403/409/500) never leaves unread bytes to
        # desync the next keep-alive request; one handler instance
        # serves many requests, so this must run per request, not once
        length = int(self.headers.get("Content-Length") or 0)
        self._cached_body = self.rfile.read(length) if length else b""

    def _body(self) -> bytes:
        return self._cached_body

    def _require_writable(self) -> bool:
        if self.server.read_only:
            self._error(403, "this buildcache server is read-only")
            return False
        return True

    def _guard(self, fn) -> None:
        """Run one verb, mapping backend/path faults to HTTP statuses."""
        if self.server._take_fault(urlsplit(self.path).path):
            self._error(500, "injected server fault")
            return
        try:
            fn()
        except MissingBlobError as e:
            self._error(404, str(e))
        except BackendError as e:
            # escape attempts and unreadable paths are client mistakes
            self._error(400, str(e))
        except Exception as e:  # a handler bug must not kill the thread
            logger.exception("internal error serving %s %s", self.command, self.path)
            self._error(500, f"internal error: {type(e).__name__}: {e}")

    # -- reads ---------------------------------------------------------
    def do_GET(self) -> None:
        self._guard(self._get_or_head)

    def do_HEAD(self) -> None:
        self._guard(self._get_or_head)

    def _get_or_head(self) -> None:
        key, query = self._key(), self._query()
        op = query.get("op")
        if op == "list":
            files, dirs = self.server.backend.list_tree(key)
            body = json.dumps({"files": files, "dirs": dirs}).encode()
            self._reply(200, body, "application/json")
            return
        if op == "tree":
            if self.server.backend.tree_exists(key):
                self._reply(200, b"")
            else:
                self._error(404, f"no tree at {key!r}")
            return
        data = self.server.backend.get(key)
        etag = _etag_for(key, data)
        if self.headers.get("If-None-Match") == etag:
            metrics.inc("buildcache.http_server_304s")
            self._reply(304, b"", extra={"ETag": etag})
            return
        range_header = self.headers.get("Range")
        if range_header:
            self._ranged(data, etag, range_header)
            return
        self._reply(200, data, extra={"ETag": etag})

    def _ranged(self, data: bytes, etag: str, range_header: str) -> None:
        """Serve one ``bytes=start-end`` range as 206 + Content-Range."""
        total = len(data)
        try:
            unit, _, spec = range_header.partition("=")
            if unit.strip() != "bytes" or "," in spec:
                raise ValueError(range_header)
            start_s, _, end_s = spec.strip().partition("-")
            if start_s:
                start = int(start_s)
                end = int(end_s) if end_s else total - 1
            else:  # suffix range: the last N bytes
                start = max(total - int(end_s), 0)
                end = total - 1
        except ValueError:
            self._error(400, f"unparseable Range {range_header!r}")
            return
        if start >= total or start < 0 or end < start:
            self._reply(
                416, b"", extra={"Content-Range": f"bytes */{total}"}
            )
            return
        end = min(end, total - 1)
        chunk = data[start:end + 1]
        metrics.inc("buildcache.http_server_range_requests")
        self._reply(
            206,
            chunk,
            extra={
                "ETag": etag,
                "Content-Range": f"bytes {start}-{end}/{total}",
            },
        )

    # -- writes --------------------------------------------------------
    def do_PUT(self) -> None:
        self._drain_body()
        self._guard(self._put)

    def _put(self) -> None:
        if not self._require_writable():
            return
        key, query = self._key(), self._query()
        body = self._body()
        if query.get("op") == "stage":
            txn = self.server.get_txn(query.get("txn", ""))
            if txn is None or txn.prefix != key:
                self._error(409, f"unknown publish transaction for {key!r}")
                return
            rel = query.get("path", "")
            if not rel or rel.startswith("/") or ".." in rel.split("/"):
                self._error(400, f"staged path {rel!r} escapes the tree")
                return
            with txn.lock:
                txn.files[rel] = body
            self._reply(200, b"")
            return
        self.server.backend.put(key, body)
        self._reply(201, b"")

    def do_POST(self) -> None:
        self._drain_body()
        self._guard(self._post)

    def _post(self) -> None:
        if not self._require_writable():
            return
        key, query = self._key(), self._query()
        op = query.get("op")
        if op == "append":
            self.server.backend.append_line(key, self._body())
            self._reply(200, b"")
            return
        if op == "publish-begin":
            txn_id = self.server.begin_txn(key)
            self._reply(
                200, json.dumps({"txn": txn_id}).encode(), "application/json"
            )
            return
        if op in ("publish-commit", "publish-abort"):
            txn_id = query.get("txn", "")
            txn = self.server.get_txn(txn_id)
            if txn is None or txn.prefix != key:
                self._error(409, f"unknown publish transaction for {key!r}")
                return
            if op == "publish-abort":
                self.server.drop_txn(txn_id)
                self._reply(200, b"")
                return
            try:
                document = json.loads(self._body() or b"{}")
                dirs = [str(d) for d in document.get("dirs", [])]
            except (json.JSONDecodeError, AttributeError):
                self._error(400, "publish-commit body must be JSON")
                return
            with txn.lock:
                # the local backend's staged-swap makes the commit
                # old-tree-or-new-tree atomic on disk
                self.server.backend.publish_tree(key, dict(txn.files), dirs)
            self.server.drop_txn(txn_id)
            self._reply(200, b"")
            return
        self._error(400, f"unknown POST op {op!r}")

    def do_DELETE(self) -> None:
        self._guard(self._delete)

    def _delete(self) -> None:
        if not self._require_writable():
            return
        self.server.backend.delete(self._key())
        self._reply(204, b"")


def start_server(
    root,
    host: str = "127.0.0.1",
    port: int = 0,
    read_only: bool = False,
) -> BuildCacheHTTPServer:
    """Start a server on a daemon thread; returns it once it is bound
    (``server.url`` is immediately connectable).  Callers own shutdown:
    ``server.shutdown(); server.server_close()``."""
    server = BuildCacheHTTPServer(root, host=host, port=port, read_only=read_only)
    thread = threading.Thread(
        target=server.serve_forever, name="buildcache-serve", daemon=True
    )
    thread.start()
    logger.info("serving buildcache %s at %s", root, server.url)
    return server
