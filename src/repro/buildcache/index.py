"""Sharded, journaled buildcache index (format v2).

The paper's public cache holds ~20k specs.  A monolithic ``index.json``
pays two quadratic-ish costs at that scale: every ``save_index`` rewrites
the whole document, and every open re-parses all of it even when the
consumer only asks about one hash.  Format v2 splits the index three ways:

* ``index.json`` — a small *manifest of shards*: format version, shard
  width, and per-shard spec counts.  Opening a cache parses only this.
* ``index.d/<pp>.json`` — one shard per 2-hex-char ``dag_hash`` prefix
  (256 shards, ~80 specs each at 20k).  Shards are parsed lazily, keyed
  by the hashes actually requested, and written atomically (tmp+rename)
  so concurrent readers see old-or-new, never torn.
* ``journal.jsonl`` — an append-only journal of pushes not yet folded
  into shards.  ``push`` appends one fsynced line instead of rewriting
  anything; ``save_index`` folds the journal into the affected shards
  and truncates it.  A process killed between ``push`` and
  ``save_index`` loses nothing: the journal is replayed on open.

v1 monolithic indexes are read transparently (everything loads into
memory, exactly the old behaviour) and migrate to v2 on the next
``save``.  Setting ``REPRO_BUILDCACHE_WRITE_V1=1`` forces ``save`` to
emit the old monolithic format — the CI migration leg runs the whole
suite under it to keep the v1 read path green.

Entries in a shard are keyed by *their own* hash prefix: spec documents
under the spec's ``dag_hash``, build-spec provenance documents under the
build spec's hash, external prefixes under the owning node's hash.  A
single-spec materialization therefore touches only the shards of the
hashes it actually resolves (one per DAG node at worst), never all 256.

All persistence goes through a :class:`~repro.buildcache.backend.
StorageBackend` (``ShardedIndex(path)`` wraps the path in a
:class:`~repro.buildcache.backend.LocalFSBackend`), so the same index
logic serves a local directory, a simulated flaky remote, or any
future S3/HTTP-style backend unchanged.  Shard and manifest writes use
the backend's atomic+durable ``put`` (tmp write, fsync, rename, dir
fsync) — matching the durability the fsynced journal always had.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Set, Union

from ..obs import metrics, trace
from .backend import (
    BackendError,
    BuildCacheError,
    LocalFSBackend,
    MissingBlobError,
    StorageBackend,
    TransientBackendError,
)

__all__ = [
    "ShardedIndex",
    "BuildCacheError",
    "IndexFormatError",
    "INDEX_VERSION",
    "SHARD_WIDTH",
]

INDEX_VERSION = 2
SHARD_WIDTH = 2  # hex chars of dag_hash per shard -> 256 shards
INDEX_NAME = "index.json"
SHARD_DIR = "index.d"
JOURNAL_NAME = "journal.jsonl"

#: the three entry tables every shard (and journal record) carries
_TABLES = ("specs", "build_specs", "external_prefixes")


class IndexFormatError(BuildCacheError):
    """Raised for corrupt or unsupported index documents."""


class _Shard:
    """One lazily-loaded hash-prefix bucket of the index."""

    __slots__ = ("prefix", "specs", "build_specs", "external_prefixes",
                 "loaded", "dirty")

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.specs: Dict[str, dict] = {}
        self.build_specs: Dict[str, dict] = {}
        self.external_prefixes: Dict[str, str] = {}
        self.loaded = False
        self.dirty = False

    def table(self, name: str) -> dict:
        return getattr(self, name)

    def is_empty(self) -> bool:
        return not (self.specs or self.build_specs or self.external_prefixes)

    def to_document(self) -> dict:
        return {
            "specs": self.specs,
            "build_specs": self.build_specs,
            "external_prefixes": self.external_prefixes,
        }


class ShardedIndex:
    """The buildcache's spec index: sharded storage + push journal.

    All reads go through per-hash accessors so only the shards hosting
    the requested hashes are parsed; ``load_all`` exists for the
    full-enumeration consumers (``all_specs``, ``__iter__``).  Thread
    safe: the parallel installer's fetch workers probe ``has_spec``
    concurrently.
    """

    def __init__(self, root: Union[Path, str, StorageBackend]):
        if isinstance(root, StorageBackend):
            self.backend = root
            self.root = getattr(root, "root", None)
        else:
            self.root = Path(root)
            self.backend = LocalFSBackend(self.root)
        #: display string for spans and error messages
        self._desc = self.backend.describe()
        self._lock = threading.RLock()
        self._shards: Dict[str, _Shard] = {}
        #: per-shard spec counts from the manifest (authoritative for
        #: unloaded shards; loaded shards are counted directly)
        self._manifest_counts: Dict[str, int] = {}
        #: shard prefixes that exist on disk (from the manifest)
        self._on_disk: Set[str] = set()
        #: True once every on-disk shard has been parsed
        self._fully_loaded = False
        self._journal_entries = 0
        self._load()

    # ------------------------------------------------------------------
    # layout (string keys into the backend; the Path properties remain
    # for local-filesystem callers and error messages)
    # ------------------------------------------------------------------
    @property
    def manifest_path(self):
        return self.root / INDEX_NAME if self.root else f"{self._desc}/{INDEX_NAME}"

    @property
    def shard_dir(self):
        return self.root / SHARD_DIR if self.root else f"{self._desc}/{SHARD_DIR}"

    @property
    def journal_path(self):
        return (
            self.root / JOURNAL_NAME if self.root else f"{self._desc}/{JOURNAL_NAME}"
        )

    @staticmethod
    def _shard_key(prefix: str) -> str:
        return f"{SHARD_DIR}/{prefix}.json"

    @staticmethod
    def shard_prefix(dag_hash: str) -> str:
        return dag_hash[:SHARD_WIDTH].lower()

    def _shard_for(self, dag_hash: str) -> _Shard:
        prefix = self.shard_prefix(dag_hash)
        shard = self._shards.get(prefix)
        if shard is None:
            shard = self._shards[prefix] = _Shard(prefix)
        return shard

    # ------------------------------------------------------------------
    # open: manifest (or v1 monolith) + journal replay
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.backend.get(INDEX_NAME))
        except MissingBlobError:
            self._fully_loaded = True  # empty cache: nothing on disk
            self._replay_journal()
            return
        except TransientBackendError:
            raise  # flaky, not corrupt: let MirrorGroup retry/degrade
        except (BackendError, json.JSONDecodeError) as e:
            raise IndexFormatError(
                f"corrupt buildcache index at {self.manifest_path}: {e}"
            ) from e
        if not isinstance(data, dict):
            raise IndexFormatError(
                f"corrupt buildcache index at {self.manifest_path}: not an object"
            )
        version = data.get("version")
        if version == 1:
            self._load_v1(data)
        elif version == INDEX_VERSION:
            self._load_manifest(data)
        else:
            raise IndexFormatError(
                f"buildcache index version {version!r} is not supported "
                f"(expected 1 or {INDEX_VERSION})"
            )
        self._replay_journal()

    def _load_v1(self, data: dict) -> None:
        """Read a monolithic v1 index into memory (transparent migrate:
        every shard becomes loaded + dirty, so the next save writes v2)."""
        with trace.span("buildcache.index_migrate", cache=self._desc) as sp:
            for table, key_kind in (
                ("specs", "specs"),
                ("build_specs", "build_specs"),
                ("external_prefixes", "external_prefixes"),
            ):
                for key, value in dict(data.get(table, {})).items():
                    shard = self._shard_for(key)
                    shard.table(key_kind)[key] = value
            for shard in self._shards.values():
                shard.loaded = True
                shard.dirty = True
            self._fully_loaded = True
            sp.set(specs=self.spec_count(), shards=len(self._shards))
        metrics.inc("buildcache.v1_migrations")

    def _load_manifest(self, data: dict) -> None:
        with trace.span("buildcache.manifest_load", cache=self._desc) as sp:
            shards = data.get("shards", {})
            if not isinstance(shards, dict):
                raise IndexFormatError(
                    f"corrupt buildcache manifest at {self.manifest_path}: "
                    "'shards' is not an object"
                )
            for prefix, entry in shards.items():
                self._on_disk.add(prefix)
                self._manifest_counts[prefix] = int(entry.get("specs", 0))
            self._fully_loaded = not self._on_disk
            sp.set(shards=len(self._on_disk), specs=sum(self._manifest_counts.values()))

    def _replay_journal(self) -> None:
        """Fold unflushed pushes back into the in-memory overlay.

        Journal records land in their shards as *loaded-or-overlay*
        entries: a shard that is not yet parsed keeps its journal
        entries in memory and merges the on-disk document underneath
        when (if) it is eventually loaded.
        """
        try:
            journal = self.backend.get(JOURNAL_NAME)
        except MissingBlobError:
            return
        with trace.span("buildcache.journal_replay", cache=self._desc) as sp:
            entries = 0
            for line in journal.decode().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # a torn final line is the expected crash artifact:
                    # everything before it is intact, so keep going
                    metrics.inc("buildcache.journal_torn_lines")
                    continue
                self._apply_record(record, mark_dirty=True)
                entries += 1
            self._journal_entries = entries
            sp.set(entries=entries)
        metrics.inc("buildcache.journal_replays")

    def _apply_record(self, record: dict, mark_dirty: bool) -> None:
        for table in _TABLES:
            for key, value in dict(record.get(table, {})).items():
                shard = self._shard_for(key)
                shard.table(table)[key] = value
                if mark_dirty:
                    shard.dirty = True

    # ------------------------------------------------------------------
    # lazy shard loading
    # ------------------------------------------------------------------
    def _ensure_loaded(self, dag_hash: str) -> _Shard:
        prefix = self.shard_prefix(dag_hash)
        with self._lock:
            shard = self._shard_for(dag_hash)
            if shard.loaded or prefix not in self._on_disk:
                shard.loaded = True
                return shard
            self._load_shard(shard)
            return shard

    def _load_shard(self, shard: _Shard) -> None:
        key = self._shard_key(shard.prefix)
        with trace.span("buildcache.shard_load", shard=shard.prefix) as sp:
            try:
                document = json.loads(self.backend.get(key))
            except MissingBlobError:
                document = {}
            except TransientBackendError:
                raise
            except (BackendError, json.JSONDecodeError) as e:
                raise IndexFormatError(
                    f"corrupt buildcache index shard {self._desc}/{key}: {e}"
                ) from e
            # journal overlay entries win over the on-disk document
            for table in _TABLES:
                disk = dict(document.get(table, {}))
                disk.update(shard.table(table))
                setattr(shard, table, disk)
            shard.loaded = True
            sp.set(specs=len(shard.specs))
        metrics.inc("buildcache.shard_loads")

    def load_all(self) -> None:
        """Parse every on-disk shard (full-enumeration consumers only)."""
        with self._lock:
            if self._fully_loaded:
                return
            for prefix in sorted(self._on_disk):
                shard = self._shards.get(prefix)
                if shard is None:
                    shard = self._shards[prefix] = _Shard(prefix)
                if not shard.loaded:
                    self._load_shard(shard)
            self._fully_loaded = True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def has_spec(self, dag_hash: str) -> bool:
        return self.get_spec(dag_hash) is not None

    def get_spec(self, dag_hash: str) -> Optional[dict]:
        shard = self._ensure_loaded(dag_hash)
        return shard.specs.get(dag_hash)

    def get_build_spec(self, dag_hash: str) -> Optional[dict]:
        shard = self._ensure_loaded(dag_hash)
        return shard.build_specs.get(dag_hash)

    def external_prefix(self, node_hash: str) -> Optional[str]:
        shard = self._ensure_loaded(node_hash)
        return shard.external_prefixes.get(node_hash)

    def spec_count(self) -> int:
        """Number of indexed specs, without parsing clean shards."""
        with self._lock:
            total = 0
            for prefix in self._on_disk | set(self._shards):
                shard = self._shards.get(prefix)
                if shard is not None and (shard.loaded or shard.dirty):
                    if not shard.loaded and prefix in self._on_disk:
                        # journal overlay on an unparsed shard: the disk
                        # document may already hold some of these hashes,
                        # so counting needs the real union
                        self._load_shard(shard)
                    total += len(shard.specs)
                else:
                    total += self._manifest_counts.get(prefix, 0)
            return total

    def spec_hashes(self) -> Iterator[str]:
        """All indexed spec hashes (parses every shard)."""
        self.load_all()
        with self._lock:
            hashes = sorted(
                h for shard in self._shards.values() for h in shard.specs
            )
        return iter(hashes)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record_push(
        self,
        specs: Dict[str, dict],
        build_specs: Dict[str, dict],
        external_prefixes: Dict[str, str],
    ) -> None:
        """Apply one push to the in-memory overlay and append it to the
        durable journal (fsynced: survives an immediate process kill)."""
        record = {
            "specs": specs,
            "build_specs": build_specs,
            "external_prefixes": external_prefixes,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._apply_record(record, mark_dirty=True)
            with trace.span("buildcache.journal_append") as sp:
                self.backend.append_line(JOURNAL_NAME, line.encode())
                self._journal_entries += 1
                sp.set(bytes=len(line))
        metrics.inc("buildcache.journal_appends")

    def save(self) -> int:
        """Fold the journal into shards, write dirty shards atomically,
        rewrite the manifest, and truncate the journal.

        Returns the number of shard files written.  With the
        ``REPRO_BUILDCACHE_WRITE_V1`` env knob set, emits the old
        monolithic v1 document instead (the CI migration leg).
        """
        if os.environ.get("REPRO_BUILDCACHE_WRITE_V1"):
            return self._save_v1()
        with self._lock:
            written = 0
            for prefix in sorted(self._shards):
                shard = self._shards[prefix]
                if not shard.dirty:
                    continue
                if not shard.loaded and prefix in self._on_disk:
                    self._load_shard(shard)  # merge under the overlay
                with trace.span("buildcache.shard_save", shard=prefix) as sp:
                    payload = json.dumps(
                        shard.to_document(), sort_keys=True, indent=1
                    ).encode()
                    self.backend.put(self._shard_key(prefix), payload)
                    sp.set(specs=len(shard.specs), bytes=len(payload))
                shard.dirty = False
                self._on_disk.add(prefix)
                self._manifest_counts[prefix] = len(shard.specs)
                written += 1
                metrics.inc("buildcache.shard_saves")
            manifest = {
                "version": INDEX_VERSION,
                "shard_width": SHARD_WIDTH,
                "shards": {
                    prefix: {"specs": self._manifest_counts.get(prefix, 0)}
                    for prefix in sorted(self._on_disk)
                },
            }
            self.backend.put(
                INDEX_NAME,
                json.dumps(manifest, sort_keys=True, indent=1).encode(),
            )
            self._truncate_journal()
            return written

    def _save_v1(self) -> int:
        """Write the legacy monolithic document (env-gated compat path)."""
        self.load_all()
        with self._lock:
            document = {"version": 1, "specs": {}, "build_specs": {},
                        "external_prefixes": {}}
            for shard in self._shards.values():
                for table in _TABLES:
                    document[table].update(shard.table(table))
            self.backend.put(
                INDEX_NAME,
                json.dumps(document, sort_keys=True, indent=1).encode(),
            )
            # the monolith subsumes the journal; shard files, if any,
            # are ignored by the v1 read path and rewritten on the next
            # v2 save (every shard stays marked dirty)
            for shard in self._shards.values():
                shard.dirty = True
            self._on_disk.clear()
            self._manifest_counts.clear()
            self._truncate_journal()
            return 1

    def _truncate_journal(self) -> None:
        self.backend.delete(JOURNAL_NAME)
        self._journal_entries = 0

    # ------------------------------------------------------------------
    @property
    def journal_entries(self) -> int:
        return self._journal_entries

    def __repr__(self) -> str:
        return (
            f"<ShardedIndex {self._desc} shards={len(self._shards)} "
            f"journal={self._journal_entries}>"
        )
