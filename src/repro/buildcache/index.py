"""Sharded, journaled, summarized buildcache index (format v3).

The paper's public cache holds ~20k specs.  A monolithic ``index.json``
pays two quadratic-ish costs at that scale: every ``save_index`` rewrites
the whole document, and every open re-parses all of it even when the
consumer only asks about one hash.  Format v2 split the index three ways:

* ``index.json`` — a small *manifest of shards*: format version, shard
  width, and per-shard spec counts.  Opening a cache parses only this.
* ``index.d/<pp>.json`` — one shard per 2-hex-char ``dag_hash`` prefix
  (256 shards, ~80 specs each at 20k).  Shards are parsed lazily, keyed
  by the hashes actually requested, and written atomically (tmp+rename)
  so concurrent readers see old-or-new, never torn.
* ``journal.jsonl`` — an append-only journal of pushes not yet folded
  into shards.  ``push`` appends one fsynced line instead of rewriting
  anything; ``save_index`` folds the journal into the affected shards
  and truncates it.  A process killed between ``push`` and
  ``save_index`` loses nothing: the journal is replayed on open.

Format v3 adds the *federated-mirror* layer on top (ROADMAP "kill the
741 ms union"): negative lookups and union enumeration must not walk
every shard of every mirror.

* Every shard gets a **content digest** (sha256 of its canonical
  document) recorded in the manifest, and the manifest itself gets a
  **manifest digest** over the sorted per-shard digests.  A mirror
  whose manifest digest is unchanged provably has unchanged content —
  consumers (``MirrorGroup``, :meth:`ShardedIndex.refresh`) never
  re-walk it, and a changed mirror reloads only the shards whose
  digests moved.
* ``index.sum.json`` — a per-shard **summary** sidecar (sorted-hash
  table by default, optionally a Bloom filter; see
  :mod:`repro.buildcache.summary`) written atomically alongside
  ``index.json`` and stamped with the manifest digest.  Negative
  lookups are answered from the summary in O(1) without loading any
  shard; with the exact (sorted, full-hash) kind the whole spec-hash
  set enumerates from the summary alone, so a mirror union never
  parses a shard.  A summary whose digest does not match the manifest
  (a crash between the two writes, or a foreign writer) is ignored —
  summaries make lookups faster, never wrong.

v1 monolithic and v2 digest-less manifests are read transparently and
migrate to v3 on the next ``save``.  ``REPRO_BUILDCACHE_WRITE_V2=1``
forces ``save`` to emit digest-less v2 (and drop the summary sidecar);
``REPRO_BUILDCACHE_WRITE_V1=1`` still emits the original monolith —
the CI compat legs run the suite under both knobs.

Entries in a shard are keyed by *their own* hash prefix: spec documents
under the spec's ``dag_hash``, build-spec provenance documents under the
build spec's hash, external prefixes under the owning node's hash.  A
single-spec materialization therefore touches only the shards of the
hashes it actually resolves (one per DAG node at worst), never all 256.

All persistence goes through a :class:`~repro.buildcache.backend.
StorageBackend` (``ShardedIndex(path)`` wraps the path in a
:class:`~repro.buildcache.backend.LocalFSBackend`), so the same index
logic serves a local directory, a simulated flaky remote, or any
future S3/HTTP-style backend unchanged.  Shard, summary, and manifest
writes use the backend's atomic+durable ``put`` (tmp write, fsync,
rename, dir fsync) — matching the durability the fsynced journal
always had.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..obs import metrics, trace
from .backend import (
    BackendError,
    BuildCacheError,
    LocalFSBackend,
    MissingBlobError,
    StorageBackend,
    TransientBackendError,
)
from .summary import (
    ShardSummary,
    SummaryFormatError,
    build_summary,
    summary_from_document,
    summary_kind_from_env,
)

__all__ = [
    "ShardedIndex",
    "BuildCacheError",
    "IndexFormatError",
    "INDEX_VERSION",
    "SHARD_WIDTH",
    "SUMMARY_NAME",
]

INDEX_VERSION = 3
SHARD_WIDTH = 2  # hex chars of dag_hash per shard -> 256 shards
INDEX_NAME = "index.json"
SHARD_DIR = "index.d"
JOURNAL_NAME = "journal.jsonl"
SUMMARY_NAME = "index.sum.json"

#: the three entry tables every shard (and journal record) carries
_TABLES = ("specs", "build_specs", "external_prefixes")


class IndexFormatError(BuildCacheError):
    """Raised for corrupt or unsupported index documents."""


def _canonical(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True, indent=1).encode()


class _Shard:
    """One lazily-loaded hash-prefix bucket of the index."""

    __slots__ = ("prefix", "specs", "build_specs", "external_prefixes",
                 "loaded", "dirty")

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.specs: Dict[str, dict] = {}
        self.build_specs: Dict[str, dict] = {}
        self.external_prefixes: Dict[str, str] = {}
        self.loaded = False
        self.dirty = False

    def table(self, name: str) -> dict:
        return getattr(self, name)

    def is_empty(self) -> bool:
        return not (self.specs or self.build_specs or self.external_prefixes)

    def reset(self) -> None:
        """Drop parsed content (delta reload of an externally changed
        shard); only valid for clean shards — a dirty shard's tables
        carry journal overlay entries that must survive."""
        self.specs = {}
        self.build_specs = {}
        self.external_prefixes = {}
        self.loaded = False

    def to_document(self) -> dict:
        return {
            "specs": self.specs,
            "build_specs": self.build_specs,
            "external_prefixes": self.external_prefixes,
        }


class ShardedIndex:
    """The buildcache's spec index: sharded storage + push journal +
    per-shard summaries.

    All reads go through per-hash accessors so only the shards hosting
    the requested hashes are parsed; negative ``has_spec`` probes are
    answered from the summary sidecar without touching any shard, and
    ``load_all`` remains for consumers that need full documents.
    Thread safe: the parallel installer's fetch workers probe
    ``has_spec`` concurrently.
    """

    def __init__(self, root: Union[Path, str, StorageBackend]):
        if isinstance(root, StorageBackend):
            self.backend = root
            self.root = getattr(root, "root", None)
        else:
            self.root = Path(root)
            self.backend = LocalFSBackend(self.root)
        #: display string for spans and error messages
        self._desc = self.backend.describe()
        self._lock = threading.RLock()
        self._shards: Dict[str, _Shard] = {}
        #: per-shard spec counts from the manifest (authoritative for
        #: unloaded shards; loaded shards are counted directly)
        self._manifest_counts: Dict[str, int] = {}
        #: per-shard content digests from a v3 manifest
        self._shard_digests: Dict[str, str] = {}
        #: the v3 manifest digest (None for v1/v2 indexes)
        self._manifest_digest: Optional[str] = None
        #: shard prefixes that exist on disk (from the manifest)
        self._on_disk: Set[str] = set()
        #: True once every on-disk shard has been parsed
        self._fully_loaded = False
        #: parsed summary sidecar: None = not loaded yet, {} = absent/
        #: stale/disabled, else prefix -> ShardSummary
        self._summaries: Optional[Dict[str, ShardSummary]] = None
        #: monotonic in-memory change counter: bumped by every push,
        #: save, and refresh so :meth:`state_token` changes whenever a
        #: cached merged view over this index could be stale
        self._revision = 0
        self._journal_entries = 0
        self._load()

    # ------------------------------------------------------------------
    # layout (string keys into the backend; the Path properties remain
    # for local-filesystem callers and error messages)
    # ------------------------------------------------------------------
    @property
    def manifest_path(self):
        return self.root / INDEX_NAME if self.root else f"{self._desc}/{INDEX_NAME}"

    @property
    def shard_dir(self):
        return self.root / SHARD_DIR if self.root else f"{self._desc}/{SHARD_DIR}"

    @property
    def journal_path(self):
        return (
            self.root / JOURNAL_NAME if self.root else f"{self._desc}/{JOURNAL_NAME}"
        )

    @property
    def manifest_digest(self) -> Optional[str]:
        """The v3 manifest digest (None for v1/v2 on-disk formats)."""
        return self._manifest_digest

    def state_token(self) -> Tuple[Optional[str], int]:
        """A cheap, in-memory token that changes whenever this index's
        visible content may have changed: (manifest digest, revision).

        The revision half covers in-process mutation (``record_push``
        without ``save``: the journal overlay changes what lookups see
        long before any manifest digest moves); the digest half covers
        cross-process change picked up by :meth:`refresh`.  Merged-view
        caches key on this tuple — an unchanged token means a cached
        view is still exact.
        """
        return (self._manifest_digest, self._revision)

    def content_digest(self) -> str:
        """A stable digest of the indexed spec set, cheap when possible.

        With a current v3 manifest (no unsaved journal overlay or
        pushes pending) this is O(1): the manifest digest is computed
        over the per-shard sha256 lines, which cover every spec
        document.  Otherwise it falls back to hashing the exact
        spec-hash set (summary-served when the sidecars can prove it) —
        still shard-read-free in the common case.  Spec hashes are DAG
        content hashes, so the set fully determines the reusable specs;
        the two schemes are prefixed so they can never collide.  The
        concretizer's ground cache keys reuse sets on this instead of
        re-hashing 20k spec DAGs per solve.
        """
        with self._lock:
            dirty = any(shard.dirty for shard in self._shards.values())
            if self._manifest_digest is not None and not dirty:
                return f"manifest:{self._manifest_digest}"
        hashes = self.spec_hash_set()
        if hashes is None:
            hashes = frozenset(self.spec_hashes())
        digest = hashlib.sha256()
        for spec_hash in sorted(hashes):
            digest.update(spec_hash.encode())
            digest.update(b"\n")
        return f"hashes:{digest.hexdigest()}"

    @staticmethod
    def _shard_key(prefix: str) -> str:
        return f"{SHARD_DIR}/{prefix}.json"

    @staticmethod
    def shard_prefix(dag_hash: str) -> str:
        return dag_hash[:SHARD_WIDTH].lower()

    def _shard_for(self, dag_hash: str) -> _Shard:
        prefix = self.shard_prefix(dag_hash)
        shard = self._shards.get(prefix)
        if shard is None:
            shard = self._shards[prefix] = _Shard(prefix)
        return shard

    # ------------------------------------------------------------------
    # open: manifest (or v1 monolith) + journal replay
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.backend.get(INDEX_NAME))
        except MissingBlobError:
            self._fully_loaded = True  # empty cache: nothing on disk
            self._replay_journal()
            return
        except TransientBackendError:
            raise  # flaky, not corrupt: let MirrorGroup retry/degrade
        except (BackendError, json.JSONDecodeError) as e:
            raise IndexFormatError(
                f"corrupt buildcache index at {self.manifest_path}: {e}"
            ) from e
        if not isinstance(data, dict):
            raise IndexFormatError(
                f"corrupt buildcache index at {self.manifest_path}: not an object"
            )
        version = data.get("version")
        if version == 1:
            self._load_v1(data)
        elif version in (2, INDEX_VERSION):
            self._load_manifest(data)
        else:
            raise IndexFormatError(
                f"buildcache index version {version!r} is not supported "
                f"(expected 1, 2, or {INDEX_VERSION})"
            )
        self._replay_journal()

    def _load_v1(self, data: dict) -> None:
        """Read a monolithic v1 index into memory (transparent migrate:
        every shard becomes loaded + dirty, so the next save writes v3)."""
        with trace.span("buildcache.index_migrate", cache=self._desc) as sp:
            for table, key_kind in (
                ("specs", "specs"),
                ("build_specs", "build_specs"),
                ("external_prefixes", "external_prefixes"),
            ):
                for key, value in dict(data.get(table, {})).items():
                    shard = self._shard_for(key)
                    shard.table(key_kind)[key] = value
            for shard in self._shards.values():
                shard.loaded = True
                shard.dirty = True
            self._fully_loaded = True
            sp.set(specs=self.spec_count(), shards=len(self._shards))
        metrics.inc("buildcache.v1_migrations")

    @staticmethod
    def _parse_manifest_shards(data: dict, where) -> dict:
        shards = data.get("shards", {})
        if not isinstance(shards, dict):
            raise IndexFormatError(
                f"corrupt buildcache manifest at {where}: "
                "'shards' is not an object"
            )
        return shards

    def _load_manifest(self, data: dict) -> None:
        with trace.span("buildcache.manifest_load", cache=self._desc) as sp:
            shards = self._parse_manifest_shards(data, self.manifest_path)
            for prefix, entry in shards.items():
                self._on_disk.add(prefix)
                self._manifest_counts[prefix] = int(entry.get("specs", 0))
                digest = entry.get("digest")
                if digest:
                    self._shard_digests[prefix] = str(digest)
            if data.get("version") == INDEX_VERSION:
                self._manifest_digest = data.get("digest") or None
            self._fully_loaded = not self._on_disk
            sp.set(shards=len(self._on_disk), specs=sum(self._manifest_counts.values()))

    def _replay_journal(self) -> None:
        """Fold unflushed pushes back into the in-memory overlay.

        Journal records land in their shards as *loaded-or-overlay*
        entries: a shard that is not yet parsed keeps its journal
        entries in memory and merges the on-disk document underneath
        when (if) it is eventually loaded.
        """
        try:
            journal = self.backend.get(JOURNAL_NAME)
        except MissingBlobError:
            return
        with trace.span("buildcache.journal_replay", cache=self._desc) as sp:
            entries = 0
            for line in journal.decode().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # a torn final line is the expected crash artifact:
                    # everything before it is intact, so keep going
                    metrics.inc("buildcache.journal_torn_lines")
                    continue
                self._apply_record(record, mark_dirty=True)
                entries += 1
            self._journal_entries = entries
            if entries:
                self._revision += 1
            sp.set(entries=entries)
        metrics.inc("buildcache.journal_replays")

    def _apply_record(self, record: dict, mark_dirty: bool) -> None:
        for table in _TABLES:
            for key, value in dict(record.get(table, {})).items():
                shard = self._shard_for(key)
                shard.table(table)[key] = value
                if mark_dirty:
                    shard.dirty = True

    # ------------------------------------------------------------------
    # delta refresh: pick up another writer's save without a reopen
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Re-read the manifest and invalidate only changed shards.

        Returns the number of shards whose cached state was dropped
        (0 = the manifest digest was unchanged, nothing was re-walked).
        Dirty shards (journal overlay entries) are never reset — their
        overlay re-merges over the fresh on-disk document on the next
        lazy load.  v1 monoliths have no manifest to diff and are left
        alone (reopen to pick up external changes).
        """
        with self._lock:
            try:
                data = json.loads(self.backend.get(INDEX_NAME))
            except MissingBlobError:
                return 0
            except TransientBackendError:
                raise
            except (BackendError, json.JSONDecodeError) as e:
                raise IndexFormatError(
                    f"corrupt buildcache index at {self.manifest_path}: {e}"
                ) from e
            if not isinstance(data, dict) or data.get("version") == 1:
                return 0
            version = data.get("version")
            if version not in (2, INDEX_VERSION):
                raise IndexFormatError(
                    f"buildcache index version {version!r} is not supported "
                    f"(expected 1, 2, or {INDEX_VERSION})"
                )
            new_digest = data.get("digest") if version == INDEX_VERSION else None
            if new_digest is not None and new_digest == self._manifest_digest:
                return 0  # provably unchanged: zero shard work
            shards = self._parse_manifest_shards(data, self.manifest_path)
            new_counts = {p: int(e.get("specs", 0)) for p, e in shards.items()}
            new_digests = {
                p: str(e["digest"]) for p, e in shards.items() if e.get("digest")
            }
            if new_digests or self._shard_digests:
                changed = {
                    p
                    for p in set(new_digests) | set(self._shard_digests)
                    if new_digests.get(p) != self._shard_digests.get(p)
                }
            else:
                # v2 manifests carry no digests: fall back to diffing
                # counts + presence (count-preserving rewrites of a
                # shard are invisible here — one reason v3 exists)
                changed = {
                    p
                    for p in set(new_counts) | set(self._manifest_counts)
                    if new_counts.get(p) != self._manifest_counts.get(p)
                }
            if not changed and new_digest == self._manifest_digest:
                return 0
            with trace.span(
                "buildcache.index_refresh", cache=self._desc
            ) as sp:
                dropped = 0
                for prefix in changed:
                    shard = self._shards.get(prefix)
                    if shard is None or shard.dirty:
                        continue  # never parsed, or overlay re-merges
                    if shard.loaded:
                        shard.reset()
                        dropped += 1
                self._on_disk = set(shards)
                self._manifest_counts = new_counts
                self._shard_digests = new_digests
                self._manifest_digest = new_digest
                self._summaries = None  # sidecar re-validated lazily
                self._fully_loaded = all(
                    p in self._shards and self._shards[p].loaded
                    for p in self._on_disk
                )
                self._revision += 1
                sp.set(changed=len(changed), dropped=dropped)
            metrics.inc("buildcache.index_refreshes")
            metrics.inc("buildcache.shards_invalidated", len(changed))
            return len(changed)

    # ------------------------------------------------------------------
    # lazy shard loading
    # ------------------------------------------------------------------
    def _ensure_loaded(self, dag_hash: str) -> _Shard:
        prefix = self.shard_prefix(dag_hash)
        with self._lock:
            shard = self._shard_for(dag_hash)
            if shard.loaded or prefix not in self._on_disk:
                shard.loaded = True
                return shard
            self._load_shard(shard)
            return shard

    def _load_shard(self, shard: _Shard) -> None:
        key = self._shard_key(shard.prefix)
        with trace.span("buildcache.shard_load", shard=shard.prefix) as sp:
            try:
                document = json.loads(self.backend.get(key))
            except MissingBlobError:
                document = {}
            except TransientBackendError:
                raise
            except (BackendError, json.JSONDecodeError) as e:
                raise IndexFormatError(
                    f"corrupt buildcache index shard {self._desc}/{key}: {e}"
                ) from e
            # journal overlay entries win over the on-disk document
            for table in _TABLES:
                disk = dict(document.get(table, {}))
                disk.update(shard.table(table))
                setattr(shard, table, disk)
            shard.loaded = True
            sp.set(specs=len(shard.specs))
        metrics.inc("buildcache.shard_loads")

    def load_all(self) -> None:
        """Parse every on-disk shard (full-document consumers only)."""
        with self._lock:
            if self._fully_loaded:
                return
            for prefix in sorted(self._on_disk):
                shard = self._shards.get(prefix)
                if shard is None:
                    shard = self._shards[prefix] = _Shard(prefix)
                if not shard.loaded:
                    self._load_shard(shard)
            self._fully_loaded = True

    # ------------------------------------------------------------------
    # summary sidecar
    # ------------------------------------------------------------------
    def _load_summaries(self) -> Dict[str, ShardSummary]:
        """The parsed summary sidecar, or ``{}`` when unusable.

        Unusable covers: no v3 manifest digest to validate against, the
        sidecar is absent, its digest does not match the manifest (a
        crash between the sidecar and manifest writes, or a foreign
        writer), or it fails to parse.  All of those degrade to the
        plain shard-read path — a summary is an accelerator, never an
        authority the shard documents don't confirm.
        """
        with self._lock:
            if self._summaries is not None:
                return self._summaries
            self._summaries = {}
            if self._manifest_digest is None:
                return self._summaries
            try:
                data = json.loads(self.backend.get(SUMMARY_NAME))
            except MissingBlobError:
                return self._summaries
            except TransientBackendError:
                raise
            except (BackendError, json.JSONDecodeError):
                metrics.inc("buildcache.summary_corrupt")
                return self._summaries
            with trace.span("buildcache.summary_load", cache=self._desc) as sp:
                if (
                    not isinstance(data, dict)
                    or data.get("digest") != self._manifest_digest
                ):
                    metrics.inc("buildcache.summary_stale")
                    sp.set(stale=True)
                    return self._summaries
                parsed: Dict[str, ShardSummary] = {}
                try:
                    for prefix, document in dict(data.get("shards", {})).items():
                        parsed[prefix] = summary_from_document(document)
                except (SummaryFormatError, AttributeError, TypeError):
                    metrics.inc("buildcache.summary_corrupt")
                    return self._summaries
                self._summaries = parsed
                sp.set(shards=len(parsed))
            return self._summaries

    def summary_probe(self, dag_hash: str) -> Optional[bool]:
        """What the summary says about ``dag_hash``: ``False`` =
        provably absent from the shard's saved content, ``True`` =
        maybe present (confirm with a shard read), ``None`` = no usable
        summary for that shard."""
        prefix = self.shard_prefix(dag_hash)
        summaries = self._load_summaries()
        entry = summaries.get(prefix)
        if entry is None:
            return None
        return entry.contains(dag_hash)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def has_spec(self, dag_hash: str) -> bool:
        prefix = self.shard_prefix(dag_hash)
        with self._lock:
            shard = self._shards.get(prefix)
            if shard is not None:
                if dag_hash in shard.specs:
                    return True
                if shard.loaded:
                    return False
            if prefix not in self._on_disk:
                return False
        # the shard exists on disk but is not parsed: let the summary
        # answer the (common) negative case without any shard read
        verdict = self.summary_probe(dag_hash)
        if verdict is False:
            metrics.inc("buildcache.summary_hits")
            return False
        present = self.get_spec(dag_hash) is not None
        if verdict is True and not present:
            metrics.inc("buildcache.summary_false_positives")
        return present

    def get_spec(self, dag_hash: str) -> Optional[dict]:
        shard = self._ensure_loaded(dag_hash)
        return shard.specs.get(dag_hash)

    def get_build_spec(self, dag_hash: str) -> Optional[dict]:
        shard = self._ensure_loaded(dag_hash)
        return shard.build_specs.get(dag_hash)

    def external_prefix(self, node_hash: str) -> Optional[str]:
        shard = self._ensure_loaded(node_hash)
        return shard.external_prefixes.get(node_hash)

    def spec_count(self) -> int:
        """Number of indexed specs, without parsing clean shards."""
        with self._lock:
            total = 0
            for prefix in self._on_disk | set(self._shards):
                shard = self._shards.get(prefix)
                if shard is not None and (shard.loaded or shard.dirty):
                    if not shard.loaded and prefix in self._on_disk:
                        # journal overlay on an unparsed shard: the disk
                        # document may already hold some of these hashes,
                        # so counting needs the real union
                        self._load_shard(shard)
                    total += len(shard.specs)
                else:
                    total += self._manifest_counts.get(prefix, 0)
            return total

    def spec_hash_set(self) -> Optional[frozenset]:
        """The exact set of indexed spec hashes without parsing shards,
        or ``None`` when the summaries cannot prove it.

        The set is the union of every in-memory shard's spec table
        (loaded content and journal overlay entries alike — this is
        what keeps ``len(group)`` exact after a ``push`` that has not
        been ``save_index``-ed) and, for every still-unparsed on-disk
        shard, that shard's *enumerable* summary.  One non-enumerable
        shard (Bloom summaries, missing sidecar) means the answer
        would be a guess, so the caller gets ``None`` and falls back
        to :meth:`spec_hashes`' full walk.
        """
        with self._lock:
            hashes: Set[str] = set()
            for shard in self._shards.values():
                hashes.update(shard.specs)
            if self._fully_loaded:
                return frozenset(hashes)
            summaries = self._load_summaries()
            for prefix in self._on_disk:
                shard = self._shards.get(prefix)
                if shard is not None and shard.loaded:
                    continue
                entry = summaries.get(prefix)
                if entry is None or not entry.enumerable:
                    return None
                hashes.update(entry.hashes())
            metrics.inc("buildcache.summary_enumerations")
            return frozenset(hashes)

    def spec_hashes(self) -> Iterator[str]:
        """All indexed spec hashes, served from the exact summary when
        one exists (zero shard reads) and a full shard walk otherwise."""
        hashes = self.spec_hash_set()
        if hashes is None:
            self.load_all()
            with self._lock:
                hashes = frozenset(
                    h for shard in self._shards.values() for h in shard.specs
                )
        return iter(sorted(hashes))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record_push(
        self,
        specs: Dict[str, dict],
        build_specs: Dict[str, dict],
        external_prefixes: Dict[str, str],
    ) -> None:
        """Apply one push to the in-memory overlay and append it to the
        durable journal (fsynced: survives an immediate process kill)."""
        record = {
            "specs": specs,
            "build_specs": build_specs,
            "external_prefixes": external_prefixes,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._apply_record(record, mark_dirty=True)
            with trace.span("buildcache.journal_append") as sp:
                self.backend.append_line(JOURNAL_NAME, line.encode())
                self._journal_entries += 1
                self._revision += 1
                sp.set(bytes=len(line))
        metrics.inc("buildcache.journal_appends")

    def save(self) -> int:
        """Fold the journal into shards, write dirty shards atomically,
        rewrite the summary sidecar and manifest, and truncate the
        journal.

        Returns the number of shard files written.  The
        ``REPRO_BUILDCACHE_WRITE_V2`` env knob emits the digest-less v2
        manifest (no summary sidecar) and ``REPRO_BUILDCACHE_WRITE_V1``
        the original monolith — the CI compat legs.
        """
        if os.environ.get("REPRO_BUILDCACHE_WRITE_V1"):
            return self._save_v1()
        if os.environ.get("REPRO_BUILDCACHE_WRITE_V2"):
            return self._save_v2()
        return self._save_v3()

    def _write_dirty_shards(self) -> int:
        """Fold + write every dirty shard; returns shards written and
        records fresh content digests for them."""
        written = 0
        for prefix in sorted(self._shards):
            shard = self._shards[prefix]
            if not shard.dirty:
                continue
            if not shard.loaded and prefix in self._on_disk:
                self._load_shard(shard)  # merge under the overlay
            with trace.span("buildcache.shard_save", shard=prefix) as sp:
                payload = _canonical(shard.to_document())
                self.backend.put(self._shard_key(prefix), payload)
                sp.set(specs=len(shard.specs), bytes=len(payload))
            shard.dirty = False
            shard.loaded = True
            self._on_disk.add(prefix)
            self._manifest_counts[prefix] = len(shard.specs)
            self._shard_digests[prefix] = hashlib.sha256(payload).hexdigest()
            written += 1
            metrics.inc("buildcache.shard_saves")
        return written

    def _save_v3(self) -> int:
        with self._lock:
            previous_summaries = self._load_summaries()
            written = self._write_dirty_shards()
            # v2 -> v3 migration: clean on-disk shards have no recorded
            # digest, so read them once to digest (and summarize) their
            # canonical content
            for prefix in sorted(self._on_disk):
                if prefix in self._shard_digests:
                    continue
                shard = self._shards.get(prefix)
                if shard is None:
                    shard = self._shards[prefix] = _Shard(prefix)
                if not shard.loaded:
                    self._load_shard(shard)
                payload = _canonical(shard.to_document())
                self._shard_digests[prefix] = hashlib.sha256(payload).hexdigest()
                self._manifest_counts[prefix] = len(shard.specs)

            manifest_digest = self._digest_of(self._shard_digests)
            kind = summary_kind_from_env()
            if kind is None:
                self.backend.delete(SUMMARY_NAME)
                self._summaries = {}
            else:
                summaries: Dict[str, ShardSummary] = {}
                for prefix in sorted(self._on_disk):
                    shard = self._shards.get(prefix)
                    if shard is not None and shard.loaded:
                        summaries[prefix] = build_summary(shard.specs, kind)
                        continue
                    # clean, unparsed shard: its digest is unchanged, so
                    # the previous sidecar entry (same kind) still holds
                    previous = previous_summaries.get(prefix)
                    if previous is not None and previous.kind == kind:
                        summaries[prefix] = previous
                        continue
                    shard = self._shards.setdefault(prefix, _Shard(prefix))
                    self._load_shard(shard)
                    summaries[prefix] = build_summary(shard.specs, kind)
                with trace.span(
                    "buildcache.summary_save", cache=self._desc
                ) as sp:
                    sidecar = {
                        "version": INDEX_VERSION,
                        "digest": manifest_digest,
                        "kind": kind,
                        "shards": {
                            prefix: summary.to_document()
                            for prefix, summary in summaries.items()
                        },
                    }
                    payload = _canonical(sidecar)
                    self.backend.put(SUMMARY_NAME, payload)
                    sp.set(shards=len(summaries), bytes=len(payload))
                self._summaries = summaries
                metrics.inc("buildcache.summary_saves")

            manifest = {
                "version": INDEX_VERSION,
                "shard_width": SHARD_WIDTH,
                "digest": manifest_digest,
                "shards": {
                    prefix: {
                        "specs": self._manifest_counts.get(prefix, 0),
                        "digest": self._shard_digests[prefix],
                    }
                    for prefix in sorted(self._on_disk)
                },
            }
            self.backend.put(INDEX_NAME, _canonical(manifest))
            self._manifest_digest = manifest_digest
            self._revision += 1
            self._truncate_journal()
            return written

    @staticmethod
    def _digest_of(shard_digests: Dict[str, str]) -> str:
        lines = "\n".join(
            f"{prefix}:{digest}" for prefix, digest in sorted(shard_digests.items())
        )
        return hashlib.sha256(lines.encode()).hexdigest()

    def _save_v2(self) -> int:
        """Write the digest-less v2 manifest (env-gated compat path for
        readers that predate format v3; drops the summary sidecar)."""
        with self._lock:
            written = self._write_dirty_shards()
            manifest = {
                "version": 2,
                "shard_width": SHARD_WIDTH,
                "shards": {
                    prefix: {"specs": self._manifest_counts.get(prefix, 0)}
                    for prefix in sorted(self._on_disk)
                },
            }
            self.backend.put(INDEX_NAME, _canonical(manifest))
            self.backend.delete(SUMMARY_NAME)
            # digests were computed as a side effect of writing; a v2
            # manifest must not advertise v3 state
            self._shard_digests.clear()
            self._manifest_digest = None
            self._summaries = {}
            self._revision += 1
            self._truncate_journal()
            return written

    def _save_v1(self) -> int:
        """Write the legacy monolithic document (env-gated compat path)."""
        self.load_all()
        with self._lock:
            document = {"version": 1, "specs": {}, "build_specs": {},
                        "external_prefixes": {}}
            for shard in self._shards.values():
                for table in _TABLES:
                    document[table].update(shard.table(table))
            self.backend.put(INDEX_NAME, _canonical(document))
            self.backend.delete(SUMMARY_NAME)
            # the monolith subsumes the journal; shard files, if any,
            # are ignored by the v1 read path and rewritten on the next
            # v3 save (every shard stays marked dirty)
            for shard in self._shards.values():
                shard.dirty = True
            self._on_disk.clear()
            self._manifest_counts.clear()
            self._shard_digests.clear()
            self._manifest_digest = None
            self._summaries = {}
            self._revision += 1
            self._truncate_journal()
            return 1

    def _truncate_journal(self) -> None:
        self.backend.delete(JOURNAL_NAME)
        self._journal_entries = 0

    # ------------------------------------------------------------------
    @property
    def journal_entries(self) -> int:
        return self._journal_entries

    def __repr__(self) -> str:
        return (
            f"<ShardedIndex {self._desc} shards={len(self._shards)} "
            f"journal={self._journal_entries}>"
        )
