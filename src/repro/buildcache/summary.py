"""Per-shard index summaries: O(1) negative lookups without shard reads.

The federated-mirror problem (ROADMAP "kill the 741 ms union"): every
``MirrorGroup`` miss-path lookup and every union enumeration walks every
mirror's full shard set, so the cost of answering "no, this hash is not
cached anywhere" grows with mirrors × specs — exactly the cost the
paper's binary-reuse story says must stay off the concretization hot
path.  Guix/Nix substitute servers answer the same question from a
locally cached narinfo/summary before any remote round-trip; this
module is that summary for the sharded index.

A summary is a compact, self-describing membership structure over one
shard's spec hashes.  Two kinds ship:

* :class:`SortedHashSummary` — the sorted-hash table.  At full hash
  length it is *exact*: membership has no false positives and the
  summary can enumerate its hashes, which lets a ``MirrorGroup`` build
  its merged union view without parsing a single shard document.  A
  truncated ``prefix_len`` trades exactness (prefix collisions become
  false positives) for size.
* :class:`BloomSummary` — a classic Bloom filter with tunable bits per
  key and hash count.  Much smaller, never enumerable, and a false
  positive simply falls through to the authoritative shard read — a
  summary can make a lookup *faster*, never *wrong*.

Both directions of error matter differently: a false **positive** costs
one shard load (counted as ``buildcache.summary_false_positives``); a
false **negative** would silently hide a cached spec, so both kinds are
constructed to make false negatives structurally impossible (the
property test in ``tests/buildcache/test_summary.py`` hammers this).

Selection knobs (read by :meth:`build_summary` callers, i.e. the index
``save`` path):

* ``REPRO_BUILDCACHE_SUMMARY`` — ``sorted`` (default), ``bloom``, or
  ``off`` (v3 manifests without a summary file).
* ``REPRO_BUILDCACHE_SUMMARY_BITS`` — Bloom bits per key (default 10,
  ~1% false positives at the default 4 hash functions).
* ``REPRO_BUILDCACHE_SUMMARY_HASHES`` — Bloom hash count (default 4).
* ``REPRO_BUILDCACHE_SUMMARY_PREFIX`` — sorted-table prefix length in
  hex chars (default 0 = full hashes, exact + enumerable).
"""

from __future__ import annotations

import hashlib
import os
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional

from .backend import BuildCacheError

__all__ = [
    "SummaryFormatError",
    "ShardSummary",
    "SortedHashSummary",
    "BloomSummary",
    "build_summary",
    "summary_from_document",
    "summary_kind_from_env",
]


class SummaryFormatError(BuildCacheError):
    """Raised for corrupt or unsupported summary documents."""


class ShardSummary:
    """Membership summary over one shard's spec hashes.

    The contract every implementation must keep: :meth:`contains` may
    return ``True`` for an absent hash (a false positive, resolved by
    the shard read it falls through to) but must never return ``False``
    for a present one.
    """

    kind: str = "abstract"
    #: can :meth:`hashes` reproduce the exact hash set?
    enumerable: bool = False

    def __init__(self, count: int = 0):
        self.count = int(count)

    def contains(self, dag_hash: str) -> bool:
        raise NotImplementedError

    def hashes(self) -> List[str]:
        """The exact hash set (only when ``enumerable``)."""
        raise SummaryFormatError(
            f"{self.kind} summaries cannot enumerate their hashes"
        )

    def to_document(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} count={self.count}>"


class SortedHashSummary(ShardSummary):
    """A sorted table of (possibly truncated) spec hashes.

    ``prefix_len=0`` stores full hashes: exact membership and
    enumeration.  A positive ``prefix_len`` stores that many leading
    hex chars per hash; lookups match by prefix (collisions are false
    positives) and enumeration is unavailable.
    """

    kind = "sorted"

    def __init__(self, hashes: Iterable[str], prefix_len: int = 0):
        self.prefix_len = int(prefix_len)
        if self.prefix_len > 0:
            table = {h[: self.prefix_len] for h in hashes}
            self.enumerable = False
        else:
            table = set(hashes)
            self.enumerable = True
        self._table: List[str] = sorted(table)
        # count reflects table entries, not source hashes: truncation
        # can merge colliding prefixes
        super().__init__(len(self._table))

    def contains(self, dag_hash: str) -> bool:
        key = dag_hash[: self.prefix_len] if self.prefix_len else dag_hash
        i = bisect_left(self._table, key)
        return i < len(self._table) and self._table[i] == key

    def hashes(self) -> List[str]:
        if not self.enumerable:
            return super().hashes()
        return list(self._table)

    def to_document(self) -> dict:
        return {
            "kind": self.kind,
            "prefix_len": self.prefix_len,
            "hashes": self._table,
        }

    @classmethod
    def from_document(cls, document: dict) -> "SortedHashSummary":
        # the sidecar is machine-written within a versioned format, so a
        # key this reader does not know is corruption (or version skew a
        # bumped INDEX_VERSION should have caught), not extensibility —
        # a lenient .get() here would let a corrupted key name silently
        # fall back to a default that may equal the real value
        unknown = set(document) - {"kind", "prefix_len", "hashes"}
        if unknown:
            raise SummaryFormatError(
                f"sorted summary: unknown key(s) {sorted(unknown)}"
            )
        hashes = document.get("hashes")
        if not isinstance(hashes, list):
            raise SummaryFormatError("sorted summary: 'hashes' is not a list")
        prefix_len = int(document.get("prefix_len", 0))
        if prefix_len:
            # already truncated on disk: rebuild without re-truncating
            summary = cls.__new__(cls)
            ShardSummary.__init__(summary, len(hashes))
            summary.prefix_len = prefix_len
            summary.enumerable = False
            summary._table = sorted(str(h) for h in hashes)
            return summary
        return cls(str(h) for h in hashes)


class BloomSummary(ShardSummary):
    """A Bloom filter over spec hashes: ``m`` bits, ``k`` hash probes.

    Probe indices come from 4-byte slices of ``sha256(dag_hash)`` — a
    stable derivation (no ``PYTHONHASHSEED`` dependence) so a summary
    written by one process answers correctly in every other.
    """

    kind = "bloom"
    MAX_HASHES = 8  # sha256 yields eight independent 4-byte slices

    def __init__(
        self,
        hashes: Iterable[str] = (),
        bits_per_key: int = 10,
        num_hashes: int = 4,
        _bits: Optional[int] = None,
        _m: Optional[int] = None,
        _count: Optional[int] = None,
    ):
        items = list(hashes)
        self.num_hashes = max(1, min(int(num_hashes), self.MAX_HASHES))
        if _m is not None:
            self.m = max(8, int(_m))
            self._bits = int(_bits or 0)
            super().__init__(_count or 0)
            return
        self.m = max(8, int(bits_per_key) * max(len(items), 1))
        self._bits = 0
        super().__init__(len(items))
        for h in items:
            for index in self._probes(h):
                self._bits |= 1 << index

    def _probes(self, dag_hash: str) -> Iterable[int]:
        digest = hashlib.sha256(dag_hash.encode()).digest()
        for i in range(self.num_hashes):
            chunk = digest[4 * i: 4 * i + 4]
            yield int.from_bytes(chunk, "big") % self.m

    def contains(self, dag_hash: str) -> bool:
        return all((self._bits >> index) & 1 for index in self._probes(dag_hash))

    def to_document(self) -> dict:
        width = (self.m + 7) // 8
        return {
            "kind": self.kind,
            "m": self.m,
            "k": self.num_hashes,
            "count": self.count,
            "bits": self._bits.to_bytes(width, "big").hex(),
        }

    @classmethod
    def from_document(cls, document: dict) -> "BloomSummary":
        unknown = set(document) - {"kind", "m", "k", "count", "bits"}
        if unknown:
            raise SummaryFormatError(
                f"bloom summary: unknown key(s) {sorted(unknown)}"
            )
        try:
            bits = int(str(document["bits"]), 16)
            m = int(document["m"])
            k = int(document["k"])
            count = int(document.get("count", 0))
        except (KeyError, ValueError) as e:
            raise SummaryFormatError(f"bloom summary: bad document: {e}") from e
        return cls(num_hashes=k, _bits=bits, _m=m, _count=count)


_KINDS = {
    SortedHashSummary.kind: SortedHashSummary,
    BloomSummary.kind: BloomSummary,
}


def summary_kind_from_env() -> Optional[str]:
    """The summary kind the save path should emit (``None`` = off)."""
    kind = os.environ.get("REPRO_BUILDCACHE_SUMMARY", "sorted").strip().lower()
    if kind in ("off", "none", "0", ""):
        return None
    if kind not in _KINDS:
        raise SummaryFormatError(
            f"unknown REPRO_BUILDCACHE_SUMMARY kind {kind!r} "
            f"(expected one of {sorted(_KINDS)} or 'off')"
        )
    return kind


def build_summary(hashes: Iterable[str], kind: Optional[str] = None) -> ShardSummary:
    """Build a summary of ``kind`` (default: the env-selected kind)
    over a shard's spec hashes, honouring the tuning env knobs."""
    kind = kind or summary_kind_from_env() or SortedHashSummary.kind
    if kind == BloomSummary.kind:
        return BloomSummary(
            hashes,
            bits_per_key=int(os.environ.get("REPRO_BUILDCACHE_SUMMARY_BITS", "10")),
            num_hashes=int(os.environ.get("REPRO_BUILDCACHE_SUMMARY_HASHES", "4")),
        )
    return SortedHashSummary(
        hashes,
        prefix_len=int(os.environ.get("REPRO_BUILDCACHE_SUMMARY_PREFIX", "0")),
    )


def summary_from_document(document: dict) -> ShardSummary:
    """Deserialize one shard's summary document."""
    if not isinstance(document, dict):
        raise SummaryFormatError("summary document is not an object")
    kind = document.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise SummaryFormatError(f"unknown summary kind {kind!r}")
    return cls.from_document(document)
